//! A dependency-free HTTP/1.1 read-only surface for the daemon.
//!
//! One [`HttpServer`] serves three operator endpoints off a
//! [`Service`]:
//!
//! * `GET /status` — the service's status snapshot (JSON).
//! * `GET /metrics` — Prometheus text exposition v0.0.4 of the
//!   telemetry plane plus the deterministic registry.
//! * `GET /profile` — the full telemetry snapshot (histograms with
//!   quantiles, worker lanes) and the shared-cache contention table
//!   (JSON), consumable by `icprof --profile`.
//!
//! Fault isolation mirrors the daemon's Unix-socket discipline: one
//! thread per connection, short read timeouts polled at a tick, a hard
//! cap on request bytes, and an idle deadline — a malformed request
//! line, an oversized header block, a mid-request disconnect, or a
//! slow-loris stall each cost exactly that one connection. The server
//! is read-only by construction (`GET` only), so it can keep answering
//! during drain without interacting with intake.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::Service;

/// Poll granularity of the accept loop and connection reads.
const TICK: Duration = Duration::from_millis(20);

/// HTTP server tuning.
#[derive(Debug, Clone)]
pub struct HttpOptions {
    /// Hard cap on the request head (request line + headers); longer
    /// requests are answered `431` and dropped.
    pub max_request_bytes: usize,
    /// A connection that has not delivered a complete request head
    /// within this window is answered `408` and dropped — the
    /// slow-loris guard.
    pub idle_timeout: Duration,
}

impl Default for HttpOptions {
    fn default() -> Self {
        HttpOptions {
            max_request_bytes: 8192,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// Why a connection ended; labels feed `icd.http.closed.*` telemetry
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnClose {
    Served,
    BadRequest,
    TooLarge,
    IdleTimeout,
    Disconnect,
    WriteError,
}

impl ConnClose {
    fn label(self) -> &'static str {
        match self {
            ConnClose::Served => "served",
            ConnClose::BadRequest => "bad-request",
            ConnClose::TooLarge => "too-large",
            ConnClose::IdleTimeout => "idle-timeout",
            ConnClose::Disconnect => "disconnect",
            ConnClose::WriteError => "write-error",
        }
    }
}

/// The read-only HTTP/1.1 listener. Dropping (or
/// [`shutdown`](HttpServer::shutdown)) stops the accept loop and joins
/// every connection handler.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`; port `0` picks a free one
    /// — read it back with [`local_addr`](HttpServer::local_addr)) and
    /// starts serving `service`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<Service>,
        options: HttpOptions,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            let conns: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let service = Arc::clone(&service);
                        let options = options.clone();
                        let mut conns = conns.lock().unwrap();
                        // Opportunistically reap finished handlers so
                        // the vec stays bounded by live connections.
                        conns.retain(|h| !h.is_finished());
                        conns.push(std::thread::spawn(move || {
                            let close = serve_connection(stream, &service, &options);
                            service
                                .telemetry()
                                .counter(&format!("icd.http.closed.{}", close.label()))
                                .inc();
                        }));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(TICK),
                    // A failed accept (EMFILE, aborted handshake) must
                    // not kill the listener.
                    Err(_) => std::thread::sleep(TICK),
                }
            }
            for h in conns.into_inner().unwrap() {
                let _ = h.join();
            }
        });
        Ok(HttpServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the accept loop and all handlers.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads the request head (through the blank line), bounded by the
/// byte cap and the idle deadline.
fn read_request_head(stream: &mut TcpStream, options: &HttpOptions) -> Result<Vec<u8>, ConnClose> {
    let deadline = Instant::now() + options.idle_timeout;
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ConnClose::Disconnect),
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.len() > options.max_request_bytes {
                    return Err(ConnClose::TooLarge);
                }
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    return Ok(head);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return Err(ConnClose::Disconnect),
        }
        if Instant::now() >= deadline {
            return Err(ConnClose::IdleTimeout);
        }
    }
}

/// Parses `GET /path HTTP/1.x`, returning the path (query stripped).
fn parse_request_line(head: &[u8]) -> Result<(String, String), ConnClose> {
    let line_end = head
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .unwrap_or(head.len());
    let line = std::str::from_utf8(&head[..line_end]).map_err(|_| ConnClose::BadRequest)?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ConnClose::BadRequest);
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") || !target.starts_with('/') {
        return Err(ConnClose::BadRequest);
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();
    Ok((method.to_owned(), path))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &str,
    body: &str,
) -> Result<(), ConnClose> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n{extra_headers}\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|_| ConnClose::WriteError)
}

/// The Prometheus exposition content type the scrapers expect.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Serves exactly one request on `stream` (`Connection: close`
/// discipline), recording per-request latency telemetry. All errors
/// are local to the connection.
fn serve_connection(mut stream: TcpStream, service: &Service, options: &HttpOptions) -> ConnClose {
    let telemetry = Arc::clone(service.telemetry());
    telemetry.counter("icd.http.requests").inc();
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_nodelay(true);

    let outcome = read_request_head(&mut stream, options).and_then(|head| {
        let (method, path) = parse_request_line(&head)?;
        if method != "GET" {
            write_response(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "Allow: GET\r\n",
                "only GET is supported\n",
            )?;
            return Ok(());
        }
        match path.as_str() {
            "/status" => write_response(
                &mut stream,
                "200 OK",
                "application/json",
                "",
                &service.status_json(),
            ),
            "/metrics" => write_response(
                &mut stream,
                "200 OK",
                METRICS_CONTENT_TYPE,
                "",
                &service.metrics_text(),
            ),
            "/profile" => write_response(
                &mut stream,
                "200 OK",
                "application/json",
                "",
                &service.profile_json(),
            ),
            _ => write_response(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "",
                "unknown path; try /status, /metrics, /profile\n",
            ),
        }
    });
    let close = match outcome {
        Ok(()) => ConnClose::Served,
        Err(close) => {
            // Best-effort error reply; the connection is dropped either
            // way, and a peer that already vanished just ignores it.
            let (status, body) = match close {
                ConnClose::BadRequest => ("400 Bad Request", "malformed request line\n"),
                ConnClose::TooLarge => (
                    "431 Request Header Fields Too Large",
                    "request head too large\n",
                ),
                ConnClose::IdleTimeout => {
                    ("408 Request Timeout", "request not completed in time\n")
                }
                _ => ("400 Bad Request", "bad request\n"),
            };
            if !matches!(close, ConnClose::Disconnect | ConnClose::WriteError) {
                let _ = write_response(&mut stream, status, "text/plain; charset=utf-8", "", body);
            }
            close
        }
    };
    telemetry.record_wait("icd.http.latency", started.elapsed());
    close
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use instantcheck::Scheme;

    use super::*;
    use crate::{CampaignSpec, Orchestrator, OrchestratorConfig, Resolver, Service, Submission};

    fn service() -> Arc<Service> {
        let resolver: Resolver = Arc::new(|_| None);
        Arc::new(Service::new(Orchestrator::new(
            OrchestratorConfig::default(),
            resolver,
            Some(Arc::new(
                corpus::Corpus::open(corpus::CorpusOptions::ephemeral()).unwrap(),
            )),
        )))
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        // A hostile request may be cut off (RST) mid-write or mid-read
        // when the server rejects early; keep whatever arrived.
        let _ = stream.write_all(raw.as_bytes());
        let mut reply = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => reply.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8_lossy(&reply).into_owned()
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    #[test]
    fn serves_status_metrics_and_profile() {
        let svc = service();
        svc.submit(Submission::new(
            "x",
            CampaignSpec::new("nope", Scheme::HwInc),
        ));
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&svc), HttpOptions::default())
            .expect("binds");
        let addr = server.local_addr();

        let status = get(addr, "/status");
        assert!(status.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(status.contains("Content-Type: application/json"));
        let body = status.split("\r\n\r\n").nth(1).unwrap();
        let v = obs::json::parse(body).expect("status body is JSON");
        assert_eq!(v.get("submitted").unwrap().as_u64(), Some(1));
        assert!(v.get("corpus").unwrap().get("cache_capacity").is_some());

        let metrics = get(addr, "/metrics");
        assert!(metrics.contains(&format!("Content-Type: {METRICS_CONTENT_TYPE}")));
        assert!(metrics.contains("# TYPE icd_queue_dwell_seconds histogram"));
        assert!(metrics.contains("# TYPE icd_cache_acquire_seconds histogram"));
        assert!(metrics.contains("# TYPE icd_cache_cas_retries_total counter"));
        assert!(metrics.contains("icd_http_requests_total"));

        let profile = get(addr, "/profile");
        let body = profile.split("\r\n\r\n").nth(1).unwrap();
        let v = obs::json::parse(body).expect("profile body is JSON");
        assert!(v.get("telemetry").unwrap().get("histograms").is_some());
        assert!(matches!(v.get("cache"), Some(obs::json::Value::Obj(_))));
    }

    #[test]
    fn hostile_clients_cost_only_their_connection() {
        let svc = service();
        let options = HttpOptions {
            max_request_bytes: 512,
            idle_timeout: Duration::from_millis(200),
        };
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&svc), options).expect("binds");
        let addr = server.local_addr();

        // Malformed request line.
        assert!(request(addr, "N0T-HTTP\r\n\r\n").starts_with("HTTP/1.1 400"));
        // Oversized head.
        let big = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(4096));
        assert!(request(addr, &big).starts_with("HTTP/1.1 431"));
        // Unknown path and method.
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        assert!(request(addr, "POST /status HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        // Mid-request disconnect: write half a request and vanish.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /st").unwrap();
        }
        // Slow loris: connect, send nothing, wait out the idle window.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut reply = String::new();
            s.read_to_string(&mut reply).unwrap();
            assert!(reply.starts_with("HTTP/1.1 408"), "got: {reply:?}");
        }
        // The server is still fully alive for well-formed clients.
        assert!(get(addr, "/status").starts_with("HTTP/1.1 200"));
        let closed = svc.telemetry().snapshot();
        assert!(closed.counters["icd.http.closed.bad-request"] >= 1);
        assert!(closed.counters["icd.http.closed.too-large"] >= 1);
        assert!(closed.counters["icd.http.closed.idle-timeout"] >= 1);
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let svc = service();
        let mut server =
            HttpServer::bind("127.0.0.1:0", Arc::clone(&svc), HttpOptions::default()).unwrap();
        let addr = server.local_addr();
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200"));
        server.shutdown();
        // The port is rebindable immediately after shutdown.
        let again = HttpServer::bind(addr, svc, HttpOptions::default());
        assert!(again.is_ok(), "{:?}", again.err());
    }
}
