//! The campaign orchestrator: accepts [`Submission`]s, runs them on a
//! bounded worker pool, and returns per-campaign results whose bytes do
//! not depend on the pool width.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use corpus::{CampaignBaseline, Corpus, SharedCacheStats};
use instantcheck::{CheckReport, Checker, CheckerConfig, RunCache};
use obs::{Event, MemorySink, Registry, Telemetry, CONTROL_TRACK};
use tsim::{Program, SimErrorKind};

use crate::queue::{PushError, QueueEntry, WorkQueue};
use crate::{CampaignSpec, Priority};

/// A closure that builds one fresh copy of a workload's program.
pub type ProgramSource = Arc<dyn Fn() -> Program + Send + Sync>;

/// Maps a [`CampaignSpec::workload`] id to its program source. Returns
/// `None` for unknown workloads — the campaign fails with
/// [`CampaignStatus::Invalid`] instead of panicking a worker.
pub type Resolver = Arc<dyn Fn(&str) -> Option<ProgramSource> + Send + Sync>;

/// The tenant label used for submissions that do not name one.
pub const DEFAULT_TENANT: &str = "anon";

/// One campaign submission: a spec plus scheduling identity.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Caller-chosen campaign id — names the result and its artifacts.
    /// An empty id is replaced with `c<seq>` at submit time, so callers
    /// that cannot know the sequence up front (concurrent daemon
    /// clients) still get stable, collision-free defaults.
    pub id: String,
    /// Queue priority: higher pops first; ties run in submission order.
    pub priority: Priority,
    /// The submitting tenant, for quota accounting and per-tenant
    /// metrics; `None` is accounted under [`DEFAULT_TENANT`].
    pub tenant: Option<String>,
    /// What to run.
    pub spec: CampaignSpec,
}

impl Submission {
    /// A default-priority submission.
    pub fn new(id: impl Into<String>, spec: CampaignSpec) -> Self {
        Submission {
            id: id.into(),
            priority: 0,
            tenant: None,
            spec,
        }
    }

    /// Sets the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the tenant label.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// Why a submission was refused instead of enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was at capacity — the graceful-degradation
    /// outcome under overload.
    QueueFull,
    /// The orchestrator was already draining.
    Draining,
    /// The submitting tenant exhausted its submission quota.
    QuotaExceeded,
}

impl ShedReason {
    /// Stable label used in result JSON and metrics.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::Draining => "draining",
            ShedReason::QuotaExceeded => "quota-exceeded",
        }
    }
}

/// What [`Orchestrator::submit`] did with a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Accepted; a worker will run it and `drain` will report it.
    Enqueued,
    /// Refused; `drain` reports it as [`CampaignStatus::Shed`].
    Shed(ShedReason),
}

/// Terminal state of one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// The campaign ran to completion and produced a report artifact.
    Completed,
    /// The campaign ran but its failure policy gave up (or it produced
    /// no completed runs to report on).
    Failed,
    /// The submission could not be run at all: unknown workload or a
    /// spec the checker rejects (e.g. zero runs).
    Invalid,
    /// The submission was refused at the queue.
    Shed,
}

impl CampaignStatus {
    /// Stable label used in result JSON and metrics.
    pub fn label(self) -> &'static str {
        match self {
            CampaignStatus::Completed => "completed",
            CampaignStatus::Failed => "failed",
            CampaignStatus::Invalid => "invalid",
            CampaignStatus::Shed => "shed",
        }
    }
}

/// The terminal record of one submission.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The submission's id.
    pub id: String,
    /// The tenant the submission was accounted under.
    pub tenant: String,
    /// Submission order (0-based) — the deterministic result ordering.
    pub seq: usize,
    /// Terminal state.
    pub status: CampaignStatus,
    /// The campaign's report artifact — a
    /// [`CampaignBaseline`](corpus::CampaignBaseline) rendered as
    /// deterministic JSON — present exactly for completed campaigns.
    /// Byte-identical to the same spec run alone, at any width.
    pub report_json: Option<String>,
    /// The campaign's simulator event trace as JSONL, when the
    /// orchestrator traces. Step-keyed, so also width-independent.
    pub trace_jsonl: Option<String>,
    /// Why the campaign failed or was invalid.
    pub error: Option<String>,
    /// Why the campaign was shed, when it was.
    pub shed: Option<ShedReason>,
    /// Campaign-level attempts taken (1 + transient retries).
    pub attempts: u32,
}

impl CampaignResult {
    /// One line of deterministic JSON summarizing the result (without
    /// the artifact bodies) — the orchestrator batch summary format.
    pub fn summary_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"id\":");
        obs::json::write_str(&mut out, &self.id);
        out.push_str(",\"tenant\":");
        obs::json::write_str(&mut out, &self.tenant);
        let _ = write!(out, ",\"seq\":{}", self.seq);
        out.push_str(",\"status\":");
        obs::json::write_str(&mut out, self.status.label());
        let _ = write!(out, ",\"attempts\":{}", self.attempts);
        match &self.shed {
            Some(reason) => {
                out.push_str(",\"shed\":");
                obs::json::write_str(&mut out, reason.label());
            }
            None => out.push_str(",\"shed\":null"),
        }
        match &self.error {
            Some(e) => {
                out.push_str(",\"error\":");
                obs::json::write_str(&mut out, e);
            }
            None => out.push_str(",\"error\":null"),
        }
        out.push('}');
        out
    }

    fn shed(id: String, tenant: String, seq: usize, reason: ShedReason) -> Self {
        CampaignResult {
            id,
            tenant,
            seq,
            status: CampaignStatus::Shed,
            report_json: None,
            trace_jsonl: None,
            error: None,
            shed: Some(reason),
            attempts: 0,
        }
    }
}

/// Per-tenant submission accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Submissions enqueued for this tenant.
    pub accepted: u64,
    /// Submissions refused for this tenant (any [`ShedReason`]).
    pub shed: u64,
}

/// Orchestrator tuning.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Concurrent campaigns (worker threads). The determinism contract:
    /// per-campaign artifact bytes are identical at any width.
    pub width: usize,
    /// Bound of the submission queue; submissions past it shed.
    pub queue_capacity: usize,
    /// Per-campaign job budget: a campaign's effective `jobs` is
    /// `min(spec.jobs (or the budget), budget)`, clamped to ≥ 1, so a
    /// single greedy spec cannot monopolize the box.
    pub job_budget: usize,
    /// Campaign-level retries for *transient* failures (a run deadline
    /// exhausting the spec's own failure policy). Structural failures
    /// (deadlock, panic, step limit) are not retried — they are
    /// deterministic and would fail again.
    pub retries: u32,
    /// Base backoff between campaign retries; attempt `n` sleeps
    /// `backoff * 2^n`.
    pub backoff: Duration,
    /// Record per-campaign simulator event traces.
    pub trace: bool,
    /// Deadline applied to specs that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Per-tenant submission budget: once a tenant has had this many
    /// submissions *accepted*, further ones shed with
    /// [`ShedReason::QuotaExceeded`]. `None` disables quotas. The
    /// budget counts accepted submissions only, so a tenant cannot be
    /// starved by its own shed/invalid lines.
    pub tenant_quota: Option<u64>,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            width: 2,
            queue_capacity: 64,
            job_budget: 2,
            retries: 2,
            backoff: Duration::from_millis(10),
            trace: false,
            default_deadline_ms: None,
            tenant_quota: None,
        }
    }
}

/// Telemetry histogram fed with enqueue→dequeue queue dwell times.
pub const QUEUE_DWELL_HISTOGRAM: &str = "icd.queue.dwell";

/// State shared between the submit side and the workers.
struct Shared {
    queue: WorkQueue<Job>,
    results: Mutex<BTreeMap<usize, CampaignResult>>,
    registry: Arc<Registry>,
    /// Wall-clock side-channel (queue dwell, worker lanes, cache
    /// acquire/wait times). Strictly observational: nothing recorded
    /// here reaches the deterministic results, registry, or traces.
    telemetry: Arc<Telemetry>,
    resolver: Resolver,
    corpus: Option<Arc<Corpus>>,
    config: OrchestratorConfig,
    draining: AtomicBool,
    in_flight: AtomicUsize,
}

/// One accepted submission riding the queue.
struct Job {
    id: String,
    tenant: String,
    spec: CampaignSpec,
    enqueued_at: Instant,
}

/// The multi-campaign orchestrator.
///
/// Lifecycle: [`new`](Orchestrator::new) →
/// [`submit`](Orchestrator::submit) any number of times (workers start
/// lazily on [`start`](Orchestrator::start), or at drain) →
/// [`drain`](Orchestrator::drain), which closes intake, finishes every
/// accepted campaign, and returns one [`CampaignResult`] per submission
/// in submission order — shed submissions included, so the batch output
/// always covers the batch input.
pub struct Orchestrator {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    submitted: usize,
    tenants: BTreeMap<String, TenantStats>,
}

impl Orchestrator {
    /// Creates an orchestrator. Workers do not start until
    /// [`start`](Orchestrator::start) (or [`drain`](Orchestrator::drain))
    /// — submissions before that just queue, which is also how the
    /// overload path is tested deterministically.
    ///
    /// `corpus` is the shared run store, built by the caller through
    /// [`Corpus::open`](corpus::Corpus::open). The orchestrator binds
    /// its own metrics registry and telemetry plane to it, so the
    /// corpus's memo-cache contention and compaction waits surface on
    /// the daemon's `/metrics` alongside the queue series. Concurrent
    /// campaigns share discovered runs through the corpus's lock-free
    /// front cache and never compute the same run twice.
    pub fn new(
        config: OrchestratorConfig,
        resolver: Resolver,
        corpus: Option<Arc<Corpus>>,
    ) -> Self {
        let registry = Arc::new(Registry::new());
        let telemetry = Arc::new(Telemetry::new());
        // Pre-register the always-exported wait series so `/metrics`
        // shows them (at zero) from the first scrape.
        telemetry.histogram(QUEUE_DWELL_HISTOGRAM);
        telemetry.histogram(corpus::CACHE_ACQUIRE_HISTOGRAM);
        telemetry.histogram(corpus::CACHE_WAIT_HISTOGRAM);
        if let Some(corpus) = &corpus {
            corpus.bind_observers(&registry, &telemetry);
        }
        Orchestrator {
            shared: Arc::new(Shared {
                queue: WorkQueue::new(config.queue_capacity),
                results: Mutex::new(BTreeMap::new()),
                registry,
                telemetry,
                resolver,
                corpus,
                config,
                draining: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
            }),
            workers: Vec::new(),
            submitted: 0,
            tenants: BTreeMap::new(),
        }
    }

    /// The orchestrator's metrics registry (`icd.*`, `checker.*`,
    /// `corpus.cache.*`).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The orchestrator's wall-clock telemetry plane: queue dwell
    /// ([`QUEUE_DWELL_HISTOGRAM`]), cache acquisitions and in-flight
    /// waits ([`corpus::CACHE_ACQUIRE_HISTOGRAM`],
    /// [`corpus::CACHE_WAIT_HISTOGRAM`]), worker busy/idle, lanes.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Contention and occupancy tallies of the corpus's memo cache;
    /// `None` when the orchestrator runs without a corpus.
    pub fn cache_stats(&self) -> Option<SharedCacheStats> {
        self.shared.corpus.as_ref().map(|c| c.cache_stats())
    }

    /// The attached corpus itself, when one is — lets a daemon front
    /// end keep reading contention tallies and log-structure gauges
    /// after `drain` has consumed the orchestrator.
    pub fn corpus(&self) -> Option<&Arc<Corpus>> {
        self.shared.corpus.as_ref()
    }

    /// Submissions seen so far (enqueued + shed).
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Campaigns queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Campaigns currently being run by a worker.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Per-tenant accepted/shed counts so far, keyed by tenant label.
    pub fn tenant_stats(&self) -> &BTreeMap<String, TenantStats> {
        &self.tenants
    }

    /// Offers one submission. Never blocks: the queue either accepts it
    /// or the submission is shed with an explicit reason, recorded in
    /// both the metrics and the eventual drain output. An empty
    /// submission id is replaced with `c<seq>`.
    pub fn submit(&mut self, submission: Submission) -> Disposition {
        let seq = self.submitted;
        self.submitted += 1;
        let tenant = submission
            .tenant
            .clone()
            .unwrap_or_else(|| DEFAULT_TENANT.to_owned());
        let id = if submission.id.is_empty() {
            format!("c{seq}")
        } else {
            submission.id.clone()
        };
        let reg = &self.shared.registry;
        reg.add("icd.submitted", 1);
        if self.shared.draining.load(Ordering::SeqCst) {
            return self.shed(id, tenant, seq, ShedReason::Draining);
        }
        if let Some(quota) = self.shared.config.tenant_quota {
            let accepted = self.tenants.get(&tenant).map_or(0, |t| t.accepted);
            if accepted >= quota {
                return self.shed(id, tenant, seq, ShedReason::QuotaExceeded);
            }
        }
        let entry = QueueEntry {
            priority: submission.priority,
            seq,
            payload: Job {
                id: id.clone(),
                tenant: tenant.clone(),
                spec: submission.spec,
                enqueued_at: Instant::now(),
            },
        };
        match self.shared.queue.push(entry) {
            Ok(depth) => {
                reg.add("icd.enqueued", 1);
                reg.add(&format!("icd.tenant.{tenant}.accepted"), 1);
                // Depth is wall-clock state (it depends on worker
                // timing), so it lives on the telemetry plane.
                let t = &self.shared.telemetry;
                t.gauge("icd.queue.depth").set(depth as u64);
                t.histogram("icd.queue.depth.at-enqueue")
                    .record(depth as u64);
                self.tenants.entry(tenant).or_default().accepted += 1;
                Disposition::Enqueued
            }
            Err(PushError::Full) => self.shed(id, tenant, seq, ShedReason::QueueFull),
            Err(PushError::Closed) => self.shed(id, tenant, seq, ShedReason::Draining),
        }
    }

    fn shed(&mut self, id: String, tenant: String, seq: usize, reason: ShedReason) -> Disposition {
        self.shared.registry.add("icd.shed", 1);
        self.shared
            .registry
            .add(&format!("icd.shed.{}", reason.label()), 1);
        self.shared
            .registry
            .add(&format!("icd.tenant.{tenant}.shed"), 1);
        self.tenants.entry(tenant.clone()).or_default().shed += 1;
        self.shared
            .results
            .lock()
            .unwrap()
            .insert(seq, CampaignResult::shed(id, tenant, seq, reason));
        Disposition::Shed(reason)
    }

    /// Starts the worker pool (idempotent).
    pub fn start(&mut self) {
        if !self.workers.is_empty() {
            return;
        }
        for w in 0..self.shared.config.width.max(1) {
            let shared = Arc::clone(&self.shared);
            self.workers.push(std::thread::spawn(move || {
                let lane = format!("icd.w{w}");
                let mut idle_from = shared.telemetry.now_ns();
                while let Some(entry) = shared.queue.pop() {
                    let t = &shared.telemetry;
                    let start = t.now_ns();
                    t.histogram("icd.worker.idle")
                        .record(start.saturating_sub(idle_from));
                    t.gauge("icd.queue.depth").set(shared.queue.depth() as u64);
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    t.gauge("icd.in_flight")
                        .set(shared.in_flight.load(Ordering::SeqCst) as u64);
                    let result = run_campaign(&shared, entry.seq, entry.payload);
                    shared.results.lock().unwrap().insert(entry.seq, result);
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    let t = &shared.telemetry;
                    t.gauge("icd.in_flight")
                        .set(shared.in_flight.load(Ordering::SeqCst) as u64);
                    let end = t.now_ns();
                    t.histogram("icd.worker.busy")
                        .record(end.saturating_sub(start));
                    t.lane_span(lane.clone(), "campaign", start, end, entry.seq as u64);
                    idle_from = end;
                }
            }));
        }
    }

    /// Closes intake, finishes every accepted campaign, joins the
    /// workers, and returns all results in submission order. Late
    /// `submit` calls on a draining orchestrator shed with
    /// [`ShedReason::Draining`].
    pub fn drain(mut self) -> Vec<CampaignResult> {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.start();
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked already poisoned nothing we read
            // (results are inserted whole); surface the panic.
            worker.join().expect("orchestrator worker panicked");
        }
        let results = std::mem::take(&mut *self.shared.results.lock().unwrap());
        results.into_values().collect()
    }

    /// The deterministic orchestrator trace for a finished batch: one
    /// span per result on the control track, keyed by submission seq
    /// (not wall clock), so equal batches produce byte-equal traces at
    /// any width.
    pub fn batch_trace(results: &[CampaignResult]) -> Vec<Event> {
        let mut events = Vec::with_capacity(results.len() * 2);
        for r in results {
            let seq = r.seq as u64;
            events.push(
                Event::begin(seq, CONTROL_TRACK, "icd.campaign")
                    .with_arg("id", r.id.clone())
                    .with_arg("seq", seq),
            );
            let mut end = Event::end(seq, CONTROL_TRACK, "icd.campaign")
                .with_arg("status", r.status.label())
                .with_arg("attempts", u64::from(r.attempts));
            if let Some(reason) = r.shed {
                end = end.with_arg("shed", reason.label());
            }
            events.push(end);
        }
        events
    }
}

/// Runs one campaign to its terminal result. Never panics on bad input:
/// unknown workloads and rejected specs become `Invalid` results.
fn run_campaign(shared: &Shared, seq: usize, job: Job) -> CampaignResult {
    let reg = &shared.registry;
    // Enqueue→dequeue dwell is pure wall clock: telemetry, never the
    // deterministic registry.
    shared
        .telemetry
        .record_wait(QUEUE_DWELL_HISTOGRAM, job.enqueued_at.elapsed());

    let invalid = |error: String| {
        reg.add("icd.invalid", 1);
        CampaignResult {
            id: job.id.clone(),
            tenant: job.tenant.clone(),
            seq,
            status: CampaignStatus::Invalid,
            report_json: None,
            trace_jsonl: None,
            error: Some(error),
            shed: None,
            attempts: 0,
        }
    };

    let Some(source) = (shared.resolver)(&job.spec.workload) else {
        return invalid(format!("unknown workload {:?}", job.spec.workload));
    };

    let mut spec = job.spec.clone();
    if spec.deadline_ms.is_none() {
        spec.deadline_ms = shared.config.default_deadline_ms;
    }
    // Per-campaign job budget on top of the campaign's own executor:
    // the spec may ask for fewer jobs than the budget, never more.
    let budget = shared.config.job_budget.max(1);
    spec.jobs = Some(spec.jobs.unwrap_or(budget).min(budget).max(1));

    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let mut cfg = CheckerConfig::from_spec(&spec)
            .with_registry(Arc::clone(reg))
            .with_telemetry(Arc::clone(&shared.telemetry));
        if let Some(corpus) = &shared.corpus {
            cfg = cfg.with_run_cache(Arc::clone(corpus) as Arc<dyn RunCache>, &*spec.workload);
        }
        let sink = shared.config.trace.then(|| Arc::new(MemorySink::new()));
        if let Some(sink) = &sink {
            cfg = cfg.with_sink(Arc::clone(sink) as _);
        }
        let checker = match Checker::new(cfg) {
            Ok(c) => c,
            Err(e) => return invalid(format!("invalid spec: {e}")),
        };

        let source = Arc::clone(&source);
        match checker.collect_runs(&move || source()) {
            Ok(runs) if runs.is_empty() => {
                reg.add("icd.failed", 1);
                return CampaignResult {
                    id: job.id,
                    tenant: job.tenant,
                    seq,
                    status: CampaignStatus::Failed,
                    report_json: None,
                    trace_jsonl: sink.map(|s| s.to_jsonl()),
                    error: Some("no run completed".to_owned()),
                    shed: None,
                    attempts,
                };
            }
            Ok(runs) => {
                let report = CheckReport::from_runs(&runs);
                let artifact = CampaignBaseline::capture(
                    &job.id,
                    &spec.workload,
                    spec.scheme,
                    spec.base_seed,
                    &runs[0],
                    &report,
                );
                reg.add("icd.completed", 1);
                return CampaignResult {
                    id: job.id,
                    tenant: job.tenant,
                    seq,
                    status: CampaignStatus::Completed,
                    report_json: Some(artifact.to_json()),
                    trace_jsonl: sink.map(|s| s.to_jsonl()),
                    error: None,
                    shed: None,
                    attempts,
                };
            }
            Err(e) => {
                // Only wall-clock deadlines are transient at the
                // orchestrator level: a loaded box can starve a run
                // past its watchdog, and backing off gives the next
                // attempt a quieter machine. Everything else is a
                // deterministic property of the spec.
                let transient = e.kind() == SimErrorKind::Deadline;
                if transient && attempts <= shared.config.retries {
                    reg.add("icd.retries", 1);
                    let backoff = shared.config.backoff * 2u32.saturating_pow(attempts - 1);
                    std::thread::sleep(backoff);
                    continue;
                }
                reg.add("icd.failed", 1);
                return CampaignResult {
                    id: job.id,
                    tenant: job.tenant,
                    seq,
                    status: CampaignStatus::Failed,
                    report_json: None,
                    trace_jsonl: None,
                    error: Some(e.to_string()),
                    shed: None,
                    attempts,
                };
            }
        }
    }
}
