//! `sched` — the InstantCheck multi-campaign orchestrator.
//!
//! The paper's workflow is "run many checking campaigns and compare
//! hashes"; everything below this crate runs exactly one campaign per
//! call. `sched` turns that into a *service*: an [`Orchestrator`]
//! accepts batches of [`Submission`]s (each one a serializable
//! [`CampaignSpec`]), runs them on a bounded worker pool with
//! per-campaign job budgets, and multiplexes one shared
//! [`corpus::Corpus`] — a log-structured run store behind a lock-free
//! memo cache — so concurrent campaigns never serialize on storage and
//! never compute the same run twice.
//!
//! Two contracts, both enforced by tests:
//!
//! * **Determinism under orchestration.** A campaign's report and
//!   trace bytes are identical whether it runs alone or under the
//!   orchestrator at any width. Everything wall-clock-dependent (queue
//!   waits, retry backoff, cache contention) lives in metrics, never
//!   in artifacts; results are keyed and ordered by submission
//!   sequence, not completion order.
//! * **Graceful degradation.** The queue is bounded: submissions past
//!   the bound are *shed* with an explicit
//!   [`Disposition::Shed`] outcome (never a hang, never a panic) and
//!   appear in both the metrics snapshot (`icd.shed`) and the drain
//!   output. Per-campaign deadlines reuse the checker's
//!   `FailurePolicy`/`SimError::Deadline` machinery, and transient
//!   deadline failures retry with exponential backoff.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use instantcheck::{CampaignSpec, Scheme};
//! use sched::{Orchestrator, OrchestratorConfig, ProgramSource, Submission};
//! use tsim::{ProgramBuilder, ValKind};
//!
//! // A resolver maps workload ids to program builders.
//! let resolver = Arc::new(|workload: &str| {
//!     (workload == "g-plus-t").then(|| -> ProgramSource {
//!         Arc::new(|| {
//!             let mut b = ProgramBuilder::new(2);
//!             let g = b.global("G", ValKind::U64, 1);
//!             let lock = b.mutex();
//!             for t in 0..2u64 {
//!                 b.thread(move |ctx| {
//!                     ctx.lock(lock);
//!                     let v = ctx.load(g.at(0));
//!                     ctx.store(g.at(0), v + t + 1);
//!                     ctx.unlock(lock);
//!                 });
//!             }
//!             b.build()
//!         })
//!     })
//! });
//!
//! let mut icd = Orchestrator::new(OrchestratorConfig::default(), resolver, None);
//! let spec = CampaignSpec::new("g-plus-t", Scheme::HwInc).with_runs(4);
//! icd.submit(Submission::new("demo", spec));
//! let results = icd.drain();
//! assert_eq!(results.len(), 1);
//! assert!(results[0].report_json.is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod http;
mod orchestrator;
mod queue;
mod service;

pub use http::{HttpOptions, HttpServer, METRICS_CONTENT_TYPE};
pub use instantcheck::CampaignSpec;
pub use orchestrator::{
    CampaignResult, CampaignStatus, Disposition, Orchestrator, OrchestratorConfig, ProgramSource,
    Resolver, ShedReason, Submission, TenantStats, DEFAULT_TENANT, QUEUE_DWELL_HISTOGRAM,
};
pub use service::Service;

/// Queue priority: higher pops first; ties run in submission order.
pub type Priority = i64;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use corpus::{Corpus, CorpusOptions};
    use instantcheck::Scheme;
    use tsim::{ProgramBuilder, ValKind};

    use super::*;

    fn resolver() -> Resolver {
        Arc::new(|workload: &str| {
            (workload == "racy-sum").then(|| -> ProgramSource {
                Arc::new(|| {
                    let mut b = ProgramBuilder::new(2);
                    let g = b.global("G", ValKind::U64, 1);
                    let lock = b.mutex();
                    for t in 0..2u64 {
                        b.thread(move |ctx| {
                            ctx.lock(lock);
                            let v = ctx.load(g.at(0));
                            ctx.store(g.at(0), v + t + 1);
                            ctx.unlock(lock);
                        });
                    }
                    b.build()
                })
            })
        })
    }

    fn spec() -> CampaignSpec {
        CampaignSpec::new("racy-sum", Scheme::HwInc).with_runs(3)
    }

    #[test]
    fn overload_sheds_explicitly_and_counts_it() {
        let config = OrchestratorConfig {
            queue_capacity: 2,
            ..OrchestratorConfig::default()
        };
        // Workers not started: submissions stay queued, so the shed
        // boundary is exact and deterministic.
        let mut icd = Orchestrator::new(config, resolver(), None);
        let mut dispositions = Vec::new();
        for i in 0..5 {
            dispositions.push(icd.submit(Submission::new(format!("c{i}"), spec())));
        }
        assert_eq!(
            dispositions[..2],
            [Disposition::Enqueued, Disposition::Enqueued]
        );
        for d in &dispositions[2..] {
            assert_eq!(*d, Disposition::Shed(ShedReason::QueueFull));
        }
        assert_eq!(icd.queue_depth(), 2);
        let snap = icd.registry().snapshot();
        assert_eq!(snap.counters.get("icd.submitted"), Some(&5));
        assert_eq!(snap.counters.get("icd.shed"), Some(&3));
        assert_eq!(snap.counters.get("icd.shed.queue-full"), Some(&3));

        // Drain still runs the two accepted campaigns and reports all
        // five submissions, in order.
        let results = icd.drain();
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.seq, i);
            assert_eq!(r.id, format!("c{i}"));
        }
        assert!(results[..2]
            .iter()
            .all(|r| r.status == CampaignStatus::Completed));
        assert!(results[2..].iter().all(|r| {
            r.status == CampaignStatus::Shed && r.shed == Some(ShedReason::QueueFull)
        }));
    }

    #[test]
    fn unknown_workload_is_invalid_not_a_panic() {
        let mut icd = Orchestrator::new(OrchestratorConfig::default(), resolver(), None);
        let mut bad = spec();
        bad.workload = "no-such-app".into();
        icd.submit(Submission::new("bad", bad));
        icd.submit(Submission::new("zero", spec().with_runs(0)));
        let results = icd.drain();
        assert_eq!(results[0].status, CampaignStatus::Invalid);
        assert!(results[0].error.as_deref().unwrap().contains("no-such-app"));
        assert_eq!(results[1].status, CampaignStatus::Invalid);
        assert!(results[1]
            .error
            .as_deref()
            .unwrap()
            .contains("at least one run"));
    }

    #[test]
    fn report_bytes_match_a_solo_campaign_at_any_width() {
        // The solo path: same spec, run directly through the checker.
        let solo = {
            let spec = spec();
            let runs = instantcheck::Checker::from_spec(&spec)
                .unwrap()
                .collect_runs(&|| {
                    let source = resolver()("racy-sum").unwrap();
                    source()
                })
                .unwrap();
            let report = instantcheck::CheckReport::from_runs(&runs);
            corpus::CampaignBaseline::capture(
                "c3",
                &spec.workload,
                spec.scheme,
                spec.base_seed,
                &runs[0],
                &report,
            )
            .to_json()
        };
        for width in [1, 2, 4] {
            let config = OrchestratorConfig {
                width,
                trace: true,
                ..OrchestratorConfig::default()
            };
            let corpus = Arc::new(Corpus::open(CorpusOptions::ephemeral()).unwrap());
            let mut icd = Orchestrator::new(config, resolver(), Some(corpus));
            for i in 0..6 {
                icd.submit(Submission::new(format!("c{i}"), spec()));
            }
            icd.start();
            let results = icd.drain();
            assert_eq!(results.len(), 6);
            for r in &results {
                assert_eq!(r.status, CampaignStatus::Completed, "{:?}", r.error);
            }
            assert_eq!(
                results[3].report_json.as_deref().unwrap(),
                solo,
                "width {width}: orchestrated bytes == solo bytes"
            );
        }
    }

    #[test]
    fn priorities_run_first_but_results_stay_in_submission_order() {
        let mut icd = Orchestrator::new(
            OrchestratorConfig {
                width: 1,
                ..OrchestratorConfig::default()
            },
            resolver(),
            None,
        );
        icd.submit(Submission::new("low", spec()));
        icd.submit(Submission::new("high", spec()).with_priority(10));
        let results = icd.drain();
        assert_eq!(results[0].id, "low");
        assert_eq!(results[1].id, "high");
        assert!(results
            .iter()
            .all(|r| r.status == CampaignStatus::Completed));
    }

    #[test]
    fn tenant_quota_sheds_explicitly_per_tenant() {
        let config = OrchestratorConfig {
            tenant_quota: Some(2),
            ..OrchestratorConfig::default()
        };
        let mut icd = Orchestrator::new(config, resolver(), None);
        for i in 0..4 {
            let d = icd.submit(Submission::new(format!("a{i}"), spec()).with_tenant("alice"));
            if i < 2 {
                assert_eq!(d, Disposition::Enqueued);
            } else {
                assert_eq!(d, Disposition::Shed(ShedReason::QuotaExceeded));
            }
        }
        // One tenant's exhaustion never affects another's budget.
        assert_eq!(
            icd.submit(Submission::new("b0", spec()).with_tenant("bob")),
            Disposition::Enqueued
        );
        assert_eq!(
            icd.tenant_stats()["alice"],
            TenantStats {
                accepted: 2,
                shed: 2
            }
        );
        assert_eq!(icd.tenant_stats()["bob"].accepted, 1);
        let snap = icd.registry().snapshot();
        assert_eq!(snap.counters.get("icd.tenant.alice.accepted"), Some(&2));
        assert_eq!(snap.counters.get("icd.tenant.alice.shed"), Some(&2));
        assert_eq!(snap.counters.get("icd.shed.quota-exceeded"), Some(&2));
        let results = icd.drain();
        assert_eq!(results.len(), 5);
        assert_eq!(results[2].status, CampaignStatus::Shed);
        assert_eq!(results[2].shed, Some(ShedReason::QuotaExceeded));
        assert_eq!(results[2].tenant, "alice");
        assert!(results[..2]
            .iter()
            .all(|r| r.status == CampaignStatus::Completed));
    }

    #[test]
    fn empty_submission_id_defaults_to_seq() {
        let mut icd = Orchestrator::new(OrchestratorConfig::default(), resolver(), None);
        icd.submit(Submission::new("", spec()));
        icd.submit(Submission::new("named", spec()));
        icd.submit(Submission::new("", spec()));
        let results = icd.drain();
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["c0", "named", "c2"]);
    }

    #[test]
    fn service_is_share_safe_and_drains_once() {
        let svc = Arc::new(Service::new(Orchestrator::new(
            OrchestratorConfig::default(),
            resolver(),
            None,
        )));
        let mut handles = Vec::new();
        for t in 0..4 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                for i in 0..3 {
                    let sub =
                        Submission::new(format!("t{t}-{i}"), spec()).with_tenant(format!("t{t}"));
                    assert_eq!(svc.submit(sub).1, Disposition::Enqueued);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let status = obs::json::parse(&svc.status_json()).unwrap();
        assert_eq!(status.get("draining"), Some(&obs::json::Value::Bool(false)));
        assert_eq!(status.get("submitted").unwrap().as_u64(), Some(12));
        assert_eq!(
            status
                .get("tenants")
                .unwrap()
                .get("t0")
                .unwrap()
                .get("accepted")
                .unwrap()
                .as_u64(),
            Some(3)
        );

        let results = svc.drain();
        assert_eq!(results.len(), 12);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.seq, i, "results stay in submission order");
            assert_eq!(r.status, CampaignStatus::Completed, "{:?}", r.error);
        }
        let mut ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12, "every submission reported exactly once");

        assert!(svc.is_draining());
        assert!(svc.drain().is_empty(), "second drain is empty");
        assert_eq!(
            svc.submit(Submission::new("late", spec())).1,
            Disposition::Shed(ShedReason::Draining)
        );
        let status = obs::json::parse(&svc.status_json()).unwrap();
        assert_eq!(status.get("draining"), Some(&obs::json::Value::Bool(true)));
    }

    #[test]
    fn batch_trace_is_a_pure_function_of_the_results() {
        let mut icd = Orchestrator::new(OrchestratorConfig::default(), resolver(), None);
        icd.submit(Submission::new("a", spec()));
        icd.submit(Submission::new("b", spec().with_runs(0)));
        let results = icd.drain();
        let trace = obs::events_to_jsonl(&Orchestrator::batch_trace(&results));
        let again = obs::events_to_jsonl(&Orchestrator::batch_trace(&results));
        assert_eq!(trace, again);
        assert!(trace.contains("icd.campaign"));
        assert!(trace.contains("invalid"));
    }

    #[test]
    fn summary_json_is_deterministic_and_labeled() {
        let mut icd = Orchestrator::new(
            OrchestratorConfig {
                queue_capacity: 1,
                ..OrchestratorConfig::default()
            },
            resolver(),
            None,
        );
        icd.submit(Submission::new("kept", spec()));
        icd.submit(Submission::new("dropped", spec()));
        let results = icd.drain();
        assert_eq!(
            results[1].summary_json(),
            "{\"id\":\"dropped\",\"tenant\":\"anon\",\"seq\":1,\"status\":\"shed\",\
             \"attempts\":0,\"shed\":\"queue-full\",\"error\":null}"
        );
        assert!(results[0]
            .summary_json()
            .contains("\"status\":\"completed\""));
    }
}
