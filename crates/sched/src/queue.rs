//! The orchestrator's bounded priority work queue.
//!
//! A classic Mutex+Condvar monitor around a [`BinaryHeap`]: higher
//! priority pops first, ties break by submission order, and pushing
//! past the bound *fails* instead of blocking — the caller turns that
//! into an explicit shed outcome, which is the whole load-shedding
//! contract. `pop` blocks until an item arrives or the queue is closed
//! *and* empty, so workers drain everything accepted before exiting.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// One queued item: an opaque payload ordered by `(priority desc,
/// seq asc)`.
#[derive(Debug)]
pub(crate) struct QueueEntry<T> {
    pub priority: i64,
    pub seq: usize,
    pub payload: T,
}

impl<T> PartialEq for QueueEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for QueueEntry<T> {}

impl<T> Ord for QueueEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: higher priority wins; among equals,
        // the *earlier* submission (lower seq) wins.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for QueueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct Inner<T> {
    heap: BinaryHeap<QueueEntry<T>>,
    closed: bool,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue has been closed (orchestrator draining).
    Closed,
}

/// A bounded, closable priority queue.
#[derive(Debug)]
pub(crate) struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    pub fn new(capacity: usize) -> Self {
        WorkQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().heap.len()
    }

    /// Accepts the entry, or refuses it without blocking.
    pub fn push(&self, entry: QueueEntry<T>) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.heap.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.heap.push(entry);
        let depth = inner.heap.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Takes the highest-priority entry, blocking while the queue is
    /// open and empty. `None` means closed-and-drained: the worker
    /// should exit.
    pub fn pop(&self) -> Option<QueueEntry<T>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(entry) = inner.heap.pop() {
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    /// Closes intake. Already-queued entries still pop; blocked workers
    /// wake up to drain or exit.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_submission_order() {
        let q: WorkQueue<&str> = WorkQueue::new(10);
        for (priority, seq, payload) in [
            (0, 0, "first-low"),
            (5, 1, "high"),
            (0, 2, "second-low"),
            (5, 3, "late-high"),
        ] {
            q.push(QueueEntry {
                priority,
                seq,
                payload,
            })
            .unwrap();
        }
        q.close();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["high", "late-high", "first-low", "second-low"]);
    }

    #[test]
    fn bound_refuses_and_close_refuses() {
        let q: WorkQueue<u32> = WorkQueue::new(2);
        let entry = |seq| QueueEntry {
            priority: 0,
            seq,
            payload: 1u32,
        };
        assert_eq!(q.push(entry(0)), Ok(1));
        assert_eq!(q.push(entry(1)), Ok(2));
        assert_eq!(q.push(entry(2)).unwrap_err(), PushError::Full);
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.push(entry(3)).unwrap_err(), PushError::Closed);
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "closed and drained");
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q: std::sync::Arc<WorkQueue<u32>> = std::sync::Arc::new(WorkQueue::new(4));
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap().is_none());
    }
}
