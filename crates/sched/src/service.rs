//! A share-safe front end for the orchestrator: the daemon-facing
//! [`Service`].
//!
//! [`Orchestrator`] is deliberately single-owner (`submit` takes `&mut
//! self`, `drain` consumes `self`) so its accounting needs no internal
//! locks. A daemon serving many concurrent client connections needs the
//! opposite shape: one shared handle that any handler thread can submit
//! through, poll for status, and ask to drain — exactly once — while
//! late arrivals get an explicit answer instead of a hang or a panic.
//! [`Service`] is that adapter: a mutex around `Option<Orchestrator>`
//! plus a drain latch.
//!
//! Concurrency contract: the mutex serializes *intake* (submission
//! sequence assignment and quota accounting), never campaign
//! *execution* — workers run on the orchestrator's own pool and only
//! touch the lock-free results map and registry. `drain` takes the
//! orchestrator out of the mutex and blocks outside it, so `status_json`
//! and `submit` stay responsive (answering "draining") for the whole
//! drain.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use corpus::{StripeStats, StripedCache};
use obs::{Registry, Telemetry};

use crate::orchestrator::TenantStats;
use crate::{CampaignResult, Disposition, Orchestrator, ShedReason, Submission};

/// The intake-side numbers a status reply reports, frozen at drain
/// time so `status` keeps answering while the drain runs.
#[derive(Debug, Clone, Default)]
struct StatusCore {
    submitted: usize,
    queue_depth: usize,
    in_flight: usize,
    tenants: BTreeMap<String, TenantStats>,
}

struct Inner {
    orch: Option<Orchestrator>,
    /// Last observed intake state; authoritative once `orch` is taken.
    frozen: StatusCore,
}

/// A thread-safe, drain-once wrapper around one [`Orchestrator`].
///
/// Handler threads share a `Arc<Service>`; each call locks intake just
/// long enough to assign a sequence number. After
/// [`begin_drain`](Service::begin_drain) (or the first
/// [`drain`](Service::drain)), further submissions shed with
/// [`ShedReason::Draining`] and [`status_json`](Service::status_json)
/// reports `"draining":true`.
pub struct Service {
    inner: Mutex<Inner>,
    draining: AtomicBool,
    registry: Arc<Registry>,
    telemetry: Arc<Telemetry>,
    /// Kept outside the intake mutex (and past drain) so `/metrics`
    /// and `/profile` can read stripe tallies without blocking intake.
    cache: Option<Arc<StripedCache>>,
}

impl Service {
    /// Wraps an orchestrator, starting its worker pool.
    pub fn new(mut orch: Orchestrator) -> Self {
        orch.start();
        let registry = Arc::clone(orch.registry());
        let telemetry = Arc::clone(orch.telemetry());
        let cache = orch.striped_cache().cloned();
        Service {
            inner: Mutex::new(Inner {
                orch: Some(orch),
                frozen: StatusCore::default(),
            }),
            draining: AtomicBool::new(false),
            registry,
            telemetry,
            cache,
        }
    }

    /// The orchestrator's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The orchestrator's wall-clock telemetry plane.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Per-stripe contention tallies of the shared corpus; `None`
    /// without a corpus. Usable during and after drain.
    pub fn stripe_stats(&self) -> Option<Vec<StripeStats>> {
        self.cache.as_ref().map(|c| c.stripe_stats())
    }

    /// Offers one submission on behalf of a connection handler,
    /// returning the (possibly defaulted) campaign id alongside the
    /// disposition so the caller can echo it back to the client. Never
    /// blocks on campaign execution — only on intake serialization.
    /// After drain has begun the submission sheds with
    /// [`ShedReason::Draining`] (and, once the orchestrator is taken,
    /// is no longer part of the batch result set — the client's
    /// disposition reply is its only record).
    pub fn submit(&self, mut submission: Submission) -> (String, Disposition) {
        let mut inner = self.inner.lock().unwrap();
        match inner.orch.as_mut() {
            Some(orch) => {
                if submission.id.is_empty() {
                    submission.id = format!("c{}", orch.submitted());
                }
                let id = submission.id.clone();
                (id, orch.submit(submission))
            }
            None => (submission.id, Disposition::Shed(ShedReason::Draining)),
        }
    }

    /// Submissions seen so far (enqueued + shed).
    pub fn submitted(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        match &inner.orch {
            Some(orch) => orch.submitted(),
            None => inner.frozen.submitted,
        }
    }

    /// Whether drain has been requested (or completed).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests drain; returns `true` for the first caller. Intake
    /// stays nominally open until [`drain`](Service::drain) runs, but
    /// callers are expected to stop submitting once this flips.
    pub fn begin_drain(&self) -> bool {
        !self.draining.swap(true, Ordering::SeqCst)
    }

    /// Campaigns queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        match &inner.orch {
            Some(orch) => orch.queue_depth(),
            None => inner.frozen.queue_depth,
        }
    }

    /// Closes intake, finishes every accepted campaign, and returns
    /// all results in submission order. Idempotent: the first caller
    /// gets the batch, later callers get an empty vec. The blocking
    /// wait happens *outside* the intake lock, so `submit` and
    /// `status_json` keep answering (as draining) throughout.
    pub fn drain(&self) -> Vec<CampaignResult> {
        self.draining.store(true, Ordering::SeqCst);
        let orch = {
            let mut inner = self.inner.lock().unwrap();
            if let Some(orch) = &inner.orch {
                inner.frozen = StatusCore {
                    submitted: orch.submitted(),
                    queue_depth: orch.queue_depth(),
                    in_flight: orch.in_flight(),
                    tenants: orch.tenant_stats().clone(),
                };
            }
            inner.orch.take()
        };
        match orch {
            Some(orch) => orch.drain(),
            None => Vec::new(),
        }
    }

    /// A deterministic-schema status snapshot as one line of JSON:
    /// sorted keys, stable field set —
    /// `{"draining":…,"submitted":…,"queue_depth":…,"in_flight":…,
    /// "tenants":{…},"corpus":{…}|null,"counters":{…}}`. The *values*
    /// are live (queue depth, counters, stripe tallies) and therefore
    /// wall-clock-dependent; status is an operator endpoint, never an
    /// artifact.
    pub fn status_json(&self) -> String {
        let core = {
            let inner = self.inner.lock().unwrap();
            match &inner.orch {
                Some(orch) => StatusCore {
                    submitted: orch.submitted(),
                    queue_depth: orch.queue_depth(),
                    in_flight: orch.in_flight(),
                    tenants: orch.tenant_stats().clone(),
                },
                None => inner.frozen.clone(),
            }
        };
        let mut out = String::from("{\"draining\":");
        out.push_str(if self.is_draining() { "true" } else { "false" });
        let _ = write!(
            out,
            ",\"submitted\":{},\"queue_depth\":{},\"in_flight\":{}",
            core.submitted, core.queue_depth, core.in_flight
        );
        out.push_str(",\"tenants\":{");
        for (i, (name, stats)) in core.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            obs::json::write_str(&mut out, name);
            let _ = write!(
                out,
                ":{{\"accepted\":{},\"shed\":{}}}",
                stats.accepted, stats.shed
            );
        }
        out.push_str("},\"corpus\":");
        match self.stripe_stats() {
            Some(stats) => {
                let contended: u64 = stats.iter().map(|s| s.contended).sum();
                let wait_ns: u64 = stats.iter().map(|s| s.wait_ns).sum();
                let _ = write!(
                    out,
                    "{{\"stripes\":{},\"contended\":{contended},\"wait_ns\":{wait_ns}}}",
                    stats.len()
                );
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.registry.snapshot().counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            obs::json::write_str(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition (v0.0.4) of the telemetry plane plus
    /// the deterministic registry — the `/metrics` body. Per-stripe
    /// tallies export as `icd_stripe_contended_total{stripe="i"}` /
    /// `icd_stripe_wait_ns_total{stripe="i"}` series appended to the
    /// shared exposition.
    pub fn metrics_text(&self) -> String {
        let mut out =
            obs::prometheus_text(Some(&self.registry.snapshot()), &self.telemetry.snapshot());
        if let Some(stats) = self.stripe_stats() {
            out.push_str("# TYPE icd_stripe_contended_total counter\n");
            for (i, s) in stats.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "icd_stripe_contended_total{{stripe=\"{i}\"}} {}",
                    s.contended
                );
            }
            out.push_str("# TYPE icd_stripe_wait_ns_total counter\n");
            for (i, s) in stats.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "icd_stripe_wait_ns_total{{stripe=\"{i}\"}} {}",
                    s.wait_ns
                );
            }
        }
        out
    }

    /// The `/profile` body: the full telemetry snapshot (histograms
    /// with p50/p95/p99, worker lanes) plus the per-stripe contention
    /// table, as one JSON object —
    /// `{"telemetry":{…},"stripes":[{"stripe":…,"contended":…,
    /// "wait_ns":…},…]|null}`. Wall-clock throughout; never an
    /// artifact.
    pub fn profile_json(&self) -> String {
        let mut out = String::from("{\"telemetry\":");
        out.push_str(&self.telemetry.snapshot().to_json());
        out.push_str(",\"stripes\":");
        match self.stripe_stats() {
            Some(stats) => {
                out.push('[');
                for (i, s) in stats.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"stripe\":{i},\"contended\":{},\"wait_ns\":{}}}",
                        s.contended, s.wait_ns
                    );
                }
                out.push(']');
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}
