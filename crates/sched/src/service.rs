//! A share-safe front end for the orchestrator: the daemon-facing
//! [`Service`].
//!
//! [`Orchestrator`] is deliberately single-owner (`submit` takes `&mut
//! self`, `drain` consumes `self`) so its accounting needs no internal
//! locks. A daemon serving many concurrent client connections needs the
//! opposite shape: one shared handle that any handler thread can submit
//! through, poll for status, and ask to drain — exactly once — while
//! late arrivals get an explicit answer instead of a hang or a panic.
//! [`Service`] is that adapter: a mutex around `Option<Orchestrator>`
//! plus a drain latch.
//!
//! Concurrency contract: the mutex serializes *intake* (submission
//! sequence assignment and quota accounting), never campaign
//! *execution* — workers run on the orchestrator's own pool and only
//! touch the lock-free results map and registry. `drain` takes the
//! orchestrator out of the mutex and blocks outside it, so `status_json`
//! and `submit` stay responsive (answering "draining") for the whole
//! drain.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use corpus::{Corpus, LogStats, SharedCacheStats};
use obs::{Registry, Telemetry};

use crate::orchestrator::TenantStats;
use crate::{CampaignResult, Disposition, Orchestrator, ShedReason, Submission};

/// The intake-side numbers a status reply reports, frozen at drain
/// time so `status` keeps answering while the drain runs.
#[derive(Debug, Clone, Default)]
struct StatusCore {
    submitted: usize,
    queue_depth: usize,
    in_flight: usize,
    tenants: BTreeMap<String, TenantStats>,
}

struct Inner {
    orch: Option<Orchestrator>,
    /// Last observed intake state; authoritative once `orch` is taken.
    frozen: StatusCore,
}

/// A thread-safe, drain-once wrapper around one [`Orchestrator`].
///
/// Handler threads share a `Arc<Service>`; each call locks intake just
/// long enough to assign a sequence number. After
/// [`begin_drain`](Service::begin_drain) (or the first
/// [`drain`](Service::drain)), further submissions shed with
/// [`ShedReason::Draining`] and [`status_json`](Service::status_json)
/// reports `"draining":true`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use instantcheck::{CampaignSpec, Scheme};
/// use sched::{Orchestrator, OrchestratorConfig, ProgramSource, Service, Submission};
/// use tsim::{ProgramBuilder, ValKind};
///
/// let resolver = Arc::new(|workload: &str| {
///     (workload == "counter").then(|| -> ProgramSource {
///         Arc::new(|| {
///             let mut b = ProgramBuilder::new(1);
///             let g = b.global("G", ValKind::U64, 1);
///             b.thread(move |ctx| ctx.store(g.at(0), 7));
///             b.build()
///         })
///     })
/// });
/// let orch = Orchestrator::new(OrchestratorConfig::default(), resolver, None);
/// let svc = Arc::new(Service::new(orch));
/// let spec = CampaignSpec::new("counter", Scheme::HwInc).with_runs(2);
/// let (id, _) = svc.submit(Submission::new("demo", spec));
/// assert_eq!(id, "demo");
/// let results = svc.drain();
/// assert_eq!(results.len(), 1);
/// assert!(results[0].report_json.is_some());
/// ```
pub struct Service {
    inner: Mutex<Inner>,
    draining: AtomicBool,
    registry: Arc<Registry>,
    telemetry: Arc<Telemetry>,
    /// Kept outside the intake mutex (and past drain) so `/metrics`
    /// and `/profile` can read cache tallies and log-structure gauges
    /// without blocking intake.
    corpus: Option<Arc<Corpus>>,
}

impl Service {
    /// Wraps an orchestrator, starting its worker pool.
    pub fn new(mut orch: Orchestrator) -> Self {
        orch.start();
        let registry = Arc::clone(orch.registry());
        let telemetry = Arc::clone(orch.telemetry());
        let corpus = orch.corpus().cloned();
        Service {
            inner: Mutex::new(Inner {
                orch: Some(orch),
                frozen: StatusCore::default(),
            }),
            draining: AtomicBool::new(false),
            registry,
            telemetry,
            corpus,
        }
    }

    /// The orchestrator's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The orchestrator's wall-clock telemetry plane.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Contention and occupancy tallies of the corpus's memo cache;
    /// `None` without a corpus. Usable during and after drain.
    pub fn cache_stats(&self) -> Option<SharedCacheStats> {
        self.corpus.as_ref().map(|c| c.cache_stats())
    }

    /// Log-structure tallies of the corpus (segments, live/garbage
    /// bytes, compactions); `None` without a corpus or when the corpus
    /// is ephemeral. Usable during and after drain.
    pub fn log_stats(&self) -> Option<LogStats> {
        self.corpus.as_ref().and_then(|c| c.log_stats())
    }

    /// Offers one submission on behalf of a connection handler,
    /// returning the (possibly defaulted) campaign id alongside the
    /// disposition so the caller can echo it back to the client. Never
    /// blocks on campaign execution — only on intake serialization.
    /// After drain has begun the submission sheds with
    /// [`ShedReason::Draining`] (and, once the orchestrator is taken,
    /// is no longer part of the batch result set — the client's
    /// disposition reply is its only record).
    pub fn submit(&self, mut submission: Submission) -> (String, Disposition) {
        let mut inner = self.inner.lock().unwrap();
        match inner.orch.as_mut() {
            Some(orch) => {
                if submission.id.is_empty() {
                    submission.id = format!("c{}", orch.submitted());
                }
                let id = submission.id.clone();
                (id, orch.submit(submission))
            }
            None => (submission.id, Disposition::Shed(ShedReason::Draining)),
        }
    }

    /// Submissions seen so far (enqueued + shed).
    pub fn submitted(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        match &inner.orch {
            Some(orch) => orch.submitted(),
            None => inner.frozen.submitted,
        }
    }

    /// Whether drain has been requested (or completed).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests drain; returns `true` for the first caller. Intake
    /// stays nominally open until [`drain`](Service::drain) runs, but
    /// callers are expected to stop submitting once this flips.
    pub fn begin_drain(&self) -> bool {
        !self.draining.swap(true, Ordering::SeqCst)
    }

    /// Campaigns queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        match &inner.orch {
            Some(orch) => orch.queue_depth(),
            None => inner.frozen.queue_depth,
        }
    }

    /// Closes intake, finishes every accepted campaign, and returns
    /// all results in submission order. Idempotent: the first caller
    /// gets the batch, later callers get an empty vec. The blocking
    /// wait happens *outside* the intake lock, so `submit` and
    /// `status_json` keep answering (as draining) throughout.
    pub fn drain(&self) -> Vec<CampaignResult> {
        self.draining.store(true, Ordering::SeqCst);
        let orch = {
            let mut inner = self.inner.lock().unwrap();
            if let Some(orch) = &inner.orch {
                inner.frozen = StatusCore {
                    submitted: orch.submitted(),
                    queue_depth: orch.queue_depth(),
                    in_flight: orch.in_flight(),
                    tenants: orch.tenant_stats().clone(),
                };
            }
            inner.orch.take()
        };
        match orch {
            Some(orch) => orch.drain(),
            None => Vec::new(),
        }
    }

    /// A deterministic-schema status snapshot as one line of JSON:
    /// sorted keys, stable field set —
    /// `{"draining":…,"submitted":…,"queue_depth":…,"in_flight":…,
    /// "tenants":{…},"corpus":{…}|null,"counters":{…}}`. The *values*
    /// are live (queue depth, counters, cache tallies) and therefore
    /// wall-clock-dependent; status is an operator endpoint, never an
    /// artifact.
    pub fn status_json(&self) -> String {
        let core = {
            let inner = self.inner.lock().unwrap();
            match &inner.orch {
                Some(orch) => StatusCore {
                    submitted: orch.submitted(),
                    queue_depth: orch.queue_depth(),
                    in_flight: orch.in_flight(),
                    tenants: orch.tenant_stats().clone(),
                },
                None => inner.frozen.clone(),
            }
        };
        let mut out = String::from("{\"draining\":");
        out.push_str(if self.is_draining() { "true" } else { "false" });
        let _ = write!(
            out,
            ",\"submitted\":{},\"queue_depth\":{},\"in_flight\":{}",
            core.submitted, core.queue_depth, core.in_flight
        );
        out.push_str(",\"tenants\":{");
        for (i, (name, stats)) in core.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            obs::json::write_str(&mut out, name);
            let _ = write!(
                out,
                ":{{\"accepted\":{},\"shed\":{}}}",
                stats.accepted, stats.shed
            );
        }
        out.push_str("},\"corpus\":");
        match self.cache_stats() {
            Some(s) => {
                let _ = write!(
                    out,
                    "{{\"cache_capacity\":{},\"published\":{},\"in_flight\":{},\
                     \"cas_retries\":{},\"waits\":{},\"wait_ns\":{}",
                    s.capacity, s.published, s.in_flight, s.cas_retries, s.waits, s.wait_ns
                );
                out.push_str(",\"log\":");
                match self.log_stats() {
                    Some(l) => {
                        let _ = write!(
                            out,
                            "{{\"segments\":{},\"live_records\":{},\"live_bytes\":{},\
                             \"garbage_bytes\":{},\"total_bytes\":{},\"compactions\":{}}}",
                            l.segments,
                            l.live_records,
                            l.live_bytes,
                            l.garbage_bytes,
                            l.total_bytes,
                            l.compactions
                        );
                    }
                    None => out.push_str("null"),
                }
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.registry.snapshot().counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            obs::json::write_str(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition (v0.0.4) of the telemetry plane plus
    /// the deterministic registry — the `/metrics` body. Shared-cache
    /// contention tallies export as `icd_cache_*_total` counters
    /// (probes, probe steps, CAS retries, in-flight waits, arena-full
    /// fallbacks) and `icd_cache_*` occupancy gauges; a log-structured
    /// corpus additionally exports `icd_corpus_*` series (segments,
    /// live/garbage bytes, compaction and eviction totals).
    pub fn metrics_text(&self) -> String {
        let mut out =
            obs::prometheus_text(Some(&self.registry.snapshot()), &self.telemetry.snapshot());
        if let Some(s) = self.cache_stats() {
            for (name, value) in [
                ("icd_cache_probes_total", s.probes),
                ("icd_cache_probe_steps_total", s.probe_steps),
                ("icd_cache_cas_retries_total", s.cas_retries),
                ("icd_cache_waits_total", s.waits),
                ("icd_cache_wait_ns_total", s.wait_ns),
                ("icd_cache_arena_full_total", s.arena_full),
            ] {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
            }
            for (name, value) in [
                ("icd_cache_capacity_slots", s.capacity as u64),
                ("icd_cache_published_slots", s.published),
                ("icd_cache_in_flight_slots", s.in_flight),
                ("icd_cache_abandoned_slots", s.abandoned),
            ] {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
            }
        }
        if let Some(s) = self.log_stats() {
            for (name, value) in [
                ("icd_corpus_compactions_total", s.compactions),
                ("icd_corpus_compacted_records_total", s.compacted_records),
                ("icd_corpus_evicted_records_total", s.evicted_records),
            ] {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
            }
            for (name, value) in [
                ("icd_corpus_segments", s.segments),
                ("icd_corpus_live_records", s.live_records),
                ("icd_corpus_live_bytes", s.live_bytes),
                ("icd_corpus_garbage_bytes", s.garbage_bytes),
                ("icd_corpus_total_bytes", s.total_bytes),
                ("icd_corpus_open_ns", s.open_ns),
            ] {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
            }
        }
        out
    }

    /// The `/profile` body: the full telemetry snapshot (histograms
    /// with p50/p95/p99, worker lanes) plus the shared-cache contention
    /// table, as one JSON object —
    /// `{"telemetry":{…},"cache":{"capacity":…,"published":…,
    /// "in_flight":…,"abandoned":…,"probes":…,"probe_steps":…,
    /// "cas_retries":…,"waits":…,"wait_ns":…,"arena_full":…}|null}`.
    /// Wall-clock throughout; never an artifact.
    pub fn profile_json(&self) -> String {
        let mut out = String::from("{\"telemetry\":");
        out.push_str(&self.telemetry.snapshot().to_json());
        out.push_str(",\"cache\":");
        match self.cache_stats() {
            Some(s) => {
                let _ = write!(
                    out,
                    "{{\"capacity\":{},\"published\":{},\"in_flight\":{},\"abandoned\":{},\
                     \"probes\":{},\"probe_steps\":{},\"cas_retries\":{},\"waits\":{},\
                     \"wait_ns\":{},\"arena_full\":{}}}",
                    s.capacity,
                    s.published,
                    s.in_flight,
                    s.abandoned,
                    s.probes,
                    s.probe_steps,
                    s.cas_retries,
                    s.waits,
                    s.wait_ns,
                    s.arena_full
                );
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}
