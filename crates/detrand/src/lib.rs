//! `detrand` — a small, dependency-free, deterministic PRNG.
//!
//! Everything in this workspace that needs randomness needs *seeded,
//! bit-reproducible* randomness: the random scheduler, the PCT
//! scheduler, fault-injection plans, and the property-test harness all
//! promise that the same seed reproduces the same behavior on every
//! platform. This crate provides exactly that and nothing else: a
//! [`DetRng`] built on splitmix64 seeding and the xoshiro256\*\*
//! generator, with the handful of derived draws the workspace uses.
//!
//! The stream produced by a given seed is part of the workspace's
//! reproducibility contract (replay logs and regression seeds depend on
//! it); do not change the algorithm without a migration plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One step of the splitmix64 stream starting at `x`; also usable as a
/// standalone mixing function for key derivation.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded deterministic random number generator (xoshiro256\*\*).
///
/// Equal seeds produce equal streams, on every platform, forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded, as
    /// recommended by the xoshiro authors).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x.wrapping_sub(0x9e37_79b9_7f4a_7c15));
        }
        // A xoshiro state of all zeros is a fixed point; the splitmix
        // expansion of any seed never produces one, but keep the guard
        // explicit.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        DetRng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed `u64` in `[0, bound)` (Lemire's unbiased
    /// multiply-shift rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniformly distributed `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniformly distributed `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniformly distributed index into a collection of `len`
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A bool that is `true` with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// A uniformly distributed bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = DetRng::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert_eq!(seen, [true; 5]);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = DetRng::new(9);
        for _ in 0..200 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let u = rng.range_usize(3, 4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn chance_frequency_is_plausible() {
        let mut rng = DetRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn f64_unit_in_range() {
        let mut rng = DetRng::new(13);
        for _ in 0..100 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix_is_a_stable_mixer() {
        // Pin a few values so an accidental algorithm change is caught.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
        assert_ne!(splitmix64(2), splitmix64(3));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_rejected() {
        DetRng::new(0).below(0);
    }
}
