//! Filtering out benign data races by state comparison (§6.1).
//!
//! Most detected races are benign: both orders of the racing accesses
//! lead to the same program state (the volrend hand-coded barrier is the
//! paper's example). Narayanasamy et al. classify races by re-executing
//! with the race "flipped" and comparing the resulting memory states —
//! an expensive comparison that InstantCheck's state hash makes cheap.
//!
//! This module runs a program under many schedules, detects races on the
//! recorded traces, determines for each race which access order each run
//! exhibited, and compares the final state hashes of the two order
//! classes: if all runs agree on the final hash regardless of the order,
//! the race is benign; if the two orders produce different hashes, it is
//! harmful.

use std::collections::BTreeMap;

use adhash::HashSum;
use instantcheck::{CheckMonitor, IgnoreSpec, Scheme};
use tsim::{Addr, Program, RunConfig, SimError, ThreadId};

use crate::hb;

/// The verdict for one racing address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceVerdict {
    /// Both observed orders reach the same final state.
    Benign,
    /// Different orders reach different final states.
    Harmful,
    /// Only one order was observed within the run budget.
    OrderNotFlipped,
}

/// Classification of one racy address across many runs.
#[derive(Debug, Clone)]
pub struct ClassifiedRace {
    /// The racing address.
    pub addr: Addr,
    /// The pair of racing threads (lowest observed pair).
    pub threads: (ThreadId, ThreadId),
    /// Verdict.
    pub verdict: RaceVerdict,
    /// How many runs exhibited each order (first-thread-first count,
    /// second-thread-first count).
    pub order_counts: (usize, usize),
}

/// The full §6.1 report.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Races classified per address.
    pub races: Vec<ClassifiedRace>,
    /// Runs performed.
    pub runs: usize,
}

impl RaceReport {
    /// The benign races.
    pub fn benign(&self) -> impl Iterator<Item = &ClassifiedRace> {
        self.races
            .iter()
            .filter(|r| r.verdict == RaceVerdict::Benign)
    }

    /// The harmful races.
    pub fn harmful(&self) -> impl Iterator<Item = &ClassifiedRace> {
        self.races
            .iter()
            .filter(|r| r.verdict == RaceVerdict::Harmful)
    }
}

/// Runs `source` under `runs` random schedules, detects races, and
/// classifies each racy address as benign or harmful by comparing the
/// final state hashes of runs exhibiting each access order.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn classify_races<F: Fn() -> Program>(
    source: F,
    runs: usize,
    base_seed: u64,
) -> Result<RaceReport, SimError> {
    struct RunInfo {
        final_hash: HashSum,
        // For each racy address: which thread accessed first.
        first_access: BTreeMap<u64, ThreadId>,
    }

    let mut alloc_log = None;
    let mut infos = Vec::with_capacity(runs);
    let mut race_threads: BTreeMap<u64, (ThreadId, ThreadId)> = BTreeMap::new();

    for i in 0..runs {
        let mut rc = RunConfig::random(base_seed + i as u64)
            .with_trace()
            .with_zero_fill_charged();
        if let Some(log) = &alloc_log {
            rc = rc.with_alloc_replay(std::sync::Arc::clone(log));
        }
        let monitor = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
        let out = source().run_with(&rc, monitor)?;
        if alloc_log.is_none() {
            alloc_log = Some(out.alloc_log.clone());
        }
        let trace = out.trace.as_ref().expect("trace requested");
        let nthreads = out.instr.len();
        let analysis = hb::analyze(trace, nthreads);

        let mut first_access = BTreeMap::new();
        for race in &analysis.races {
            let pair = if race.first_tid < race.second_tid {
                (race.first_tid, race.second_tid)
            } else {
                (race.second_tid, race.first_tid)
            };
            race_threads.entry(race.addr.raw()).or_insert(pair);
            // In this serialization, `first_index` executed first.
            first_access
                .entry(race.addr.raw())
                .or_insert(race.first_tid);
        }

        let hashes = out.monitor.into_hashes();
        let final_hash = hashes
            .checkpoints
            .last()
            .map(|c| c.hash)
            .unwrap_or(HashSum::ZERO);
        infos.push(RunInfo {
            final_hash,
            first_access,
        });
    }

    let mut races = Vec::new();
    for (&addr, &threads) in &race_threads {
        let mut order_a = Vec::new(); // runs where threads.0 went first
        let mut order_b = Vec::new();
        for info in &infos {
            match info.first_access.get(&addr) {
                Some(&t) if t == threads.0 => order_a.push(info.final_hash),
                Some(_) => order_b.push(info.final_hash),
                // The race did not manifest in this run (e.g. the
                // accesses were ordered by other sync): it still tells
                // us the reachable state for *some* order, but we cannot
                // attribute it, so skip.
                None => {}
            }
        }
        let verdict = if order_a.is_empty() || order_b.is_empty() {
            RaceVerdict::OrderNotFlipped
        } else {
            let all: Vec<HashSum> = order_a.iter().chain(order_b.iter()).copied().collect();
            if all.iter().all(|&h| h == all[0]) {
                RaceVerdict::Benign
            } else {
                RaceVerdict::Harmful
            }
        };
        races.push(ClassifiedRace {
            addr: Addr(addr),
            threads,
            verdict,
            order_counts: (order_a.len(), order_b.len()),
        });
    }

    Ok(RaceReport { races, runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, ValKind};

    /// Benign race: both threads store the same constant to a flag.
    fn benign_program() -> Program {
        let mut b = ProgramBuilder::new(2);
        let flag = b.global("flag", ValKind::U64, 1);
        for _ in 0..2 {
            b.thread(move |ctx| {
                ctx.store(flag.at(0), 1);
            });
        }
        b.build()
    }

    /// Harmful race: last writer wins with different values.
    fn harmful_program() -> Program {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("g", ValKind::U64, 1);
        for t in 0..2u64 {
            b.thread(move |ctx| {
                ctx.store(g.at(0), t + 1);
            });
        }
        b.build()
    }

    #[test]
    fn benign_race_is_filtered_out() {
        let report = classify_races(benign_program, 20, 1).unwrap();
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].verdict, RaceVerdict::Benign);
        assert_eq!(report.benign().count(), 1);
        assert_eq!(report.harmful().count(), 0);
        let (a, b) = report.races[0].order_counts;
        assert!(a > 0 && b > 0, "both orders observed: {a}/{b}");
    }

    #[test]
    fn harmful_race_is_kept() {
        let report = classify_races(harmful_program, 20, 1).unwrap();
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].verdict, RaceVerdict::Harmful);
        assert_eq!(report.harmful().count(), 1);
    }

    #[test]
    fn race_free_program_reports_nothing() {
        let locked = || {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("g", ValKind::U64, 1);
            let l = b.mutex();
            for t in 0..2u64 {
                b.thread(move |ctx| {
                    ctx.lock(l);
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + t);
                    ctx.unlock(l);
                });
            }
            b.build()
        };
        let report = classify_races(locked, 10, 1).unwrap();
        assert!(report.races.is_empty());
    }
}
