//! Vector clocks and happens-before analysis over recorded traces.
//!
//! This is the substrate CHESS-style tools use to identify equivalent
//! interleavings (and the paper's comparison point in §6.2): two
//! serialized executions are HB-equivalent if they order the *same
//! conflicting operations* the same way, even if independent operations
//! are interleaved differently.

use std::collections::HashMap;

use tsim::{Addr, ThreadId, Trace, TraceOp};

/// A vector clock (one logical clock per thread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for `n` threads.
    pub fn new(n: usize) -> Self {
        VectorClock { clocks: vec![0; n] }
    }

    /// This clock's component for `tid`.
    pub fn get(&self, tid: ThreadId) -> u64 {
        self.clocks.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component.
    pub fn tick(&mut self, tid: ThreadId) {
        self.clocks[tid] += 1;
    }

    /// Joins (pointwise max) another clock into this one.
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.clocks.iter_mut().zip(&other.clocks) {
            *a = (*a).max(*b);
        }
    }

    /// Returns `true` if `self` happens-before-or-equals `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.clocks.iter().zip(&other.clocks).all(|(a, b)| a <= b)
    }
}

/// One detected data race: two accesses to the same address, at least
/// one a write, unordered by happens-before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// The racing address.
    pub addr: Addr,
    /// Trace index of the earlier access (in this serialization).
    pub first_index: u64,
    /// Thread of the earlier access.
    pub first_tid: ThreadId,
    /// Whether the earlier access was a write.
    pub first_is_write: bool,
    /// Trace index of the later access.
    pub second_index: u64,
    /// Thread of the later access.
    pub second_tid: ThreadId,
    /// Whether the later access was a write.
    pub second_is_write: bool,
}

#[derive(Debug, Clone)]
struct Access {
    tid: ThreadId,
    vc: VectorClock,
    index: u64,
}

/// The result of a happens-before pass over one trace.
#[derive(Debug)]
pub struct HbAnalysis {
    /// All detected races (unordered conflicting access pairs).
    pub races: Vec<Race>,
    /// A canonical fingerprint of the happens-before equivalence class
    /// (see [`hb_signature`]).
    pub signature: u64,
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs the vector-clock pass: computes races and the HB signature.
///
/// Synchronization edges: lock release→acquire, barrier (full join of
/// all arrivers at release), atomic RMW (acquire+release on a per-address
/// object), allocation (the allocator's internal lock), and output (the
/// stream lock). Condition variables synchronize through their paired
/// lock (the wait's re-acquire appears as an ordinary `Lock` event).
pub fn analyze(trace: &Trace, nthreads: usize) -> HbAnalysis {
    let mut threads: Vec<VectorClock> = (0..nthreads).map(|_| VectorClock::new(nthreads)).collect();
    // Give each thread a distinct starting tick so epochs are usable.
    for (t, vc) in threads.iter_mut().enumerate() {
        vc.tick(t);
    }
    let mut locks: HashMap<usize, VectorClock> = HashMap::new();
    let mut atomics: HashMap<u64, VectorClock> = HashMap::new();
    let mut allocator = VectorClock::new(nthreads);
    let mut output = VectorClock::new(nthreads);
    let mut barrier_pending: HashMap<usize, (VectorClock, Vec<ThreadId>)> = HashMap::new();

    // Race state per address.
    let mut last_write: HashMap<u64, Access> = HashMap::new();
    let mut reads: HashMap<u64, Vec<Access>> = HashMap::new();
    let mut races = Vec::new();

    // Signature state: per-object operation sequences (hashed), and
    // per-address conflict sequences.
    let mut obj_seq: HashMap<u64, u64> = HashMap::new();
    let mut addr_seq: HashMap<u64, (u64, u64)> = HashMap::new(); // (hash, pending read set)

    let mut bump_obj = |key: u64, tid: ThreadId, op: u64| {
        let h = obj_seq.entry(key).or_insert(0x9e37_79b9);
        *h = mix(*h ^ mix(tid as u64 + 1) ^ op);
    };

    for e in trace.events() {
        let t = e.tid;
        match e.op {
            TraceOp::Lock(l) => {
                if let Some(vc) = locks.get(&l.index()) {
                    let vc = vc.clone();
                    threads[t].join(&vc);
                }
                threads[t].tick(t);
                bump_obj(1 << 40 | l.index() as u64, t, 1);
            }
            TraceOp::Unlock(l) => {
                threads[t].tick(t);
                locks
                    .entry(l.index())
                    .or_insert_with(|| VectorClock::new(nthreads))
                    .join(&threads[t]);
                bump_obj(1 << 40 | l.index() as u64, t, 2);
            }
            TraceOp::BarrierArrive(b) => {
                let entry = barrier_pending
                    .entry(b.index())
                    .or_insert_with(|| (VectorClock::new(nthreads), Vec::new()));
                entry.0.join(&threads[t]);
                entry.1.push(t);
                bump_obj(2 << 40 | b.index() as u64, t, 3);
            }
            TraceOp::BarrierRelease(b) => {
                if let Some((vc, arrived)) = barrier_pending.remove(&b.index()) {
                    for a in arrived {
                        threads[a].join(&vc);
                        threads[a].tick(a);
                    }
                }
            }
            TraceOp::CondWait(c, _l) => {
                // The lock release is implied here; the re-acquire shows
                // up as a separate Lock event.
                threads[t].tick(t);
                locks
                    .entry(usize::MAX - c.index())
                    .or_insert_with(|| VectorClock::new(nthreads))
                    .join(&threads[t]);
            }
            TraceOp::CondSignal(_) | TraceOp::CondBroadcast(_) => {
                threads[t].tick(t);
            }
            TraceOp::Rmw(a) => {
                if let Some(vc) = atomics.get(&a.raw()) {
                    let vc = vc.clone();
                    threads[t].join(&vc);
                }
                threads[t].tick(t);
                atomics
                    .entry(a.raw())
                    .or_insert_with(|| VectorClock::new(nthreads))
                    .join(&threads[t]);
                bump_obj(3 << 40 | a.raw(), t, 4);
                record_write(
                    a,
                    t,
                    e.index,
                    &threads,
                    &mut last_write,
                    &mut reads,
                    &mut races,
                );
                bump_conflict(&mut addr_seq, a, t, true);
            }
            TraceOp::Alloc { .. } | TraceOp::Free { .. } => {
                threads[t].join(&allocator.clone());
                threads[t].tick(t);
                allocator.join(&threads[t]);
            }
            TraceOp::Output { .. } => {
                threads[t].join(&output.clone());
                threads[t].tick(t);
                output.join(&threads[t]);
                bump_obj(4 << 40, t, 5);
            }
            TraceOp::Load(a) => {
                if let Some(w) = last_write.get(&a.raw()) {
                    if !w.vc.le(&threads[t]) {
                        races.push(Race {
                            addr: a,
                            first_index: w.index,
                            first_tid: w.tid,
                            first_is_write: true,
                            second_index: e.index,
                            second_tid: t,
                            second_is_write: false,
                        });
                    }
                }
                reads.entry(a.raw()).or_default().push(Access {
                    tid: t,
                    vc: threads[t].clone(),
                    index: e.index,
                });
                bump_conflict(&mut addr_seq, a, t, false);
            }
            TraceOp::Store(a) => {
                record_write(
                    a,
                    t,
                    e.index,
                    &threads,
                    &mut last_write,
                    &mut reads,
                    &mut races,
                );
                bump_conflict(&mut addr_seq, a, t, true);
            }
            TraceOp::Checkpoint { .. } => {}
            // Reader-writer locks: modeled conservatively as a single
            // sync object (read-side critical sections are ordered with
            // each other too; this over-approximates HB but never
            // reports a false race).
            TraceOp::RwReadLock(l) | TraceOp::RwWriteLock(l) => {
                let key = usize::MAX / 2 - l.index();
                if let Some(vc) = locks.get(&key) {
                    let vc = vc.clone();
                    threads[t].join(&vc);
                }
                threads[t].tick(t);
                bump_obj(5 << 40 | l.index() as u64, t, 6);
            }
            TraceOp::RwReadUnlock(l) | TraceOp::RwWriteUnlock(l) => {
                let key = usize::MAX / 2 - l.index();
                threads[t].tick(t);
                locks
                    .entry(key)
                    .or_insert_with(|| VectorClock::new(nthreads))
                    .join(&threads[t]);
                bump_obj(5 << 40 | l.index() as u64, t, 7);
            }
            // Semaphores: a post releases, a successful wait acquires.
            TraceOp::SemPost(sem) => {
                let key = usize::MAX / 4 - sem.index();
                threads[t].tick(t);
                locks
                    .entry(key)
                    .or_insert_with(|| VectorClock::new(nthreads))
                    .join(&threads[t]);
                bump_obj(6 << 40 | sem.index() as u64, t, 8);
            }
            TraceOp::SemWait(sem) => {
                let key = usize::MAX / 4 - sem.index();
                if let Some(vc) = locks.get(&key) {
                    let vc = vc.clone();
                    threads[t].join(&vc);
                }
                threads[t].tick(t);
                bump_obj(6 << 40 | sem.index() as u64, t, 9);
            }
            // `TraceOp` is non-exhaustive: future ops carry no HB edges
            // until taught here.
            _ => {}
        }
    }

    // Combine per-object and per-address sequence hashes (order across
    // objects is irrelevant — they commute — so use modular addition).
    let mut signature = 0u64;
    for (&k, &h) in &obj_seq {
        signature = signature.wrapping_add(mix(k).wrapping_mul(h | 1));
    }
    for (&a, &(h, pending)) in &addr_seq {
        signature = signature.wrapping_add(mix(a ^ 0xabcd).wrapping_mul(mix(h ^ pending) | 1));
    }

    races.sort_by_key(|r| (r.addr, r.first_index, r.second_index));
    races.dedup_by_key(|r| {
        (
            r.addr,
            r.first_tid,
            r.second_tid,
            r.first_is_write,
            r.second_is_write,
        )
    });
    HbAnalysis { races, signature }
}

/// Shorthand: just the HB-equivalence fingerprint of a trace.
pub fn hb_signature(trace: &Trace, nthreads: usize) -> u64 {
    analyze(trace, nthreads).signature
}

#[allow(clippy::too_many_arguments)]
fn record_write(
    a: Addr,
    t: ThreadId,
    index: u64,
    threads: &[VectorClock],
    last_write: &mut HashMap<u64, Access>,
    reads: &mut HashMap<u64, Vec<Access>>,
    races: &mut Vec<Race>,
) {
    if let Some(w) = last_write.get(&a.raw()) {
        if !w.vc.le(&threads[t]) {
            races.push(Race {
                addr: a,
                first_index: w.index,
                first_tid: w.tid,
                first_is_write: true,
                second_index: index,
                second_tid: t,
                second_is_write: true,
            });
        }
    }
    if let Some(rs) = reads.get(&a.raw()) {
        for r in rs {
            if r.tid != t && !r.vc.le(&threads[t]) {
                races.push(Race {
                    addr: a,
                    first_index: r.index,
                    first_tid: r.tid,
                    first_is_write: false,
                    second_index: index,
                    second_tid: t,
                    second_is_write: true,
                });
            }
        }
    }
    reads.remove(&a.raw());
    last_write.insert(
        a.raw(),
        Access {
            tid: t,
            vc: threads[t].clone(),
            index,
        },
    );
}

/// Per-address conflict sequence hashing: consecutive reads between two
/// writes commute, so they are folded as an unordered set; writes are
/// order-sensitive.
fn bump_conflict(addr_seq: &mut HashMap<u64, (u64, u64)>, a: Addr, tid: ThreadId, is_write: bool) {
    let entry = addr_seq.entry(a.raw()).or_insert((0x517c_c1b7, 0));
    if is_write {
        // Fold the pending read set, then the write, order-sensitively.
        entry.0 = mix(entry.0 ^ entry.1);
        entry.1 = 0;
        entry.0 = mix(entry.0 ^ mix(tid as u64 + 0x1000));
    } else {
        // Reads commute: accumulate commutatively.
        entry.1 = entry.1.wrapping_add(mix(tid as u64 + 0x2000));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, RunConfig, SchedulerKind, SwitchPolicy, ValKind};

    fn run_traced(
        build: impl Fn(&mut ProgramBuilder, tsim::Region),
        seed: u64,
        every_access: bool,
    ) -> (Trace, usize) {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("g", ValKind::U64, 2);
        build(&mut b, g);
        let mut cfg = RunConfig::random(seed).with_trace();
        if every_access {
            cfg = cfg.with_switch(SwitchPolicy::EveryAccess);
        }
        let out = b.build().run(&cfg).unwrap();
        (out.trace.unwrap(), 2)
    }

    #[test]
    fn locked_accesses_do_not_race() {
        let (trace, n) = run_traced(
            |b, g| {
                let l = b.mutex();
                for _ in 0..2 {
                    b.thread(move |ctx| {
                        ctx.lock(l);
                        let v = ctx.load(g.at(0));
                        ctx.store(g.at(0), v + 1);
                        ctx.unlock(l);
                    });
                }
            },
            3,
            false,
        );
        let hb = analyze(&trace, n);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn unlocked_conflicting_writes_race() {
        let (trace, n) = run_traced(
            |b, g| {
                for t in 0..2u64 {
                    b.thread(move |ctx| {
                        ctx.store(g.at(0), t + 1);
                    });
                }
            },
            3,
            false,
        );
        let hb = analyze(&trace, n);
        assert_eq!(hb.races.len(), 1);
        assert!(hb.races[0].first_is_write && hb.races[0].second_is_write);
        assert_eq!(hb.races[0].addr, Addr(tsim::GLOBALS_BASE));
    }

    #[test]
    fn disjoint_writes_do_not_race() {
        let (trace, n) = run_traced(
            |b, g| {
                for t in 0..2usize {
                    b.thread(move |ctx| {
                        ctx.store(g.at(t), 1);
                    });
                }
            },
            3,
            false,
        );
        assert!(analyze(&trace, n).races.is_empty());
    }

    #[test]
    fn barrier_orders_accesses() {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("g", ValKind::U64, 1);
        let bar = b.barrier();
        b.thread(move |ctx| {
            ctx.store(g.at(0), 1);
            ctx.barrier(bar);
        });
        b.thread(move |ctx| {
            ctx.barrier(bar);
            let _ = ctx.load(g.at(0));
        });
        let out = b.build().run(&RunConfig::random(1).with_trace()).unwrap();
        let hb = analyze(&out.trace.unwrap(), 2);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn rmw_synchronizes() {
        let (trace, n) = run_traced(
            |b, g| {
                for _ in 0..2 {
                    b.thread(move |ctx| {
                        ctx.fetch_add(g.at(0), 1);
                    });
                }
            },
            5,
            false,
        );
        assert!(analyze(&trace, n).races.is_empty());
    }

    #[test]
    fn read_write_race_detected() {
        let (trace, n) = run_traced(
            |b, g| {
                b.thread(move |ctx| {
                    let _ = ctx.load(g.at(0));
                });
                b.thread(move |ctx| {
                    ctx.store(g.at(0), 9);
                });
            },
            2,
            true,
        );
        let hb = analyze(&trace, n);
        assert!(!hb.races.is_empty());
    }

    #[test]
    fn hb_signature_distinguishes_lock_orders_but_not_noise() {
        // Two runs with the same lock acquisition order have the same
        // signature even if scheduled differently in between; runs with
        // different lock orders differ.
        let run = |script: Vec<u32>| {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("g", ValKind::U64, 1);
            let l = b.mutex();
            for t in 0..2u64 {
                b.thread(move |ctx| {
                    ctx.work(5);
                    ctx.lock(l);
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + t + 1);
                    ctx.unlock(l);
                });
            }
            let cfg = RunConfig::random(0)
                .with_trace()
                .with_scheduler(SchedulerKind::Scripted {
                    script: std::sync::Arc::new(script),
                });
            let out = b.build().run(&cfg).unwrap();
            hb_signature(&out.trace.unwrap(), 2)
        };
        let t0_first_a = run(vec![0, 0, 0, 0, 1]);
        let t0_first_b = run(vec![0, 0, 0, 1, 0, 0]);
        let t1_first = run(vec![1, 1, 1, 1, 0]);
        assert_eq!(t0_first_a, t0_first_b, "same HB class");
        assert_ne!(t0_first_a, t1_first, "different lock order");
    }

    #[test]
    fn rwlock_protected_accesses_do_not_race() {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("g", ValKind::U64, 1);
        let rw = b.rwlock();
        b.thread(move |ctx| {
            ctx.write_lock(rw);
            ctx.store(g.at(0), 1);
            ctx.write_unlock(rw);
        });
        b.thread(move |ctx| {
            ctx.read_lock(rw);
            let _ = ctx.load(g.at(0));
            ctx.read_unlock(rw);
        });
        let out = b.build().run(&RunConfig::random(4).with_trace()).unwrap();
        let hb = analyze(&out.trace.unwrap(), 2);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn semaphore_signal_orders_accesses() {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("g", ValKind::U64, 1);
        let sem = b.semaphore(0);
        b.thread(move |ctx| {
            ctx.store(g.at(0), 7);
            ctx.sem_post(sem);
        });
        b.thread(move |ctx| {
            ctx.sem_wait(sem);
            let _ = ctx.load(g.at(0));
        });
        let out = b.build().run(&RunConfig::random(4).with_trace()).unwrap();
        let hb = analyze(&out.trace.unwrap(), 2);
        assert!(hb.races.is_empty(), "{:?}", hb.races);
    }

    #[test]
    fn vector_clock_laws() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a), "concurrent");
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 1);
        assert_eq!(b.get(2), 0);
    }
}
