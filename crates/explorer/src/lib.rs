//! `instantcheck-explorer` — the Section-6 applications of fast
//! memory-state hashing.
//!
//! Fast comparison of memory states is a powerful primitive beyond
//! determinism checking. This crate implements the three uses the paper
//! outlines:
//!
//! * [`races`] — **filtering out benign data races** (§6.1): detect races
//!   with vector clocks on recorded traces, then compare the state hashes
//!   of runs in which the race resolved in each order; races whose both
//!   orders reach the same state are benign (Narayanasamy et al. report
//!   ~90% of races are).
//! * [`systematic`] — **speeding up systematic testing** (§6.2): a
//!   CHESS-style stateless explorer that enumerates interleavings and
//!   shows how many executions a happens-before-equivalence prune keeps
//!   versus a state-hash-equivalence prune (hashes prune strictly more,
//!   because runs with different synchronization orders can still reach
//!   identical states — the paper's Figure 1).
//! * [`replay`] — **assisting deterministic replay** (§6.3): given only a
//!   partial decision log of an original run, search completions and use
//!   the state hash to detect when a completion reproduces the *entire*
//!   original state, not just the bug.
//!
//! The [`hb`] module provides the vector-clock substrate shared by the
//! three.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hb;
pub mod races;
pub mod replay;
pub mod systematic;
