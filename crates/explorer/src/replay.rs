//! Assisting deterministic replay with state hashes (§6.3).
//!
//! Recent replay systems save only a *partial* log of the original
//! execution and, at replay time, search the executions consistent with
//! the log for one that reproduces the bug. InstantCheck's contribution:
//! with a cheap state hash recorded alongside the partial log, the
//! search can detect when a candidate reproduces the *entire original
//! state* (letting the programmer inspect every variable), and can
//! abort a divergent candidate early by comparing hashes at intermediate
//! checkpoints.

use std::sync::Arc;

use adhash::HashSum;
use instantcheck::{CheckMonitor, IgnoreSpec, Scheme};
use tsim::{Program, RunConfig, SchedulerKind, SimError};

/// The partial log a replay system would save: a prefix of the scheduler
/// decisions, plus the original run's per-checkpoint state hashes.
#[derive(Debug, Clone)]
pub struct PartialLog {
    /// The logged decision prefix.
    pub prefix: Vec<u32>,
    /// Scheduler decisions beyond the prefix are *not* logged; this is
    /// the total decision count of the original run (for reporting).
    pub original_decisions: usize,
    /// The original run's checkpoint hash sequence (ending with the
    /// final state hash).
    pub checkpoint_hashes: Vec<HashSum>,
    /// Seed of the original run.
    pub original_seed: u64,
}

/// Records an original execution and keeps only `fraction` (0..=1) of
/// its decisions as the partial log.
///
/// # Errors
///
/// Propagates any [`SimError`] from the recording run.
pub fn record_partial_log<F: Fn() -> Program>(
    source: &F,
    seed: u64,
    fraction: f64,
) -> Result<PartialLog, SimError> {
    let rc = RunConfig::random(seed);
    let monitor = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
    let out = source().run_with(&rc, monitor)?;
    let keep = ((out.decisions.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    let hashes = out.monitor.into_hashes();
    Ok(PartialLog {
        prefix: out.decisions[..keep].to_vec(),
        original_decisions: out.decisions.len(),
        checkpoint_hashes: hashes.checkpoints.iter().map(|c| c.hash).collect(),
        original_seed: seed,
    })
}

/// The outcome of a replay search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayResult {
    /// Candidate executions tried before full-state reproduction.
    pub attempts: usize,
    /// The completion seed that reproduced the original state, if any.
    pub reproducing_seed: Option<u64>,
    /// Candidates rejected *early* — at an intermediate checkpoint —
    /// thanks to the logged hashes (without running them to the end
    /// a comparison-capable system would stop here; we count them).
    pub early_rejects: usize,
}

/// Searches executions that obey `log.prefix` for one whose checkpoint
/// hash sequence matches the original's — i.e. a replay that reproduces
/// the entire state, not just the final symptom.
///
/// # Errors
///
/// Propagates any [`SimError`] from candidate runs.
pub fn search_replay<F: Fn() -> Program>(
    source: &F,
    log: &PartialLog,
    max_attempts: usize,
) -> Result<ReplayResult, SimError> {
    let prefix = Arc::new(log.prefix.clone());
    let mut early_rejects = 0;
    for attempt in 0..max_attempts {
        let completion_seed = 0x5eed_0000 + attempt as u64;
        let rc = RunConfig::random(0).with_scheduler(SchedulerKind::ScriptedThenRandom {
            script: Arc::clone(&prefix),
            seed: completion_seed,
        });
        let monitor = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
        let out = source().run_with(&rc, monitor)?;
        let hashes = out.monitor.into_hashes();
        let got: Vec<HashSum> = hashes.checkpoints.iter().map(|c| c.hash).collect();
        if got == log.checkpoint_hashes {
            return Ok(ReplayResult {
                attempts: attempt + 1,
                reproducing_seed: Some(completion_seed),
                early_rejects,
            });
        }
        // Count candidates that already diverged before the final
        // checkpoint: the logged hashes would have let the replayer
        // abandon them early.
        let diverged_early = got
            .iter()
            .zip(&log.checkpoint_hashes)
            .take(got.len().saturating_sub(1))
            .any(|(a, b)| a != b);
        if diverged_early {
            early_rejects += 1;
        }
    }
    Ok(ReplayResult {
        attempts: max_attempts,
        reproducing_seed: None,
        early_rejects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, ValKind};

    /// A program whose final state depends on the lock order in *two*
    /// places, so a short prefix does not determine the outcome.
    fn order_sensitive() -> Program {
        let mut b = ProgramBuilder::new(3);
        let g = b.global("g", ValKind::U64, 2);
        let bar = b.barrier();
        let lock = b.mutex();
        for t in 0..3u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v * 3 + t);
                ctx.unlock(lock);
                ctx.barrier(bar);
                ctx.lock(lock);
                let v = ctx.load(g.at(1));
                ctx.store(g.at(1), v * 5 + t);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    #[test]
    fn full_log_replays_first_try() {
        let log = record_partial_log(&order_sensitive, 42, 1.0).unwrap();
        let result = search_replay(&order_sensitive, &log, 10).unwrap();
        assert_eq!(result.attempts, 1);
        assert!(result.reproducing_seed.is_some());
    }

    #[test]
    fn partial_log_needs_a_search_and_hash_confirms_reproduction() {
        let log = record_partial_log(&order_sensitive, 42, 0.5).unwrap();
        assert!(log.prefix.len() < log.original_decisions);
        let result = search_replay(&order_sensitive, &log, 500).unwrap();
        assert!(
            result.reproducing_seed.is_some(),
            "some completion must reproduce the state"
        );
        // Confirm reproduction is genuine: re-run with the reported seed
        // and compare the checkpoint hashes again.
        let prefix = Arc::new(log.prefix.clone());
        let rc = RunConfig::random(0).with_scheduler(SchedulerKind::ScriptedThenRandom {
            script: prefix,
            seed: result.reproducing_seed.unwrap(),
        });
        let monitor = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
        let out = order_sensitive().run_with(&rc, monitor).unwrap();
        let got: Vec<HashSum> = out
            .monitor
            .into_hashes()
            .checkpoints
            .iter()
            .map(|c| c.hash)
            .collect();
        assert_eq!(got, log.checkpoint_hashes);
    }

    #[test]
    fn intermediate_hashes_reject_divergent_candidates_early() {
        let log = record_partial_log(&order_sensitive, 7, 0.25).unwrap();
        let result = search_replay(&order_sensitive, &log, 200).unwrap();
        if result.reproducing_seed.is_none() {
            // Even if nothing reproduced within budget, early rejection
            // must have pruned candidates.
            assert!(result.early_rejects > 0);
        }
    }
}
