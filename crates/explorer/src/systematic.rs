//! Systematic testing with state pruning (§6.2).
//!
//! A CHESS-style stateless explorer: it enumerates every scheduling of a
//! program by depth-first search over the scheduler's decision tree
//! (forcing a decision prefix with a scripted scheduler and letting a
//! deterministic fallback complete the run). For each complete execution
//! it records the happens-before equivalence class (what CHESS prunes
//! on) and the final state hash (what InstantCheck lets a tool prune
//! on). Because different synchronization orders can reach identical
//! states — the paper's Figure 1 — the state-hash partition is always
//! coarser, i.e. hash pruning explores at most as many (usually far
//! fewer) executions than HB pruning.

use std::collections::HashSet;
use std::sync::Arc;

use instantcheck::{CheckMonitor, IgnoreSpec, Scheme};
use tsim::{Program, RunConfig, SchedulerKind, SimError};

use crate::hb;

/// Statistics from an exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorationStats {
    /// Complete executions enumerated (schedules explored without any
    /// pruning).
    pub executions: usize,
    /// Distinct happens-before classes among them — the number of
    /// executions a CHESS-style HB prune must still explore.
    pub distinct_hb_classes: usize,
    /// Distinct final states (by hash) — the number an InstantCheck
    /// state prune must still explore.
    pub distinct_final_states: usize,
    /// Distinct per-checkpoint state-hash *sequences* — state pruning at
    /// every checkpoint rather than only at the end.
    pub distinct_state_sequences: usize,
    /// `true` if the exploration hit the execution budget before
    /// exhausting the tree.
    pub truncated: bool,
}

impl ExplorationStats {
    /// How many executions state pruning saves relative to HB pruning.
    pub fn hash_vs_hb_savings(&self) -> usize {
        self.distinct_hb_classes
            .saturating_sub(self.distinct_final_states)
    }
}

/// Exhaustively explores every schedule of `source` (up to `limit`
/// executions), classifying executions by HB signature and by state
/// hash.
///
/// The program must be small: the schedule tree grows exponentially.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn explore<F: Fn() -> Program>(source: F, limit: usize) -> Result<ExplorationStats, SimError> {
    let mut pending: Vec<Vec<u32>> = vec![Vec::new()];
    let mut executions = 0usize;
    let mut hb_classes: HashSet<u64> = HashSet::new();
    let mut final_states: HashSet<u64> = HashSet::new();
    let mut state_sequences: HashSet<Vec<u64>> = HashSet::new();
    let mut truncated = false;

    while let Some(prefix) = pending.pop() {
        if executions >= limit {
            truncated = true;
            break;
        }
        let forced = prefix.len();
        let rc = RunConfig::random(0)
            .with_trace()
            .with_options_recorded()
            .with_scheduler(SchedulerKind::Scripted {
                script: Arc::new(prefix),
            });
        let monitor = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
        let out = source().run_with(&rc, monitor)?;
        executions += 1;

        let nthreads = out.instr.len();
        let trace = out.trace.as_ref().expect("trace requested");
        hb_classes.insert(hb::hb_signature(trace, nthreads));
        let hashes = out.monitor.into_hashes();
        let seq: Vec<u64> = hashes.checkpoints.iter().map(|c| c.hash.as_raw()).collect();
        final_states.insert(seq.last().copied().unwrap_or(0));
        state_sequences.insert(seq);

        // Branch: for every decision point past the forced prefix, try
        // each untried alternative. Alternatives are pushed deepest-last
        // so the DFS visits each complete schedule exactly once.
        for k in (forced..out.decisions.len()).rev() {
            let chosen = out.decisions[k];
            for &alt in &out.decision_options[k] {
                if alt != chosen {
                    let mut next = out.decisions[..k].to_vec();
                    next.push(alt);
                    pending.push(next);
                }
            }
        }
    }

    Ok(ExplorationStats {
        executions,
        distinct_hb_classes: hb_classes.len(),
        distinct_final_states: final_states.len(),
        distinct_state_sequences: state_sequences.len(),
        truncated,
    })
}

/// Statistics from a *state-pruned* segmented exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunedExplorationStats {
    /// Runs actually executed (the cost of the pruned search).
    pub executions: usize,
    /// Representatives kept at each checkpoint frontier (distinct state
    /// hashes).
    pub frontier_sizes: Vec<usize>,
    /// Distinct final states found.
    pub distinct_final_states: usize,
    /// `true` if some segment hit the execution budget.
    pub truncated: bool,
}

/// Explores a *barrier-structured* program segment by segment, keeping
/// only one representative schedule per distinct state hash at each
/// checkpoint — the InstantCheck-enabled pruning of §6.2.
///
/// Between checkpoints, all schedules of a segment are enumerated from
/// each surviving representative; schedules reaching an
/// already-seen state at the next checkpoint are pruned (their subtrees
/// coincide in reachable states, because at a completed barrier every
/// thread is at a known program point, so the memory state determines
/// the rest of the execution tree). For programs whose phases commute
/// internally this collapses the multiplicative schedule tree into an
/// additive one; the `pruning` harness binary prints the comparison.
///
/// The same soundness caveat as CHESS-style state caching applies: the
/// checkpoint must be a full barrier (all threads quiescent), which the
/// simulator's pthread-barrier checkpoints guarantee. A `2^-64`
/// hash-collision risk is inherited from InstantCheck itself.
///
/// # Errors
///
/// Propagates any [`SimError`].
pub fn explore_with_state_pruning<F: Fn() -> Program>(
    source: F,
    limit: usize,
) -> Result<PrunedExplorationStats, SimError> {
    let mut executions = 0usize;
    let mut truncated = false;
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];
    let mut frontier_sizes = Vec::new();
    let mut final_states: HashSet<u64> = HashSet::new();
    let mut segment = 0usize;

    loop {
        // Enumerate all schedules of segment `segment` from every
        // representative; collect (hash at this segment's checkpoint →
        // prefix up to that checkpoint) and any finished runs.
        let mut next: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
        let mut any_continues = false;

        let mut pending: Vec<Vec<u32>> = frontier.clone();

        while let Some(prefix) = pending.pop() {
            if executions >= limit {
                truncated = true;
                break;
            }
            let forced = prefix.len();
            let rc = RunConfig::random(0).with_options_recorded().with_scheduler(
                SchedulerKind::Scripted {
                    script: Arc::new(prefix),
                },
            );
            let monitor = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
            let out = source().run_with(&rc, monitor)?;
            executions += 1;

            let hashes = out.monitor.into_hashes();
            let cdi = &out.checkpoint_decision_index;
            // The segment boundary: the decision index at which this
            // run fired its `segment`-th checkpoint.
            let boundary = cdi.get(segment).copied().unwrap_or(out.decisions.len());
            let is_last_checkpoint = segment + 1 >= cdi.len();

            // Record this run's state at the segment checkpoint.
            if let Some(rec) = hashes.checkpoints.get(segment) {
                next.entry(rec.hash.as_raw())
                    .or_insert_with(|| out.decisions[..boundary].to_vec());
            }
            if is_last_checkpoint {
                if let Some(last) = hashes.checkpoints.last() {
                    final_states.insert(last.hash.as_raw());
                }
            } else {
                any_continues = true;
            }

            // Branch only on decisions inside this segment.
            for k in (forced..boundary.min(out.decisions.len())).rev() {
                let chosen = out.decisions[k];
                for &alt in &out.decision_options[k] {
                    if alt != chosen {
                        let mut p = out.decisions[..k].to_vec();
                        p.push(alt);
                        pending.push(p);
                    }
                }
            }
        }

        frontier_sizes.push(next.len());
        if truncated || !any_continues || next.is_empty() {
            // Last segment's checkpoint was the End checkpoint (or we
            // ran out): its distinct hashes are the final states.
            if !next.is_empty() && !any_continues {
                for h in next.keys() {
                    final_states.insert(*h);
                }
            }
            break;
        }
        frontier = next.into_values().collect();
        frontier.sort();
        segment += 1;
    }

    Ok(PrunedExplorationStats {
        executions,
        frontier_sizes,
        distinct_final_states: final_states.len(),
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, ValKind};

    /// The paper's Figure 1: commutative `G += L` under a lock. Two lock
    /// orders (two HB classes), one final state.
    fn figure1() -> Program {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        b.setup(move |s| s.store(g.at(0), 2));
        for local in [7u64, 3u64] {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + local);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    /// Order-dependent: last writer wins. Two HB classes, two states.
    fn last_writer() -> Program {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..2u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                ctx.store(g.at(0), t + 1);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    #[test]
    fn figure1_hash_prunes_more_than_hb() {
        let stats = explore(figure1, 10_000).unwrap();
        assert!(!stats.truncated);
        assert!(stats.executions >= 2);
        assert_eq!(stats.distinct_hb_classes, 2, "two lock orders");
        assert_eq!(stats.distinct_final_states, 1, "one final state");
        assert!(stats.hash_vs_hb_savings() >= 1);
        // Ordering: states ≤ HB classes ≤ executions.
        assert!(stats.distinct_final_states <= stats.distinct_hb_classes);
        assert!(stats.distinct_hb_classes <= stats.executions);
    }

    #[test]
    fn last_writer_keeps_both_classes() {
        let stats = explore(last_writer, 10_000).unwrap();
        assert_eq!(stats.distinct_hb_classes, 2);
        assert_eq!(stats.distinct_final_states, 2, "truly different outcomes");
        assert_eq!(stats.hash_vs_hb_savings(), 0);
    }

    #[test]
    fn three_commuting_threads_collapse_to_one_state() {
        let build = || {
            let mut b = ProgramBuilder::new(3);
            let g = b.global("G", ValKind::U64, 1);
            let lock = b.mutex();
            for t in 0..3u64 {
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + 10 * (t + 1));
                    ctx.unlock(lock);
                });
            }
            b.build()
        };
        let stats = explore(build, 100_000).unwrap();
        assert!(!stats.truncated);
        assert_eq!(stats.distinct_final_states, 1);
        assert_eq!(stats.distinct_hb_classes, 6, "3! lock orders");
        assert!(stats.executions >= 6);
    }

    #[test]
    fn truncation_is_reported() {
        let stats = explore(last_writer, 1).unwrap();
        assert!(stats.truncated);
        assert_eq!(stats.executions, 1);
    }

    /// A two-phase barrier program whose phases commute internally: the
    /// full schedule tree is (phase1 × phase2) but state pruning visits
    /// roughly (phase1 + phase2).
    fn two_phase_commuting() -> Program {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("G", ValKind::U64, 2);
        let bar = b.barrier();
        let lock = b.mutex();
        for t in 0..2u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + 10 * (t + 1));
                ctx.unlock(lock);
                ctx.barrier(bar);
                ctx.lock(lock);
                let v = ctx.load(g.at(1));
                ctx.store(g.at(1), v + 100 * (t + 1));
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    #[test]
    fn segmented_pruning_collapses_commuting_phases() {
        let full = explore(two_phase_commuting, 2_000_000).unwrap();
        let pruned = explore_with_state_pruning(two_phase_commuting, 2_000_000).unwrap();
        assert!(!full.truncated && !pruned.truncated);
        // Both agree on the reachable final states.
        assert_eq!(pruned.distinct_final_states, full.distinct_final_states);
        assert_eq!(pruned.distinct_final_states, 1);
        // The pruned search does strictly less work.
        assert!(
            pruned.executions < full.executions / 2,
            "pruned {} vs full {}",
            pruned.executions,
            full.executions
        );
        // One representative survives each barrier frontier.
        assert!(pruned.frontier_sizes.iter().all(|&n| n == 1));
    }

    #[test]
    fn segmented_pruning_preserves_genuinely_different_states() {
        // Last-writer phases: states multiply; pruning must keep them.
        fn two_phase_last_writer() -> Program {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("G", ValKind::U64, 2);
            let bar = b.barrier();
            let lock = b.mutex();
            for t in 0..2u64 {
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    ctx.store(g.at(0), t + 1);
                    ctx.unlock(lock);
                    ctx.barrier(bar);
                    ctx.lock(lock);
                    ctx.store(g.at(1), (t + 1) * 10);
                    ctx.unlock(lock);
                });
            }
            b.build()
        }
        let full = explore(two_phase_last_writer, 2_000_000).unwrap();
        let pruned = explore_with_state_pruning(two_phase_last_writer, 2_000_000).unwrap();
        assert_eq!(pruned.distinct_final_states, full.distinct_final_states);
        assert_eq!(pruned.distinct_final_states, 4, "2 × 2 outcomes");
    }
}
