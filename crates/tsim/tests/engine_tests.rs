//! End-to-end tests of the simulation engine: scheduling, synchronization,
//! monitoring, replay, and failure modes.

use std::sync::{Arc, Mutex};

use tsim::{
    Addr, CheckpointKind, Monitor, ProgramBuilder, RunConfig, SchedulerKind, SimError,
    SwitchPolicy, ThreadId, TypeTag, ValKind,
};

/// A monitor that records everything it sees (shared so tests can assert
/// on it after the run returns it by value).
type StoreEvent = (ThreadId, Addr, u64, u64, ValKind);

#[derive(Debug, Default, Clone)]
struct Recorder {
    stores: Arc<Mutex<Vec<StoreEvent>>>,
    checkpoints: Arc<Mutex<Vec<CheckpointKind>>>,
    allocs: Arc<Mutex<Vec<(&'static str, usize)>>>,
    frees: Arc<Mutex<Vec<Vec<u64>>>>,
    outputs: Arc<Mutex<Vec<u8>>>,
}

impl Monitor for Recorder {
    fn on_store(&mut self, tid: ThreadId, addr: Addr, old: u64, new: u64, kind: ValKind) {
        self.stores
            .lock()
            .unwrap()
            .push((tid, addr, old, new, kind));
    }
    fn on_alloc(&mut self, _tid: ThreadId, block: &tsim::BlockInfo) {
        self.allocs.lock().unwrap().push((block.site, block.len));
    }
    fn on_free(&mut self, _tid: ThreadId, _block: &tsim::BlockInfo, contents: &[u64]) {
        self.frees.lock().unwrap().push(contents.to_vec());
    }
    fn on_output(&mut self, _tid: ThreadId, bytes: &[u8]) {
        self.outputs.lock().unwrap().extend_from_slice(bytes);
    }
    fn on_checkpoint(&mut self, info: &tsim::CheckpointInfo, _view: &tsim::StateView<'_>) {
        self.checkpoints.lock().unwrap().push(info.kind);
    }
}

/// The Figure 1 program: two threads do `G += L` under a lock.
fn figure1_program() -> (tsim::Program, tsim::Region) {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    b.setup(move |s| s.store(g.at(0), 2));
    for local in [7u64, 3u64] {
        b.thread(move |ctx| {
            ctx.lock(lock);
            let v = ctx.load(g.at(0));
            ctx.store(g.at(0), v + local);
            ctx.unlock(lock);
        });
    }
    (b.build(), g)
}

#[test]
fn figure1_final_state_is_deterministic() {
    for seed in 0..20 {
        let (prog, g) = figure1_program();
        let out = prog.run(&RunConfig::random(seed)).unwrap();
        assert_eq!(out.final_word(g.at(0)), Some(12), "seed {seed}");
    }
}

#[test]
fn same_seed_reproduces_decisions_and_instructions() {
    let run = |seed| {
        let (prog, _) = figure1_program();
        prog.run(&RunConfig::random(seed)).unwrap()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.instr, b.instr);
    assert_eq!(a.steps, b.steps);
}

#[test]
fn different_seeds_reach_different_interleavings() {
    let decisions: Vec<_> = (0..10)
        .map(|seed| {
            let (prog, _) = figure1_program();
            prog.run(&RunConfig::random(seed)).unwrap().decisions
        })
        .collect();
    assert!(
        decisions.windows(2).any(|w| w[0] != w[1]),
        "ten seeds should not all produce the same schedule"
    );
}

#[test]
fn scripted_scheduler_replays_a_run() {
    let (prog, _) = figure1_program();
    let original = prog.run(&RunConfig::random(3).with_trace()).unwrap();

    let (prog2, _) = figure1_program();
    let script = Arc::new(original.decisions.clone());
    let replayed = prog2
        .run(
            &RunConfig::random(0)
                .with_scheduler(SchedulerKind::Scripted { script })
                .with_trace(),
        )
        .unwrap();
    assert_eq!(original.decisions, replayed.decisions);
    assert_eq!(original.trace, replayed.trace);
}

#[test]
fn monitor_observes_stores_with_old_values() {
    let (prog, g) = figure1_program();
    let rec = Recorder::default();
    let out = prog.run_with(&RunConfig::random(1), rec).unwrap();
    let stores = out.monitor.stores.lock().unwrap().clone();
    // setup store (2 over 0) + two increments.
    assert_eq!(stores.len(), 3);
    assert_eq!(stores[0], (0, g.at(0), 0, 2, ValKind::U64));
    let (_, _, old1, new1, _) = stores[1];
    let (_, _, old2, new2, _) = stores[2];
    assert_eq!(old1, 2);
    assert_eq!(new1, old2, "second writer sees first writer's value");
    assert_eq!(new2, 12);
}

#[test]
fn barriers_fire_checkpoints_in_order() {
    let mut b = ProgramBuilder::new(4);
    let bar = b.barrier();
    for _ in 0..4 {
        b.thread(move |ctx| {
            for _ in 0..3 {
                ctx.barrier(bar);
            }
        });
    }
    let rec = Recorder::default();
    let out = b.build().run_with(&RunConfig::random(5), rec).unwrap();
    let cps = out.monitor.checkpoints.lock().unwrap().clone();
    assert_eq!(cps.len(), 4); // 3 barriers + End
    assert!(matches!(cps[0], CheckpointKind::Barrier(_)));
    assert!(matches!(cps[3], CheckpointKind::End));
    assert_eq!(out.checkpoints, 4);
}

#[test]
fn barrier_actually_synchronizes_phases() {
    // Phase 1: each thread writes its slot. Phase 2: each thread reads all
    // slots; the barrier guarantees it sees every phase-1 write.
    let n = 8;
    let mut b = ProgramBuilder::new(n);
    let slots = b.global("slots", ValKind::U64, n);
    let sums = b.global("sums", ValKind::U64, n);
    let bar = b.barrier();
    for tid in 0..n {
        b.thread(move |ctx| {
            ctx.store(slots.at(tid), (tid as u64) + 1);
            ctx.barrier(bar);
            let mut sum = 0;
            for i in 0..n {
                sum += ctx.load(slots.at(i));
            }
            ctx.store(sums.at(tid), sum);
        });
    }
    let out = b.build().run(&RunConfig::random(11)).unwrap();
    let expect = (1..=n as u64).sum::<u64>();
    for tid in 0..n {
        assert_eq!(out.final_word(sums.at(tid)), Some(expect));
    }
}

#[test]
fn lock_provides_mutual_exclusion_for_rmw_sequences() {
    // Without the lock this increment pattern loses updates under an
    // access-granular scheduler; with the lock it must not.
    let n = 4;
    let iters = 25;
    let mut b = ProgramBuilder::new(n);
    let g = b.global("counter", ValKind::U64, 1);
    let lock = b.mutex();
    for _ in 0..n {
        b.thread(move |ctx| {
            for _ in 0..iters {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + 1);
                ctx.unlock(lock);
            }
        });
    }
    let out = b
        .build()
        .run(&RunConfig::random(9).with_switch(SwitchPolicy::EveryAccess))
        .unwrap();
    assert_eq!(out.final_word(g.at(0)), Some((n * iters) as u64));
}

#[test]
fn racy_increments_lose_updates_under_access_preemption() {
    // Sanity-check that the simulator can actually *express* the race:
    // unlocked read-modify-write with preemption at every access must lose
    // updates for some seed.
    let n = 4;
    let iters = 20;
    let mut lost = false;
    for seed in 0..20 {
        let mut b = ProgramBuilder::new(n);
        let g = b.global("counter", ValKind::U64, 1);
        for _ in 0..n {
            b.thread(move |ctx| {
                for _ in 0..iters {
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + 1);
                }
            });
        }
        let out = b
            .build()
            .run(&RunConfig::random(seed).with_switch(SwitchPolicy::EveryAccess))
            .unwrap();
        if out.final_word(g.at(0)) != Some((n * iters) as u64) {
            lost = true;
            break;
        }
    }
    assert!(
        lost,
        "expected at least one seed to exhibit the lost update"
    );
}

#[test]
fn fetch_add_is_atomic_even_with_access_preemption() {
    let n = 4;
    let iters = 25;
    let mut b = ProgramBuilder::new(n);
    let g = b.global("counter", ValKind::U64, 1);
    for _ in 0..n {
        b.thread(move |ctx| {
            for _ in 0..iters {
                ctx.fetch_add(g.at(0), 1);
            }
        });
    }
    let out = b
        .build()
        .run(&RunConfig::random(13).with_switch(SwitchPolicy::EveryAccess))
        .unwrap();
    assert_eq!(out.final_word(g.at(0)), Some((n * iters) as u64));
}

#[test]
fn compare_and_swap_takes_effect_once() {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("flag", ValKind::U64, 1);
    let wins = b.global("wins", ValKind::U64, 2);
    for tid in 0..2 {
        b.thread(move |ctx| {
            let old = ctx.compare_and_swap(g.at(0), 0, tid as u64 + 1);
            if old == 0 {
                ctx.store(wins.at(tid), 1);
            }
        });
    }
    let out = b.build().run(&RunConfig::random(2)).unwrap();
    let w0 = out.final_word(wins.at(0)).unwrap();
    let w1 = out.final_word(wins.at(1)).unwrap();
    assert_eq!(w0 + w1, 1, "exactly one CAS must win");
}

#[test]
fn condvar_producer_consumer() {
    let mut b = ProgramBuilder::new(3);
    let q = b.global("queue", ValKind::U64, 1); // 0 = empty
    let done = b.global("done", ValKind::U64, 1);
    let consumed = b.global("consumed", ValKind::U64, 2);
    let lock = b.mutex();
    let cv = b.condvar();
    // Producer.
    b.thread(move |ctx| {
        for item in 1..=10u64 {
            ctx.lock(lock);
            while ctx.load(q.at(0)) != 0 {
                ctx.cond_wait(cv, lock);
            }
            ctx.store(q.at(0), item);
            ctx.cond_broadcast(cv);
            ctx.unlock(lock);
        }
        ctx.lock(lock);
        ctx.store(done.at(0), 1);
        ctx.cond_broadcast(cv);
        ctx.unlock(lock);
    });
    // Two consumers.
    for i in 0..2 {
        b.thread(move |ctx| {
            let mut count = 0u64;
            loop {
                ctx.lock(lock);
                while ctx.load(q.at(0)) == 0 && ctx.load(done.at(0)) == 0 {
                    ctx.cond_wait(cv, lock);
                }
                let item = ctx.load(q.at(0));
                if item != 0 {
                    ctx.store(q.at(0), 0);
                    count += 1;
                    ctx.cond_broadcast(cv);
                    ctx.unlock(lock);
                } else {
                    ctx.unlock(lock);
                    break;
                }
            }
            ctx.store(consumed.at(i), count);
        });
    }
    let out = b.build().run(&RunConfig::random(42)).unwrap();
    let c0 = out.final_word(consumed.at(0)).unwrap();
    let c1 = out.final_word(consumed.at(1)).unwrap();
    assert_eq!(c0 + c1, 10, "all items consumed exactly once");
}

#[test]
fn deadlock_is_detected() {
    let mut b = ProgramBuilder::new(2);
    let l1 = b.mutex();
    let l2 = b.mutex();
    b.thread(move |ctx| {
        ctx.lock(l1);
        for _ in 0..3 {
            ctx.sched_yield();
        }
        ctx.lock(l2);
        ctx.unlock(l2);
        ctx.unlock(l1);
    });
    b.thread(move |ctx| {
        ctx.lock(l2);
        for _ in 0..3 {
            ctx.sched_yield();
        }
        ctx.lock(l1);
        ctx.unlock(l1);
        ctx.unlock(l2);
    });
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    assert!(err.to_string().contains("waits on lock"));
}

#[test]
fn unlock_not_held_is_an_error() {
    let mut b = ProgramBuilder::new(1);
    let l = b.mutex();
    b.thread(move |ctx| ctx.unlock(l));
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    assert!(
        matches!(err, SimError::UnlockNotHeld { tid: 0, .. }),
        "{err}"
    );
}

#[test]
fn relock_is_an_error() {
    let mut b = ProgramBuilder::new(1);
    let l = b.mutex();
    b.thread(move |ctx| {
        ctx.lock(l);
        ctx.lock(l);
    });
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    assert!(matches!(err, SimError::RelockHeld { .. }), "{err}");
}

#[test]
fn bad_address_is_an_error() {
    let mut b = ProgramBuilder::new(1);
    b.thread(|ctx| {
        ctx.store(Addr(3), 1);
    });
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::BadAddress {
                tid: 0,
                addr: Addr(3)
            }
        ),
        "{err}"
    );
}

#[test]
fn bad_free_is_an_error() {
    let mut b = ProgramBuilder::new(1);
    b.thread(|ctx| {
        ctx.free(Addr(tsim::HEAP_BASE));
    });
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    assert!(matches!(err, SimError::BadFree { .. }), "{err}");
}

#[test]
fn workload_panic_is_reported() {
    let mut b = ProgramBuilder::new(2);
    let bar = b.barrier();
    b.thread(move |_ctx| panic!("assertion blew up"));
    b.thread(move |ctx| ctx.barrier(bar));
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    match err {
        SimError::ThreadPanic { tid: 0, message } => {
            assert!(message.contains("assertion blew up"));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn step_limit_stops_livelock() {
    let mut b = ProgramBuilder::new(1);
    b.thread(|ctx| loop {
        ctx.sched_yield();
    });
    let err = b
        .build()
        .run(&RunConfig::random(0).with_max_steps(1000))
        .unwrap_err();
    assert!(matches!(err, SimError::StepLimit { limit: 1000 }), "{err}");
}

#[test]
fn spin_loop_on_plain_loads_cannot_hang_the_engine() {
    // The forced-preemption backstop must let the flag-setting thread run
    // even under SyncOnly switching.
    let mut b = ProgramBuilder::new(2);
    let flag = b.global("flag", ValKind::U64, 1);
    b.thread(move |ctx| {
        while ctx.load(flag.at(0)) == 0 {
            ctx.work(1);
        }
    });
    b.thread(move |ctx| {
        ctx.store(flag.at(0), 1);
    });
    // Force the spinner to start first via a script preferring thread 0.
    let script = Arc::new(vec![0u32; 3]);
    let out = b
        .build()
        .run(&RunConfig::random(0).with_scheduler(SchedulerKind::Scripted { script }))
        .unwrap();
    assert_eq!(out.final_word(flag.at(0)), Some(1));
}

#[test]
fn malloc_free_lifecycle_is_observed() {
    let mut b = ProgramBuilder::new(1);
    b.thread(|ctx| {
        let p = ctx.malloc("nodes", TypeTag::u64s(), 3);
        ctx.store(p, 10);
        ctx.store(p.offset(2), 30);
        ctx.free(p);
        let q = ctx.malloc("nodes", TypeTag::u64s(), 3);
        // Reused memory is zero-filled.
        assert_eq!(ctx.load(q), 0);
        assert_eq!(ctx.load(q.offset(2)), 0);
    });
    let rec = Recorder::default();
    let out = b.build().run_with(&RunConfig::random(0), rec).unwrap();
    assert_eq!(
        out.monitor.allocs.lock().unwrap().as_slice(),
        &[("nodes", 3), ("nodes", 3)]
    );
    let frees = out.monitor.frees.lock().unwrap().clone();
    assert_eq!(
        frees,
        vec![vec![10, 0, 30]],
        "free sees contents at free time"
    );
}

#[test]
fn alloc_replay_fixes_addresses_across_schedules() {
    let build = || {
        let mut b = ProgramBuilder::new(2);
        let ptrs = b.global("ptrs", ValKind::U64, 2);
        for tid in 0..2usize {
            b.thread(move |ctx| {
                // Interleaving-dependent allocation order.
                let p = ctx.malloc("buf", TypeTag::u64s(), 4 + tid);
                ctx.store(ptrs.at(tid), p.raw());
            });
        }
        (b.build(), ptrs)
    };

    // Find two seeds with different allocation orders.
    let (p1, ptrs) = build();
    let out1 = p1.run(&RunConfig::random(0)).unwrap();
    let mut out2 = None;
    for seed in 1..50 {
        let (p2, _) = build();
        let o = p2.run(&RunConfig::random(seed)).unwrap();
        if o.final_word(ptrs.at(0)) != out1.final_word(ptrs.at(0)) {
            out2 = Some((seed, o));
            break;
        }
    }
    let (seed2, out2) = out2.expect("some schedule must swap the allocation order");
    assert_ne!(out1.final_word(ptrs.at(0)), out2.final_word(ptrs.at(0)));

    // Replaying run 1's allocations under run 2's seed restores run 1's
    // addresses.
    let (p3, _) = build();
    let out3 = p3
        .run(&RunConfig::random(seed2).with_alloc_replay(out1.alloc_log.clone()))
        .unwrap();
    assert_eq!(out1.final_word(ptrs.at(0)), out3.final_word(ptrs.at(0)));
    assert_eq!(out1.final_word(ptrs.at(1)), out3.final_word(ptrs.at(1)));
    assert_eq!(out3.replay_misses, 0);
}

#[test]
fn lib_replay_fixes_rand_and_time() {
    let build = || {
        let mut b = ProgramBuilder::new(1);
        let g = b.global("vals", ValKind::U64, 2);
        b.thread(move |ctx| {
            let r = ctx.rand_u64();
            let t = ctx.gettimeofday();
            ctx.store(g.at(0), r);
            ctx.store(g.at(1), t);
        });
        (b.build(), g)
    };
    let (p1, g) = build();
    let out1 = p1.run(&RunConfig::random(0).with_lib_seed(111)).unwrap();
    let (p2, _) = build();
    let out2 = p2.run(&RunConfig::random(0).with_lib_seed(222)).unwrap();
    assert_ne!(out1.final_word(g.at(0)), out2.final_word(g.at(0)));

    let (p3, _) = build();
    let out3 = p3
        .run(
            &RunConfig::random(0)
                .with_lib_seed(222)
                .with_lib_replay(out1.lib_log.clone()),
        )
        .unwrap();
    assert_eq!(out1.final_word(g.at(0)), out3.final_word(g.at(0)));
    assert_eq!(out1.final_word(g.at(1)), out3.final_word(g.at(1)));
}

#[test]
fn output_stream_is_collected_and_observed() {
    let mut b = ProgramBuilder::new(2);
    let lock = b.mutex();
    for tid in 0..2u8 {
        b.thread(move |ctx| {
            ctx.lock(lock);
            ctx.write_output(&[tid; 4]);
            ctx.unlock(lock);
        });
    }
    let rec = Recorder::default();
    let out = b.build().run_with(&RunConfig::random(3), rec).unwrap();
    assert_eq!(out.output.len(), 8);
    assert_eq!(out.monitor.outputs.lock().unwrap().len(), 8);
}

#[test]
fn manual_checkpoints_fire() {
    let mut b = ProgramBuilder::new(1);
    b.thread(|ctx| {
        for _ in 0..5 {
            ctx.checkpoint("iteration");
        }
    });
    let rec = Recorder::default();
    let out = b.build().run_with(&RunConfig::random(0), rec).unwrap();
    let cps = out.monitor.checkpoints.lock().unwrap().clone();
    assert_eq!(cps.len(), 6);
    assert!(matches!(cps[0], CheckpointKind::Manual("iteration")));
}

#[test]
fn trace_records_the_serialized_execution() {
    let (prog, _) = figure1_program();
    let out = prog.run(&RunConfig::random(1).with_trace()).unwrap();
    let trace = out.trace.expect("trace requested");
    assert!(!trace.is_empty());
    let locks = trace
        .events()
        .iter()
        .filter(|e| matches!(e.op, tsim::TraceOp::Lock(_)))
        .count();
    assert_eq!(locks, 2);
    assert_eq!(trace.accesses().count(), 4, "2 loads + 2 stores");
}

#[test]
fn f64_roundtrip_through_memory() {
    let mut b = ProgramBuilder::new(1);
    let g = b.global("x", ValKind::F64, 1);
    b.thread(move |ctx| {
        ctx.store_f64(g.at(0), 3.5);
        let v = ctx.load_f64(g.at(0));
        ctx.store_f64(g.at(0), v * 2.0);
    });
    let out = b.build().run(&RunConfig::random(0)).unwrap();
    assert_eq!(out.final_f64(g.at(0)), Some(7.0));
}

#[test]
fn instruction_counts_are_per_thread_and_work_is_charged() {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("g", ValKind::U64, 2);
    b.thread(move |ctx| {
        ctx.work(100);
        ctx.store(g.at(0), 1);
    });
    b.thread(move |ctx| {
        ctx.store(g.at(1), 1);
    });
    let out = b.build().run(&RunConfig::random(0)).unwrap();
    assert_eq!(out.instr[0], 101);
    assert_eq!(out.instr[1], 1);
    assert_eq!(out.total_instructions(), 102);
}

#[test]
fn zero_fill_charging_is_conditional() {
    let build = || {
        let mut b = ProgramBuilder::new(1);
        b.thread(|ctx| {
            let _ = ctx.malloc("big", TypeTag::u64s(), 1000);
        });
        b.build()
    };
    let native = build().run(&RunConfig::random(0)).unwrap();
    assert_eq!(native.zero_fill_instr, 0);
    let checked = build()
        .run(&RunConfig::random(0).with_zero_fill_charged())
        .unwrap();
    assert_eq!(checked.zero_fill_instr, 1000);
    // The *native* instruction counts are identical either way.
    assert_eq!(native.total_instructions(), checked.total_instructions());
}

#[test]
fn final_state_view_exposes_live_blocks_only() {
    let mut b = ProgramBuilder::new(1);
    let keep = b.global("keep", ValKind::U64, 1);
    b.thread(move |ctx| {
        let dead = ctx.malloc("dead", TypeTag::u64s(), 2);
        let live = ctx.malloc("live", TypeTag::f64s(), 2);
        ctx.store(dead, 1);
        ctx.store_f64(live, 2.0);
        ctx.store(keep.at(0), live.raw());
        ctx.free(dead);
    });
    let out = b.build().run(&RunConfig::random(0)).unwrap();
    let view = out.final_state();
    assert_eq!(view.blocks().count(), 1);
    assert_eq!(view.blocks_at_site("live").count(), 1);
    assert_eq!(view.blocks_at_site("dead").count(), 0);
    // 1 global + 2 live heap words.
    assert_eq!(view.live_word_count(), 3);
    assert_eq!(view.global("keep").unwrap().region.len, 1);
}

#[test]
fn pct_scheduler_runs_programs() {
    let (prog, g) = figure1_program();
    let out = prog
        .run(&RunConfig::random(0).with_scheduler(SchedulerKind::Pct {
            seed: 4,
            depth: 3,
            expected_steps: 50,
        }))
        .unwrap();
    assert_eq!(out.final_word(g.at(0)), Some(12));
}

#[test]
fn round_robin_scheduler_runs_programs() {
    let (prog, g) = figure1_program();
    let out = prog
        .run(&RunConfig::random(0).with_scheduler(SchedulerKind::RoundRobin))
        .unwrap();
    assert_eq!(out.final_word(g.at(0)), Some(12));
}
