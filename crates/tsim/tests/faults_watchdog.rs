//! Integration tests of the deterministic fault-injection harness and
//! the wall-clock watchdog.

use std::time::Duration;

use minicheck::{check, Gen};
use tsim::{
    FaultKind, FaultPlan, Program, ProgramBuilder, RunConfig, SimError, SimErrorKind, Trigger,
    ValKind,
};

/// Two threads make locked commutative updates to a small shared array.
fn locked_adders() -> Program {
    let mut b = ProgramBuilder::new(2);
    let shared = b.global("shared", ValKind::U64, 4);
    let lock = b.mutex();
    for tid in 0..2u64 {
        b.thread(move |ctx| {
            for i in 0..40u64 {
                let cell = shared.at(((tid + i) % 4) as usize);
                ctx.lock(lock);
                let v = ctx.load(cell);
                ctx.store(cell, v + 1 + tid);
                ctx.unlock(lock);
            }
        });
    }
    b.build()
}

#[test]
fn stale_read_corrupts_monitor_but_not_memory() {
    let plan = FaultPlan::new(5).with(FaultKind::StaleRead, Trigger::Nth(10));
    let clean = locked_adders().run(&RunConfig::random(3)).unwrap();
    let faulted = locked_adders()
        .run(&RunConfig::random(3).with_faults(plan))
        .unwrap();
    assert_eq!(faulted.faults.len(), 1);
    assert_eq!(faulted.faults[0].kind, FaultKind::StaleRead);
    // Memory itself is untouched — only the monitor was lied to.
    for i in 0..4 {
        let a = tsim::Addr(tsim::GLOBALS_BASE + i);
        assert_eq!(clean.final_word(a), faulted.final_word(a));
    }
}

#[test]
fn bit_flip_lands_in_memory() {
    let plan = FaultPlan::new(5).with(FaultKind::BitFlip, Trigger::Nth(0));
    let clean = locked_adders().run(&RunConfig::random(3)).unwrap();
    let faulted = locked_adders()
        .run(&RunConfig::random(3).with_faults(plan))
        .unwrap();
    assert_eq!(faulted.faults.len(), 1);
    let differs = (0..4).any(|i| {
        let a = tsim::Addr(tsim::GLOBALS_BASE + i);
        clean.final_word(a) != faulted.final_word(a)
    });
    assert!(differs, "a flipped store must change the final state");
}

#[test]
fn alloc_fail_aborts_with_alloc_failed() {
    let plan = FaultPlan::new(1).with(FaultKind::AllocFail, Trigger::Nth(1));
    let mut b = ProgramBuilder::new(1);
    b.thread(|ctx| {
        for _ in 0..4 {
            let p = ctx.malloc("buf", tsim::TypeTag::u64s(), 8);
            ctx.store(p, 7);
        }
    });
    let err = b
        .build()
        .run(&RunConfig::random(0).with_faults(plan))
        .unwrap_err();
    assert_eq!(
        err,
        SimError::AllocFailed {
            tid: 0,
            site: "buf"
        }
    );
    assert_eq!(err.kind(), SimErrorKind::AllocFailed);
    assert!(!err.is_schedule_dependent());
}

#[test]
fn wake_drop_deadlocks_a_lock_handoff() {
    // Thread 0 takes the lock first (round-robin guarantees it), thread
    // 1 blocks on it; dropping thread 0's unlock wake leaves thread 1
    // blocked forever even though the lock is free.
    let build = || {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("g", ValKind::U64, 1);
        let lock = b.mutex();
        for tid in 0..2u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + tid + 1);
                ctx.unlock(lock);
            });
        }
        b.build()
    };
    let rr = RunConfig::random(0).with_scheduler(tsim::SchedulerKind::RoundRobin);
    build().run(&rr).expect("fault-free handoff completes");
    let plan = FaultPlan::new(0).with(FaultKind::WakeDrop, Trigger::Nth(0));
    let err = build().run(&rr.clone().with_faults(plan)).unwrap_err();
    assert_eq!(err.kind(), SimErrorKind::Deadlock);
    assert!(err.is_schedule_dependent());
}

#[test]
fn lib_perturb_changes_the_observed_stream() {
    let build = || {
        let mut b = ProgramBuilder::new(1);
        let g = b.global("g", ValKind::U64, 4);
        b.thread(move |ctx| {
            for i in 0..4 {
                let r = ctx.rand_u64();
                ctx.store(g.at(i), r);
            }
        });
        b.build()
    };
    let clean = build().run(&RunConfig::random(0)).unwrap();
    let plan = FaultPlan::new(9).with(FaultKind::LibPerturb, Trigger::Nth(2));
    let faulted = build()
        .run(&RunConfig::random(0).with_faults(plan))
        .unwrap();
    let read = |out: &tsim::RunOutcome<tsim::NullMonitor>, i| {
        out.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)).unwrap()
    };
    assert_eq!(read(&clean, 0), read(&faulted, 0));
    assert_eq!(read(&clean, 1), read(&faulted, 1));
    assert_ne!(
        read(&clean, 2),
        read(&faulted, 2),
        "the 3rd call is perturbed"
    );
    assert_eq!(read(&clean, 3), read(&faulted, 3));
}

#[test]
fn watchdog_fires_deadline_on_spin_livelock() {
    // Thread 1 spins forever on a flag nobody sets: plain loads only,
    // so without the watchdog this would run until the (huge) step
    // limit. The forced-preemption backstop turns the spin into
    // scheduling points where the deadline check fires.
    let mut b = ProgramBuilder::new(2);
    let flag = b.global("flag", ValKind::U64, 1);
    b.thread(move |ctx| {
        ctx.work(10);
    });
    b.thread(move |ctx| {
        while ctx.load(flag.at(0)) == 0 {
            // spin-wait on a flag that is never written
        }
    });
    let cfg = RunConfig::random(1)
        .with_max_steps(u64::MAX / 2)
        .with_deadline(Duration::from_millis(100));
    let err = b.build().run(&cfg).unwrap_err();
    assert_eq!(err.kind(), SimErrorKind::Deadline);
    assert_eq!(err, SimError::Deadline { limit_ms: 100 });
    assert!(err.is_schedule_dependent());
}

#[test]
fn generous_deadline_does_not_disturb_a_healthy_run() {
    let clean = locked_adders().run(&RunConfig::random(7)).unwrap();
    let watched = locked_adders()
        .run(&RunConfig::random(7).with_deadline(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(clean.decisions, watched.decisions);
    assert_eq!(clean.steps, watched.steps);
}

#[test]
fn fault_injection_is_bit_for_bit_reproducible() {
    // The acceptance property: the same fault seed (same plan, same
    // scheduler seed) reproduces the same failure — or the same fault
    // log and final state — bit for bit.
    check(
        "fault_injection_is_bit_for_bit_reproducible",
        24,
        |g: &mut Gen| {
            let fault_seed = g.u64();
            let sched_seed = g.u64_in(0, 1000);
            let plan = FaultPlan::new(fault_seed)
                .with(FaultKind::BitFlip, Trigger::Rate { num: 1, denom: 16 })
                .with(FaultKind::StaleRead, Trigger::Rate { num: 1, denom: 16 })
                .with(FaultKind::WakeDrop, Trigger::Rate { num: 1, denom: 32 });
            let run =
                || locked_adders().run(&RunConfig::random(sched_seed).with_faults(plan.clone()));
            match (run(), run()) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.faults, b.faults);
                    assert_eq!(a.decisions, b.decisions);
                    for i in 0..4 {
                        let addr = tsim::Addr(tsim::GLOBALS_BASE + i);
                        assert_eq!(a.final_word(addr), b.final_word(addr));
                    }
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!(
                    "outcomes diverged under one seed: {:?} vs {:?}",
                    a.map(|o| o.steps),
                    b.map(|o| o.steps)
                ),
            }
        },
    );
}
