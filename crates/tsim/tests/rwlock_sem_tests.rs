//! Tests of the reader-writer locks and counting semaphores.

use tsim::{ProgramBuilder, RunConfig, SimError, SwitchPolicy, ValKind};

#[test]
fn rwlock_allows_concurrent_readers_and_excludes_writers() {
    // Writers increment a counter; readers verify they never observe a
    // torn intermediate (the writer writes two words that must agree).
    let n = 6;
    for seed in 0..10 {
        let mut b = ProgramBuilder::new(n);
        let pair = b.global("pair", ValKind::U64, 2);
        let rw = b.rwlock();
        for t in 0..n {
            if t < 2 {
                // Writers.
                b.thread(move |ctx| {
                    for i in 0..10u64 {
                        ctx.write_lock(rw);
                        let v = ctx.load(pair.at(0));
                        ctx.store(pair.at(0), v + 1);
                        ctx.store(pair.at(1), v + 1);
                        ctx.write_unlock(rw);
                        let _ = i;
                    }
                });
            } else {
                // Readers.
                b.thread(move |ctx| {
                    for _ in 0..10 {
                        ctx.read_lock(rw);
                        let a = ctx.load(pair.at(0));
                        let bv = ctx.load(pair.at(1));
                        assert_eq!(a, bv, "torn read under the read lock");
                        ctx.read_unlock(rw);
                    }
                });
            }
        }
        let out = b
            .build()
            .run(&RunConfig::random(seed).with_switch(SwitchPolicy::EveryAccess))
            .unwrap();
        assert_eq!(out.final_word(pair.at(0)), Some(20), "seed {seed}");
        assert_eq!(out.final_word(pair.at(1)), Some(20), "seed {seed}");
    }
}

#[test]
fn write_unlock_without_hold_is_an_error() {
    let mut b = ProgramBuilder::new(1);
    let rw = b.rwlock();
    b.thread(move |ctx| ctx.write_unlock(rw));
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    assert!(
        matches!(err, SimError::RwUnlockNotHeld { write: true, .. }),
        "{err}"
    );
}

#[test]
fn read_unlock_without_hold_is_an_error() {
    let mut b = ProgramBuilder::new(1);
    let rw = b.rwlock();
    b.thread(move |ctx| ctx.read_unlock(rw));
    let err = b.build().run(&RunConfig::random(0)).unwrap_err();
    assert!(
        matches!(err, SimError::RwUnlockNotHeld { write: false, .. }),
        "{err}"
    );
}

#[test]
fn writer_blocks_until_readers_leave() {
    // Reader holds the lock, then a barrier-free handshake through a
    // semaphore lets the writer try; the writer's store must land after
    // the reader's verification.
    let mut b = ProgramBuilder::new(2);
    let g = b.global("g", ValKind::U64, 1);
    let rw = b.rwlock();
    let sem = b.semaphore(0);
    b.thread(move |ctx| {
        ctx.read_lock(rw);
        ctx.sem_post(sem); // writer may start trying
        for _ in 0..5 {
            ctx.sched_yield();
            assert_eq!(ctx.load(g.at(0)), 0, "writer broke in past the read lock");
        }
        ctx.read_unlock(rw);
    });
    b.thread(move |ctx| {
        ctx.sem_wait(sem);
        ctx.write_lock(rw);
        ctx.store(g.at(0), 1);
        ctx.write_unlock(rw);
    });
    let out = b.build().run(&RunConfig::random(3)).unwrap();
    assert_eq!(out.final_word(g.at(0)), Some(1));
}

#[test]
fn semaphore_bounds_a_resource_pool() {
    // A pool of 2 permits; 5 threads; occupancy must never exceed 2.
    let n = 5;
    for seed in 0..10 {
        let mut b = ProgramBuilder::new(n);
        let occupancy = b.global("occupancy", ValKind::U64, 1);
        let max_seen = b.global("max_seen", ValKind::U64, 1);
        let sem = b.semaphore(2);
        for _ in 0..n {
            b.thread(move |ctx| {
                for _ in 0..4 {
                    ctx.sem_wait(sem);
                    let occ = ctx.fetch_add(occupancy.at(0), 1) + 1;
                    let seen = ctx.load(max_seen.at(0));
                    if occ > seen {
                        ctx.store(max_seen.at(0), occ);
                    }
                    ctx.work(10);
                    ctx.fetch_add(occupancy.at(0), u64::MAX); // -1
                    ctx.sem_post(sem);
                }
            });
        }
        let out = b.build().run(&RunConfig::random(seed)).unwrap();
        let max = out.final_word(max_seen.at(0)).unwrap();
        assert!(max <= 2, "seed {seed}: occupancy reached {max}");
        assert!(max >= 1);
        assert_eq!(out.final_word(occupancy.at(0)), Some(0));
    }
}

#[test]
fn semaphore_as_signal_orders_work() {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("g", ValKind::U64, 1);
    let sem = b.semaphore(0);
    b.thread(move |ctx| {
        ctx.store(g.at(0), 7);
        ctx.sem_post(sem);
    });
    b.thread(move |ctx| {
        ctx.sem_wait(sem);
        assert_eq!(ctx.load(g.at(0)), 7);
        ctx.store(g.at(0), 8);
    });
    let out = b.build().run(&RunConfig::random(1)).unwrap();
    assert_eq!(out.final_word(g.at(0)), Some(8));
}

#[test]
fn rwlock_deadlock_is_detected() {
    // A thread that write-locks and never unlocks starves the reader.
    let mut b = ProgramBuilder::new(2);
    let rw = b.rwlock();
    b.thread(move |ctx| {
        ctx.write_lock(rw);
        // never unlocks; finishes while holding (a bug in the workload)…
    });
    b.thread(move |ctx| {
        // …ensure the writer grabs it first.
        for _ in 0..3 {
            ctx.sched_yield();
        }
        ctx.read_lock(rw);
        ctx.read_unlock(rw);
    });
    let script = std::sync::Arc::new(vec![0u32; 2]);
    let result = b
        .build()
        .run(&RunConfig::random(0).with_scheduler(tsim::SchedulerKind::Scripted { script }));
    match result {
        Err(SimError::Deadlock { detail }) => {
            assert!(detail.contains("rwlock"), "{detail}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}
