//! Property-based tests of the engine itself: for randomly generated
//! (deadlock-free) programs, runs are bit-reproducible given the seed,
//! decision replay reproduces the trace exactly, and locked commutative
//! updates are conserved under every schedule.

use minicheck::{check, Gen};
use tsim::{Program, ProgramBuilder, RunConfig, SchedulerKind, SwitchPolicy, ValKind};

/// One straight-line operation of a generated thread body.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Add `1 + (v % 7)` to cell `v % CELLS` of the shared array, under
    /// the lock `v % LOCKS` (a locked commutative update).
    LockedAdd(u8),
    /// Write to this thread's private slot.
    PrivateStore(u8),
    /// Read some shared cell.
    SharedLoad(u8),
    /// Atomic increment of the tally cell.
    AtomicBump,
    /// Local compute.
    Work(u8),
    /// Voluntary yield.
    Yield,
}

const CELLS: usize = 8;
const LOCKS: usize = 3;

fn gen_op(g: &mut Gen) -> Op {
    match g.usize_in(0, 6) {
        0 => Op::LockedAdd(g.u8()),
        1 => Op::PrivateStore(g.u8()),
        2 => Op::SharedLoad(g.u8()),
        3 => Op::AtomicBump,
        4 => Op::Work(g.u8()),
        _ => Op::Yield,
    }
}

fn gen_bodies(g: &mut Gen) -> Vec<Vec<Op>> {
    g.vec_of(2, 5, |g| g.vec_of(0, 25, gen_op))
}

/// Materializes the generated op lists as a tsim program.
fn build(bodies: &[Vec<Op>]) -> Program {
    let nthreads = bodies.len();
    let mut b = ProgramBuilder::new(nthreads);
    let shared = b.global("shared", ValKind::U64, CELLS);
    let private = b.global("private", ValKind::U64, nthreads);
    let tally = b.global("tally", ValKind::U64, 1);
    let locks: Vec<_> = (0..LOCKS).map(|_| b.mutex()).collect();
    for (tid, body) in bodies.iter().enumerate() {
        let body = body.clone();
        let locks = locks.clone();
        b.thread(move |ctx| {
            for op in &body {
                match *op {
                    Op::LockedAdd(v) => {
                        let cell_idx = v as usize % CELLS;
                        let cell = shared.at(cell_idx);
                        // The lock is a function of the cell, so every
                        // cell has exactly one guardian lock.
                        let lock = locks[cell_idx % LOCKS];
                        ctx.lock(lock);
                        let cur = ctx.load(cell);
                        ctx.store(cell, cur + 1 + u64::from(v % 7));
                        ctx.unlock(lock);
                    }
                    Op::PrivateStore(v) => ctx.store(private.at(tid), u64::from(v)),
                    Op::SharedLoad(v) => {
                        let _ = ctx.load(shared.at(v as usize % CELLS));
                    }
                    Op::AtomicBump => {
                        let _ = ctx.fetch_add(tally.at(0), 1);
                    }
                    Op::Work(v) => ctx.work(u64::from(v)),
                    Op::Yield => ctx.sched_yield(),
                }
            }
        });
    }
    b.build()
}

fn expected_totals(bodies: &[Vec<Op>]) -> ([u64; CELLS], u64) {
    let mut cells = [0u64; CELLS];
    let mut tally = 0;
    for body in bodies {
        for op in body {
            match *op {
                Op::LockedAdd(v) => cells[v as usize % CELLS] += 1 + u64::from(v % 7),
                Op::AtomicBump => tally += 1,
                _ => {}
            }
        }
    }
    (cells, tally)
}

/// Same seed ⇒ bit-identical run (decisions, final memory,
/// instruction counts, trace).
#[test]
fn runs_are_reproducible_given_the_seed() {
    check("runs_are_reproducible_given_the_seed", 48, |g| {
        let bodies = gen_bodies(g);
        let seed = g.u64_in(0, 500);
        let a = build(&bodies)
            .run(&RunConfig::random(seed).with_trace())
            .unwrap();
        let b = build(&bodies)
            .run(&RunConfig::random(seed).with_trace())
            .unwrap();
        assert_eq!(&a.decisions, &b.decisions);
        assert_eq!(&a.instr, &b.instr);
        assert_eq!(&a.trace, &b.trace);
        for i in 0..CELLS as u64 {
            assert_eq!(
                a.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)),
                b.final_word(tsim::Addr(tsim::GLOBALS_BASE + i))
            );
        }
    });
}

/// Replaying a run's decision log through the scripted scheduler
/// reproduces its trace exactly.
#[test]
fn decision_replay_reproduces_the_trace() {
    check("decision_replay_reproduces_the_trace", 48, |g| {
        let bodies = gen_bodies(g);
        let seed = g.u64_in(0, 500);
        let original = build(&bodies)
            .run(&RunConfig::random(seed).with_trace())
            .unwrap();
        let script = std::sync::Arc::new(original.decisions.clone());
        let replayed = build(&bodies)
            .run(
                &RunConfig::random(0)
                    .with_trace()
                    .with_scheduler(SchedulerKind::Scripted { script }),
            )
            .unwrap();
        assert_eq!(original.trace, replayed.trace);
        assert_eq!(original.decisions, replayed.decisions);
    });
}

/// Locked commutative updates and atomic bumps are conserved under
/// every scheduler and switch policy.
#[test]
fn locked_updates_are_conserved() {
    check("locked_updates_are_conserved", 48, |g| {
        let bodies = gen_bodies(g);
        let seed = g.u64_in(0, 500);
        let every_access = g.bool();
        let mut cfg = RunConfig::random(seed);
        if every_access {
            cfg = cfg.with_switch(SwitchPolicy::EveryAccess);
        }
        let out = build(&bodies).run(&cfg).unwrap();
        let (cells, tally) = expected_totals(&bodies);
        for (i, &want) in cells.iter().enumerate() {
            assert_eq!(
                out.final_word(tsim::Addr(tsim::GLOBALS_BASE + i as u64)),
                Some(want),
                "cell {i}"
            );
        }
        let tally_addr = tsim::Addr(tsim::GLOBALS_BASE + (CELLS + bodies.len()) as u64);
        assert_eq!(out.final_word(tally_addr), Some(tally));
    });
}

/// The total native instruction count varies across schedules only
/// through lock-contention retries, each of which also costs one
/// scheduling step — so runs with equal step counts have equal
/// instruction totals.
#[test]
fn instruction_totals_track_contention() {
    check("instruction_totals_track_contention", 48, |g| {
        let bodies = gen_bodies(g);
        let s1 = g.u64_in(0, 200);
        let s2 = g.u64_in(200, 400);
        let a = build(&bodies).run(&RunConfig::random(s1)).unwrap();
        let b = build(&bodies).run(&RunConfig::random(s2)).unwrap();
        if a.steps != b.steps {
            return;
        }
        assert_eq!(a.total_instructions(), b.total_instructions());
    });
}
