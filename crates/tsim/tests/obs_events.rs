//! Engine → observability-sink integration: the simulator emits
//! scheduler, checkpoint, alloc/free, and fault events keyed by
//! simulated step, and identical seeded runs emit identical traces.

use std::sync::Arc;

use obs::{events_to_jsonl, Event, EventSink, MemorySink};
use tsim::{FaultKind, FaultPlan, ProgramBuilder, RunConfig, Trigger, TypeTag, ValKind};

fn traced_run(seed: u64) -> Vec<Event> {
    let sink = Arc::new(MemorySink::new());
    let mut b = ProgramBuilder::new(2);
    let g = b.global("G", ValKind::U64, 1);
    let bar = b.barrier();
    for _ in 0..2 {
        b.thread(move |ctx| {
            let buf = ctx.malloc("buf", TypeTag::u64s(), 4);
            ctx.store(buf, ctx.tid() as u64 + 1);
            ctx.barrier(bar);
            let v = ctx.load(buf);
            ctx.fetch_add(g.at(0), v);
            ctx.free(buf);
        });
    }
    let cfg = RunConfig::random(seed).with_sink(sink.clone());
    b.build().run(&cfg).unwrap();
    sink.events()
}

#[test]
fn engine_emits_expected_event_kinds() {
    let events = traced_run(1);
    let names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
    assert!(names.contains(&"sched"));
    assert!(names.contains(&"alloc"));
    assert!(names.contains(&"free"));
    assert!(names.contains(&"checkpoint"));
    // One barrier checkpoint + the end-of-run checkpoint.
    let cps: Vec<&Event> = events.iter().filter(|e| e.name == "checkpoint").collect();
    assert_eq!(cps.len(), 2);
    assert_eq!(cps[0].arg_u64("seq"), Some(0));
    assert_eq!(cps[0].arg_str("kind"), Some("barrier"));
    assert_eq!(cps[1].arg_str("kind"), Some("end"));
    // Allocations report their size.
    let alloc = events.iter().find(|e| e.name == "alloc").unwrap();
    assert_eq!(alloc.arg_u64("words"), Some(4));
    // Steps never decrease (events are recorded in serialized order).
    assert!(events.windows(2).all(|w| w[0].step <= w[1].step));
}

#[test]
fn same_seed_emits_byte_identical_trace() {
    let a = traced_run(7);
    let b = traced_run(7);
    assert_eq!(events_to_jsonl(&a), events_to_jsonl(&b));
}

#[test]
fn fault_injection_shows_up_in_trace() {
    let sink = Arc::new(MemorySink::new());
    let mut b = ProgramBuilder::new(1);
    let g = b.global("G", ValKind::U64, 1);
    b.thread(move |ctx| {
        ctx.store(g.at(0), 1);
        ctx.store(g.at(0), 2);
    });
    let plan = FaultPlan::new(11).with(FaultKind::BitFlip, Trigger::Nth(1));
    let cfg = RunConfig::random(0)
        .with_faults(plan)
        .with_sink(sink.clone());
    b.build().run(&cfg).unwrap();
    let faults: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "fault")
        .collect();
    assert_eq!(faults.len(), 1);
    assert_eq!(faults[0].arg_str("kind"), Some("bit-flip"));
    assert_eq!(faults[0].arg_u64("tid"), Some(0));
}

#[test]
fn disabled_sink_is_dropped_at_run_start() {
    // A NoopSink reports enabled() == false; the run must not record
    // anything through it (and must not pay for event construction).
    #[derive(Debug)]
    struct PanicSink;
    impl EventSink for PanicSink {
        fn record(&self, _: Event) {
            panic!("disabled sink must never receive events");
        }
        fn enabled(&self) -> bool {
            false
        }
    }
    let mut b = ProgramBuilder::new(1);
    let g = b.global("G", ValKind::U64, 1);
    b.thread(move |ctx| ctx.store(g.at(0), 1));
    let cfg = RunConfig::random(0).with_sink(Arc::new(PanicSink));
    b.build().run(&cfg).unwrap();
}
