//! The simulated flat memory: a globals segment and a heap segment.

use crate::types::Addr;

/// First word address of the globals (static data) segment.
pub const GLOBALS_BASE: u64 = 0x1000;

/// First word address of the heap segment.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// The simulated word-addressed memory.
///
/// Two segments are mapped: static data (globals) starting at
/// [`GLOBALS_BASE`] and the heap starting at [`HEAP_BASE`]. Reads and
/// writes outside the mapped prefixes of either segment fail, which the
/// engine converts into [`SimError::BadAddress`](crate::SimError).
#[derive(Debug, Clone, Default)]
pub struct Memory {
    globals: Vec<u64>,
    heap: Vec<u64>,
}

impl Memory {
    /// Creates a memory with `global_words` mapped in the globals segment
    /// and an empty heap.
    pub fn new(global_words: usize) -> Self {
        Memory {
            globals: vec![0; global_words],
            heap: Vec::new(),
        }
    }

    /// Ensures the heap segment covers at least `words` words.
    pub(crate) fn grow_heap(&mut self, words: usize) {
        if self.heap.len() < words {
            self.heap.resize(words, 0);
        }
    }

    /// Number of mapped heap words.
    pub fn heap_words(&self) -> usize {
        self.heap.len()
    }

    /// Number of mapped global words.
    pub fn global_words(&self) -> usize {
        self.globals.len()
    }

    /// Resolves `addr` to its backing word in one segment branch.
    #[inline]
    fn slot(&self, addr: Addr) -> Option<&u64> {
        let a = addr.0;
        if a >= HEAP_BASE {
            self.heap.get((a - HEAP_BASE) as usize)
        } else if a >= GLOBALS_BASE {
            self.globals.get((a - GLOBALS_BASE) as usize)
        } else {
            None
        }
    }

    /// Mutable variant of [`slot`](Memory::slot): one segment branch,
    /// one bounds check, and the caller gets the word itself.
    #[inline]
    fn slot_mut(&mut self, addr: Addr) -> Option<&mut u64> {
        let a = addr.0;
        if a >= HEAP_BASE {
            self.heap.get_mut((a - HEAP_BASE) as usize)
        } else if a >= GLOBALS_BASE {
            self.globals.get_mut((a - GLOBALS_BASE) as usize)
        } else {
            None
        }
    }

    /// Reads the word at `addr`, or `None` if unmapped.
    #[inline]
    pub fn read(&self, addr: Addr) -> Option<u64> {
        self.slot(addr).copied()
    }

    /// Writes `value` at `addr`, returning the previous value, or `None`
    /// if unmapped (in which case nothing is written).
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) -> Option<u64> {
        Some(std::mem::replace(self.slot_mut(addr)?, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_globals() {
        let mut m = Memory::new(4);
        let a = Addr(GLOBALS_BASE + 2);
        assert_eq!(m.read(a), Some(0));
        assert_eq!(m.write(a, 7), Some(0));
        assert_eq!(m.read(a), Some(7));
        assert_eq!(m.write(a, 9), Some(7));
        assert_eq!(m.global_words(), 4);
    }

    #[test]
    fn unmapped_addresses_fail() {
        let mut m = Memory::new(4);
        assert_eq!(m.read(Addr(0)), None); // below globals
        assert_eq!(m.read(Addr(GLOBALS_BASE + 4)), None); // past globals
        assert_eq!(m.read(Addr(HEAP_BASE)), None); // heap not grown
        assert_eq!(m.write(Addr(0), 1), None);
    }

    #[test]
    fn heap_growth() {
        let mut m = Memory::new(0);
        m.grow_heap(8);
        assert_eq!(m.heap_words(), 8);
        let a = Addr(HEAP_BASE + 7);
        assert_eq!(m.write(a, 42), Some(0));
        assert_eq!(m.read(a), Some(42));
        // Growing never shrinks.
        m.grow_heap(2);
        assert_eq!(m.heap_words(), 8);
        assert_eq!(m.read(a), Some(42));
    }

    #[test]
    fn segments_do_not_alias() {
        let mut m = Memory::new(1);
        m.grow_heap(1);
        m.write(Addr(GLOBALS_BASE), 1);
        m.write(Addr(HEAP_BASE), 2);
        assert_eq!(m.read(Addr(GLOBALS_BASE)), Some(1));
        assert_eq!(m.read(Addr(HEAP_BASE)), Some(2));
    }
}
