//! Deterministic fault injection.
//!
//! A [`FaultPlan`] attached to a [`RunConfig`](crate::RunConfig) makes
//! the simulator misbehave in controlled, *fully deterministic* ways.
//! Every fault decision is a pure function of the plan seed and a
//! per-kind event counter — never of wall-clock time or OS scheduling —
//! so a given (fault seed, scheduler seed) pair reproduces the same
//! faults at the same events, bit for bit, forever. That determinism is
//! what makes the harness usable for testing the checker's *own*
//! failure handling: an injected deadlock or corruption is an ordinary
//! regression-test input.
//!
//! The supported fault kinds target the failure modes a checking
//! campaign has to survive:
//!
//! - [`FaultKind::StaleRead`] — the monitor is handed a stale old value
//!   on a store, reproducing the §4.1 SW-Inc hazard (the software
//!   scheme reads the old value non-atomically with the store; a racing
//!   update makes the subtraction remove the wrong term and corrupts
//!   the hash from then on).
//! - [`FaultKind::BitFlip`] — the stored value itself has one bit
//!   flipped (a data-corruption model; memory and monitor both see the
//!   flipped value).
//! - [`FaultKind::AllocFail`] — `malloc` fails, aborting the run with
//!   [`SimError::AllocFailed`](crate::SimError) (resource exhaustion).
//! - [`FaultKind::LibPerturb`] — a nondeterministic library call
//!   (`rand`, `gettimeofday`) returns a perturbed value (environment
//!   nondeterminism beyond the seeded stream).
//! - [`FaultKind::WakeDrop`] — a wake operation (unlock, semaphore
//!   post, condvar signal/broadcast) fails to wake the threads it
//!   should, the classic lost-wakeup OS bug; with no other wake source
//!   the victims deadlock, deterministically.

use detrand::splitmix64;

use crate::types::ThreadId;

/// The kinds of injectable fault. See the module docs above for what
/// each one does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Monitor sees a stale old value on a store (§4.1 SW-Inc hazard).
    StaleRead,
    /// One bit of a stored value flips in memory.
    BitFlip,
    /// An allocation fails, aborting the run.
    AllocFail,
    /// A library call returns a perturbed value.
    LibPerturb,
    /// A wake operation loses its wakeups.
    WakeDrop,
}

impl FaultKind {
    /// Stable kebab-case label used in trace events and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::StaleRead => "stale-read",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::AllocFail => "alloc-fail",
            FaultKind::LibPerturb => "lib-perturb",
            FaultKind::WakeDrop => "wake-drop",
        }
    }
}

/// All fault kinds, for iteration.
pub const FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::StaleRead,
    FaultKind::BitFlip,
    FaultKind::AllocFail,
    FaultKind::LibPerturb,
    FaultKind::WakeDrop,
];

/// Per-kind salts keep the five decision streams independent: enabling
/// one kind never shifts another kind's decisions.
const KIND_SALT: [u64; 5] = [
    0x57a1_e4ea_d000_0001, // StaleRead
    0xb17f_11b0_0000_0002, // BitFlip
    0xa110_cfa1_1000_0003, // AllocFail
    0x11bb_e47b_0000_0004, // LibPerturb
    0xaa4e_d409_0000_0005, // WakeDrop
];

/// When a fault of some kind fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Never fires (the default for every kind).
    Never,
    /// Fires on exactly the `n`th eligible event (0-based) of the run —
    /// targeted injection for regression tests.
    Nth(u64),
    /// Fires pseudo-randomly on roughly `num` in `denom` eligible
    /// events, decided by the plan seed and the event index.
    Rate {
        /// Numerator of the firing probability.
        num: u64,
        /// Denominator of the firing probability (must be nonzero).
        denom: u64,
    },
}

/// A seeded, deterministic fault-injection plan.
///
/// ```
/// use tsim::{FaultKind, FaultPlan, Trigger};
///
/// // Flip one bit in roughly 1 of every 1000 stores, and fail the
/// // third allocation of the run outright.
/// let plan = FaultPlan::new(42)
///     .with(FaultKind::BitFlip, Trigger::Rate { num: 1, denom: 1000 })
///     .with(FaultKind::AllocFail, Trigger::Nth(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The plan seed; equal seeds (with equal triggers) give equal
    /// fault sequences.
    pub seed: u64,
    triggers: [Trigger; 5],
}

impl FaultPlan {
    /// An empty plan (no kind fires) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            triggers: [Trigger::Never; 5],
        }
    }

    /// Sets the trigger for one fault kind.
    ///
    /// # Panics
    ///
    /// Panics if a [`Trigger::Rate`] has a zero denominator.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, trigger: Trigger) -> Self {
        if let Trigger::Rate { denom, .. } = trigger {
            assert!(denom > 0, "fault rate denominator must be nonzero");
        }
        self.triggers[kind as usize] = trigger;
        self
    }

    /// The trigger configured for `kind`.
    #[must_use]
    pub fn trigger(&self, kind: FaultKind) -> Trigger {
        self.triggers[kind as usize]
    }

    /// Whether any kind can fire at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.triggers.iter().any(|t| *t != Trigger::Never)
    }
}

/// One injected fault, as recorded in
/// [`RunOutcome::faults`](crate::RunOutcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// What was injected.
    pub kind: FaultKind,
    /// Which eligible event of that kind it hit (0-based).
    pub event_index: u64,
    /// The thread executing the faulted operation.
    pub tid: ThreadId,
    /// The deterministic entropy that parameterized the fault (e.g.
    /// which bit flipped); part of the reproducibility contract.
    pub entropy: u64,
}

/// Mutable per-run injection state: the plan plus per-kind event
/// counters and the log of fired faults.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    counters: [u64; 5],
    log: Vec<FaultRecord>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            counters: [0; 5],
            log: Vec::new(),
        }
    }

    /// Registers one eligible event of `kind` by `tid`; returns the
    /// fault's entropy word if the plan says it fires.
    pub(crate) fn fire(&mut self, kind: FaultKind, tid: ThreadId) -> Option<u64> {
        let i = kind as usize;
        let n = self.counters[i];
        self.counters[i] += 1;
        let fires = match self.plan.triggers[i] {
            Trigger::Never => false,
            Trigger::Nth(k) => n == k,
            Trigger::Rate { num, denom } => {
                splitmix64(self.plan.seed ^ KIND_SALT[i] ^ n) % denom < num
            }
        };
        if !fires {
            return None;
        }
        let entropy = splitmix64(self.plan.seed ^ KIND_SALT[i].rotate_left(17) ^ n);
        self.log.push(FaultRecord {
            kind,
            event_index: n,
            tid,
            entropy,
        });
        Some(entropy)
    }

    pub(crate) fn into_log(self) -> Vec<FaultRecord> {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut s = FaultState::new(FaultPlan::new(7));
        for kind in FAULT_KINDS {
            for _ in 0..100 {
                assert_eq!(s.fire(kind, 0), None);
            }
        }
        assert!(s.into_log().is_empty());
        assert!(!FaultPlan::new(7).is_active());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::new(1).with(FaultKind::AllocFail, Trigger::Nth(3));
        assert!(plan.is_active());
        let mut s = FaultState::new(plan);
        let fired: Vec<bool> = (0..10)
            .map(|_| s.fire(FaultKind::AllocFail, 2).is_some())
            .collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 1);
        assert!(fired[3]);
        let log = s.into_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].event_index, 3);
        assert_eq!(log[0].tid, 2);
    }

    #[test]
    fn rate_decisions_are_seed_deterministic_and_independent() {
        let plan = FaultPlan::new(99)
            .with(FaultKind::BitFlip, Trigger::Rate { num: 1, denom: 8 })
            .with(FaultKind::StaleRead, Trigger::Rate { num: 1, denom: 8 });
        let run = |plan: FaultPlan| {
            let mut s = FaultState::new(plan);
            for i in 0..1000u64 {
                s.fire(FaultKind::BitFlip, (i % 3) as ThreadId);
                s.fire(FaultKind::StaleRead, (i % 3) as ThreadId);
            }
            s.into_log()
        };
        let a = run(plan.clone());
        let b = run(plan.clone());
        assert_eq!(a, b, "same plan, same log");
        assert!(!a.is_empty(), "a 1/8 rate over 1000 events fires");

        // Disabling StaleRead must not move BitFlip's decisions.
        let only_flip =
            run(FaultPlan::new(99).with(FaultKind::BitFlip, Trigger::Rate { num: 1, denom: 8 }));
        let flips_before: Vec<_> = a
            .iter()
            .filter(|r| r.kind == FaultKind::BitFlip)
            .copied()
            .collect();
        assert_eq!(flips_before, only_flip);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mk = |seed| {
            let plan =
                FaultPlan::new(seed).with(FaultKind::BitFlip, Trigger::Rate { num: 1, denom: 4 });
            let mut s = FaultState::new(plan);
            (0..200u64)
                .map(|_| s.fire(FaultKind::BitFlip, 0).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected() {
        let _ = FaultPlan::new(0).with(FaultKind::BitFlip, Trigger::Rate { num: 1, denom: 0 });
    }
}
