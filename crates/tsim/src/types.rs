//! Core value types: addresses, regions, ids, and type tags.

use std::fmt;
use std::sync::Arc;

/// A word-granular simulated memory address.
///
/// The simulator models memory as an array of 64-bit words; one `Addr`
/// names one word (the paper's byte-addressed model maps onto this with an
/// 8-byte word size, which is what the instruction-cost model assumes).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address `words` words past this one.
    #[must_use]
    pub const fn offset(self, words: u64) -> Addr {
        Addr(self.0 + words)
    }

    /// Returns the raw word index.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a simulated thread (dense, starting at 0).
pub type ThreadId = usize;

/// Handle to a simulated mutex, created by
/// [`ProgramBuilder::mutex`](crate::ProgramBuilder::mutex).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct LockId(pub(crate) usize);

/// Handle to a simulated pthread-style barrier, created by
/// [`ProgramBuilder::barrier`](crate::ProgramBuilder::barrier).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BarrierId(pub(crate) usize);

impl BarrierId {
    /// Returns the dense index of this barrier object.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a barrier id from its dense [`index`](BarrierId::index) —
    /// for deserializing persisted checkpoint records; the index is only
    /// meaningful for the program it was recorded from.
    pub fn from_index(index: usize) -> Self {
        BarrierId(index)
    }
}

impl LockId {
    /// Returns the dense index of this lock object.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a simulated condition variable, created by
/// [`ProgramBuilder::condvar`](crate::ProgramBuilder::condvar).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CondId(pub(crate) usize);

impl CondId {
    /// Returns the dense index of this condition variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a simulated reader-writer lock, created by
/// [`ProgramBuilder::rwlock`](crate::ProgramBuilder::rwlock).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RwLockId(pub(crate) usize);

impl RwLockId {
    /// Returns the dense index of this reader-writer lock.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a simulated counting semaphore, created by
/// [`ProgramBuilder::semaphore`](crate::ProgramBuilder::semaphore).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SemId(pub(crate) usize);

impl SemId {
    /// Returns the dense index of this semaphore.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The declared interpretation of a memory word, used for floating-point
/// round-off (the paper's LLVM pass marks FP stores; its traversal scheme
/// learns types from annotated allocation sites).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ValKind {
    /// An integer/pointer word; hashed bit-exactly.
    U64,
    /// An `f64` stored as its bit pattern; subject to FP round-off.
    F64,
}

/// A contiguous range of simulated memory with a uniform [`ValKind`]
/// (a named global array, or a view of a heap block).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Region {
    /// First word of the region.
    pub base: Addr,
    /// Length in words.
    pub len: usize,
    /// Interpretation of every word in the region.
    pub kind: ValKind,
}

impl Region {
    /// Address of the `i`-th word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len`.
    pub fn at(&self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "region index {i} out of bounds (len {})",
            self.len
        );
        self.base.offset(i as u64)
    }

    /// Iterates over all word addresses in the region.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        (0..self.len as u64).map(move |i| self.base.offset(i))
    }

    /// Returns `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.len as u64
    }
}

/// The per-word type layout of a heap block (the paper's allocation-site
/// annotation for `SW-InstantCheck_Tr`).
///
/// The pattern repeats over the block: a block of "structs" with layout
/// `[U64, F64, F64]` uses a 3-word pattern regardless of how many structs
/// the block holds.
///
/// # Example
///
/// ```
/// use tsim::{TypeTag, ValKind};
///
/// let tag = TypeTag::of(vec![ValKind::U64, ValKind::F64]);
/// assert_eq!(tag.kind_at(0), ValKind::U64);
/// assert_eq!(tag.kind_at(1), ValKind::F64);
/// assert_eq!(tag.kind_at(2), ValKind::U64); // pattern repeats
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TypeTag {
    pattern: Arc<[ValKind]>,
}

impl TypeTag {
    /// A tag for blocks of plain integer/pointer words.
    pub fn u64s() -> Self {
        TypeTag {
            pattern: Arc::from([ValKind::U64].as_slice()),
        }
    }

    /// A tag for blocks of `f64` words.
    pub fn f64s() -> Self {
        TypeTag {
            pattern: Arc::from([ValKind::F64].as_slice()),
        }
    }

    /// A tag with an explicit repeating word pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    pub fn of(pattern: Vec<ValKind>) -> Self {
        assert!(!pattern.is_empty(), "type tag pattern must be non-empty");
        TypeTag {
            pattern: Arc::from(pattern),
        }
    }

    /// The declared kind of the word at `offset` within a block.
    pub fn kind_at(&self, offset: usize) -> ValKind {
        self.pattern[offset % self.pattern.len()]
    }

    /// Length of the repeating pattern in words.
    pub fn stride(&self) -> usize {
        self.pattern.len()
    }
}

impl Default for TypeTag {
    fn default() -> Self {
        TypeTag::u64s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset_and_display() {
        let a = Addr(0x1000);
        assert_eq!(a.offset(3), Addr(0x1003));
        assert_eq!(a.raw(), 0x1000);
        assert_eq!(format!("{a}"), "0x1000");
        assert!(format!("{a:?}").contains("0x1000"));
    }

    #[test]
    fn region_indexing() {
        let r = Region {
            base: Addr(0x10),
            len: 4,
            kind: ValKind::U64,
        };
        assert_eq!(r.at(0), Addr(0x10));
        assert_eq!(r.at(3), Addr(0x13));
        assert!(r.contains(Addr(0x12)));
        assert!(!r.contains(Addr(0x14)));
        assert_eq!(r.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn region_at_panics_oob() {
        let r = Region {
            base: Addr(0x10),
            len: 4,
            kind: ValKind::U64,
        };
        let _ = r.at(4);
    }

    #[test]
    fn type_tag_patterns() {
        assert_eq!(TypeTag::u64s().kind_at(17), ValKind::U64);
        assert_eq!(TypeTag::f64s().kind_at(17), ValKind::F64);
        let mixed = TypeTag::of(vec![ValKind::U64, ValKind::F64, ValKind::F64]);
        assert_eq!(mixed.stride(), 3);
        assert_eq!(mixed.kind_at(3), ValKind::U64);
        assert_eq!(mixed.kind_at(5), ValKind::F64);
        assert_eq!(TypeTag::default(), TypeTag::u64s());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_tag_rejected() {
        let _ = TypeTag::of(vec![]);
    }
}
