//! Program construction and run configuration.

use std::sync::Arc;

use std::time::Duration;

use crate::alloc::AllocLog;
use crate::engine::{self, RunOutcome, SetupCtx, ThreadCtx};
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::libcalls::LibLog;
use crate::mem::GLOBALS_BASE;
use crate::monitor::{Monitor, NullMonitor};
use crate::sched::{SchedulerKind, SwitchPolicy};
use crate::types::{Addr, BarrierId, CondId, LockId, Region, RwLockId, SemId, ValKind};

/// A declared global (static-data) region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalDecl {
    /// The region's name (used by ignore-specs and reports).
    pub name: &'static str,
    /// Where the region lives.
    pub region: Region,
}

pub(crate) type ThreadBody = Box<dyn FnOnce(&mut ThreadCtx) + Send + 'static>;
pub(crate) type SetupBody = Box<dyn FnOnce(&mut SetupCtx<'_>) + Send + 'static>;

/// Builder for a simulated parallel [`Program`].
///
/// Workloads declare their globals, synchronization objects, an optional
/// single-threaded setup phase (the fixed *input state*), and one body
/// closure per thread.
///
/// # Example
///
/// ```
/// use tsim::{ProgramBuilder, RunConfig, ValKind};
///
/// let mut b = ProgramBuilder::new(2);
/// let g = b.global("G", ValKind::U64, 1);
/// let lock = b.mutex();
/// b.setup(move |s| s.store(g.at(0), 2)); // initial G == 2
/// for tid in 0..2 {
///     let l = [7u64, 3u64][tid];
///     b.thread(move |ctx| {
///         ctx.lock(lock);
///         let v = ctx.load(g.at(0));
///         ctx.store(g.at(0), v + l);
///         ctx.unlock(lock);
///     });
/// }
/// let out = b.build().run(&RunConfig::random(1)).unwrap();
/// assert_eq!(out.final_word(g.at(0)), Some(12)); // Figure 1: G == 12
/// ```
pub struct ProgramBuilder {
    nthreads: usize,
    globals: Vec<GlobalDecl>,
    next_global: u64,
    locks: usize,
    conds: usize,
    rwlocks: usize,
    sems: Vec<u64>,
    barriers: Vec<usize>,
    setup: Option<SetupBody>,
    threads: Vec<ThreadBody>,
}

impl std::fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("nthreads", &self.nthreads)
            .field("globals", &self.globals.len())
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl ProgramBuilder {
    /// Starts building a program with `nthreads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` is zero.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "a program needs at least one thread");
        ProgramBuilder {
            nthreads,
            globals: Vec::new(),
            next_global: 0,
            locks: 0,
            conds: 0,
            rwlocks: 0,
            sems: Vec::new(),
            barriers: Vec::new(),
            setup: None,
            threads: Vec::new(),
        }
    }

    /// Number of threads the program will run.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Declares a named global array of `len` words of `kind`, returning
    /// its region. Layout is deterministic: regions are assigned
    /// consecutive addresses in declaration order.
    pub fn global(&mut self, name: &'static str, kind: ValKind, len: usize) -> Region {
        let region = Region {
            base: Addr(GLOBALS_BASE + self.next_global),
            len,
            kind,
        };
        self.next_global += len as u64;
        self.globals.push(GlobalDecl { name, region });
        region
    }

    /// Creates a mutex.
    pub fn mutex(&mut self) -> LockId {
        self.locks += 1;
        LockId(self.locks - 1)
    }

    /// Creates a condition variable.
    pub fn condvar(&mut self) -> CondId {
        self.conds += 1;
        CondId(self.conds - 1)
    }

    /// Creates a reader-writer lock.
    pub fn rwlock(&mut self) -> RwLockId {
        self.rwlocks += 1;
        RwLockId(self.rwlocks - 1)
    }

    /// Creates a counting semaphore with an initial count.
    pub fn semaphore(&mut self, initial: u64) -> SemId {
        self.sems.push(initial);
        SemId(self.sems.len() - 1)
    }

    /// Creates a barrier over all threads of the program.
    pub fn barrier(&mut self) -> BarrierId {
        self.barrier_with(self.nthreads)
    }

    /// Creates a barrier over `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero or exceeds the thread count.
    pub fn barrier_with(&mut self, parties: usize) -> BarrierId {
        assert!(
            parties >= 1 && parties <= self.nthreads,
            "barrier parties {parties} out of range 1..={}",
            self.nthreads
        );
        self.barriers.push(parties);
        BarrierId(self.barriers.len() - 1)
    }

    /// Sets the single-threaded setup phase that establishes the fixed
    /// input state before the threads start.
    pub fn setup(&mut self, f: impl FnOnce(&mut SetupCtx<'_>) + Send + 'static) -> &mut Self {
        self.setup = Some(Box::new(f));
        self
    }

    /// Adds the body of the next thread (thread ids are assigned in call
    /// order, starting at 0).
    ///
    /// # Panics
    ///
    /// Panics if more bodies are added than the declared thread count.
    pub fn thread(&mut self, f: impl FnOnce(&mut ThreadCtx) + Send + 'static) -> &mut Self {
        assert!(
            self.threads.len() < self.nthreads,
            "more thread bodies than the declared {} threads",
            self.nthreads
        );
        self.threads.push(Box::new(f));
        self
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if fewer thread bodies were added than declared.
    pub fn build(self) -> Program {
        assert_eq!(
            self.threads.len(),
            self.nthreads,
            "expected {} thread bodies, got {}",
            self.nthreads,
            self.threads.len()
        );
        Program {
            nthreads: self.nthreads,
            globals: self.globals,
            global_words: self.next_global as usize,
            locks: self.locks,
            conds: self.conds,
            rwlocks: self.rwlocks,
            sems: self.sems,
            barriers: self.barriers,
            setup: self.setup,
            threads: self.threads,
        }
    }
}

/// A runnable simulated parallel program. Built by [`ProgramBuilder`];
/// consumed by one run.
pub struct Program {
    pub(crate) nthreads: usize,
    pub(crate) globals: Vec<GlobalDecl>,
    pub(crate) global_words: usize,
    pub(crate) locks: usize,
    pub(crate) conds: usize,
    pub(crate) rwlocks: usize,
    pub(crate) sems: Vec<u64>,
    pub(crate) barriers: Vec<usize>,
    pub(crate) setup: Option<SetupBody>,
    pub(crate) threads: Vec<ThreadBody>,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("nthreads", &self.nthreads)
            .field("global_words", &self.global_words)
            .field("locks", &self.locks)
            .field("condvars", &self.conds)
            .field("barriers", &self.barriers.len())
            .finish()
    }
}

impl Program {
    /// Runs the program unmonitored (the *Native* configuration).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the run deadlocks, exceeds the step
    /// limit, misuses the machine, or a thread panics.
    pub fn run(self, config: &RunConfig) -> Result<RunOutcome<NullMonitor>, SimError> {
        self.run_with(config, NullMonitor)
    }

    /// Runs the program with `monitor` observing every event; the monitor
    /// is returned inside the [`RunOutcome`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the run deadlocks, exceeds the step
    /// limit, misuses the machine, or a thread panics.
    pub fn run_with<M: Monitor + 'static>(
        self,
        config: &RunConfig,
        monitor: M,
    ) -> Result<RunOutcome<M>, SimError> {
        engine::run(self, config, monitor)
    }
}

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Which scheduler drives the interleaving.
    pub scheduler: SchedulerKind,
    /// Where scheduling points are inserted besides synchronization ops.
    pub switch: SwitchPolicy,
    /// Abort the run after this many scheduling steps (livelock guard).
    pub max_steps: u64,
    /// Charge the zero-fill of allocations to the run's instruction
    /// counts (the paper's HW-InstantCheck overhead source). The fill
    /// itself always happens; only the *accounting* is conditional.
    pub charge_zero_fill: bool,
    /// Replay allocator addresses from a previous run's log.
    pub alloc_replay: Option<Arc<AllocLog>>,
    /// Seed for nondeterministic library calls (`rand`, `gettimeofday`).
    pub lib_seed: u64,
    /// Replay library-call results from a previous run's log.
    pub lib_replay: Option<Arc<LibLog>>,
    /// Record a full [`Trace`](crate::Trace) of the run.
    pub record_trace: bool,
    /// Record the runnable set offered to the scheduler at every
    /// decision (needed by systematic exploration; costly on long runs).
    pub record_options: bool,
    /// Deterministic fault-injection plan (see [`FaultPlan`]); `None`
    /// runs fault-free.
    pub faults: Option<FaultPlan>,
    /// Wall-clock watchdog: abort the run with
    /// [`SimError::Deadline`] if it is still going after this long.
    /// Unlike [`max_steps`](RunConfig::max_steps) this also catches
    /// runs that stop taking scheduling steps entirely.
    pub deadline: Option<Duration>,
    /// Observability sink for structured events (scheduler decisions,
    /// checkpoints, faults, allocations), keyed by simulated step.
    /// `None` (the default) emits nothing; a disabled sink (e.g.
    /// [`obs::NoopSink`]) is dropped at run start so the hot path only
    /// pays an `Option` check.
    pub sink: Option<Arc<dyn obs::EventSink>>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::random(0)
    }
}

impl RunConfig {
    /// A run driven by the seeded random scheduler — the paper's testing
    /// setup.
    pub fn random(seed: u64) -> Self {
        RunConfig {
            scheduler: SchedulerKind::Random { seed },
            switch: SwitchPolicy::SyncOnly,
            max_steps: 20_000_000,
            charge_zero_fill: false,
            alloc_replay: None,
            lib_seed: 0,
            lib_replay: None,
            record_trace: false,
            record_options: false,
            faults: None,
            deadline: None,
            sink: None,
        }
    }

    /// Sets the preemption policy.
    #[must_use]
    pub fn with_switch(mut self, switch: SwitchPolicy) -> Self {
        self.switch = switch;
        self
    }

    /// Sets the scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enables recording of the runnable set at every scheduling
    /// decision (for systematic exploration).
    #[must_use]
    pub fn with_options_recorded(mut self) -> Self {
        self.record_options = true;
        self
    }

    /// Replays allocator addresses from `log`.
    #[must_use]
    pub fn with_alloc_replay(mut self, log: Arc<AllocLog>) -> Self {
        self.alloc_replay = Some(log);
        self
    }

    /// Replays library-call results from `log`.
    #[must_use]
    pub fn with_lib_replay(mut self, log: Arc<LibLog>) -> Self {
        self.lib_replay = Some(log);
        self
    }

    /// Sets the library-call seed (run-to-run input variation).
    #[must_use]
    pub fn with_lib_seed(mut self, seed: u64) -> Self {
        self.lib_seed = seed;
        self
    }

    /// Charges allocation zero-fill to the instruction counts.
    #[must_use]
    pub fn with_zero_fill_charged(mut self) -> Self {
        self.charge_zero_fill = true;
        self
    }

    /// Sets the step limit.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Injects faults according to `plan`.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the wall-clock watchdog deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Streams structured run events into `sink`.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn obs::EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_disjoint_globals() {
        let mut b = ProgramBuilder::new(1);
        let x = b.global("x", ValKind::U64, 4);
        let y = b.global("y", ValKind::F64, 2);
        assert_eq!(x.base, Addr(GLOBALS_BASE));
        assert_eq!(y.base, Addr(GLOBALS_BASE + 4));
        assert_eq!(y.kind, ValKind::F64);
        b.thread(|_| {});
        let p = b.build();
        assert_eq!(p.global_words, 6);
        assert_eq!(p.globals.len(), 2);
    }

    #[test]
    fn builder_ids_are_dense() {
        let mut b = ProgramBuilder::new(3);
        assert_eq!(b.mutex(), LockId(0));
        assert_eq!(b.mutex(), LockId(1));
        assert_eq!(b.condvar(), CondId(0));
        assert_eq!(b.barrier(), BarrierId(0));
        assert_eq!(b.barrier_with(2), BarrierId(1));
        assert_eq!(b.nthreads(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ProgramBuilder::new(0);
    }

    #[test]
    #[should_panic(expected = "expected 2 thread bodies")]
    fn missing_bodies_rejected() {
        let mut b = ProgramBuilder::new(2);
        b.thread(|_| {});
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "more thread bodies")]
    fn extra_bodies_rejected() {
        let mut b = ProgramBuilder::new(1);
        b.thread(|_| {});
        b.thread(|_| {});
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_barrier_rejected() {
        let mut b = ProgramBuilder::new(2);
        let _ = b.barrier_with(3);
    }

    #[test]
    fn config_builders_chain() {
        let cfg = RunConfig::random(9)
            .with_switch(SwitchPolicy::EveryAccess)
            .with_trace()
            .with_lib_seed(5)
            .with_zero_fill_charged()
            .with_max_steps(100)
            .with_faults(FaultPlan::new(3))
            .with_deadline(Duration::from_millis(50));
        assert_eq!(cfg.switch, SwitchPolicy::EveryAccess);
        assert!(cfg.record_trace);
        assert_eq!(cfg.lib_seed, 5);
        assert!(cfg.charge_zero_fill);
        assert_eq!(cfg.max_steps, 100);
        assert_eq!(cfg.faults, Some(FaultPlan::new(3)));
        assert_eq!(cfg.deadline, Some(Duration::from_millis(50)));
        let d = RunConfig::default();
        assert_eq!(d.lib_seed, 0);
        assert_eq!(d.faults, None);
        assert_eq!(d.deadline, None);
    }
}
