//! `tsim` — a deterministic simulator for multithreaded shared-memory
//! programs.
//!
//! This crate is the substrate that plays the role Pin played in the
//! InstantCheck paper: it executes parallel *workloads* written against an
//! instrumented API ([`ThreadCtx`]) and exposes every store, load,
//! synchronization operation, allocation, and output byte to a pluggable
//! [`Monitor`]. The determinism checker (the `instantcheck` crate) and the
//! hardware model (the `mhm` crate) are built on top of these hooks.
//!
//! # Execution model
//!
//! * Execution is **serialized**: exactly one simulated thread runs at a
//!   time, and the [`Scheduler`] picks which runnable thread goes next at
//!   each *scheduling point*. This mirrors the paper's evaluation setup
//!   ("a thread scheduler runs one thread at a time and switches between
//!   threads at synchronizations; the thread to run is chosen randomly"),
//!   which is also how PCT and CHESS drive programs.
//! * Scheduling points always include synchronization operations
//!   (locks, barriers, condition variables, atomic RMWs); the
//!   [`SwitchPolicy`] optionally adds every (or every k-th) data access,
//!   which is needed to expose plain data races.
//! * Given a program, a scheduler policy, a seed, and the replay logs, a
//!   run is **bit-reproducible**.
//!
//! # Quick example
//!
//! Two threads increment a shared counter under a lock; the simulator
//! runs them in a random serialized order and a trivial monitor observes
//! every store:
//!
//! ```
//! use tsim::{ProgramBuilder, RunConfig, ValKind};
//!
//! let mut b = ProgramBuilder::new(2);
//! let g = b.global("counter", ValKind::U64, 1);
//! let lock = b.mutex();
//! for _ in 0..2 {
//!     b.thread(move |ctx| {
//!         ctx.lock(lock);
//!         let v = ctx.load(g.at(0));
//!         ctx.store(g.at(0), v + 1);
//!         ctx.unlock(lock);
//!     });
//! }
//! let outcome = b.build().run(&RunConfig::random(42)).unwrap();
//! assert_eq!(outcome.final_word(g.at(0)), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod engine;
mod error;
mod faults;
mod libcalls;
mod mem;
mod monitor;
mod program;
mod sched;
mod trace;
mod types;

pub use alloc::{AllocLog, BlockInfo};
pub use engine::{RunOutcome, SetupCtx, ThreadCtx};
pub use error::{SimError, SimErrorKind};
pub use faults::{FaultKind, FaultPlan, FaultRecord, Trigger, FAULT_KINDS};
pub use libcalls::LibLog;
pub use mem::{Memory, GLOBALS_BASE, HEAP_BASE};
pub use monitor::{
    CheckpointInfo, CheckpointKind, EngineHashes, FastPathSpec, Monitor, NullMonitor, StateView,
};
pub use program::{GlobalDecl, Program, ProgramBuilder, RunConfig};
pub use sched::{
    PctScheduler, RandomScheduler, RoundRobinScheduler, Scheduler, SchedulerKind,
    ScriptedScheduler, ScriptedThenRandomScheduler, SwitchPolicy,
};
pub use trace::{Trace, TraceEvent, TraceOp};
pub use types::{
    Addr, BarrierId, CondId, LockId, Region, RwLockId, SemId, ThreadId, TypeTag, ValKind,
};
