//! The simulated heap allocator and its record/replay machinery.
//!
//! In "natural" mode the allocator behaves like a real `malloc`: a bump
//! pointer plus size-classed LIFO free lists, so the address returned for
//! an allocation depends on the global order in which *all* threads
//! allocate and free — i.e. on the schedule. This is precisely the
//! nondeterminism source the paper controls by logging the addresses
//! returned in one run and replaying them in subsequent runs (Section 5).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::mem::HEAP_BASE;
use crate::types::{Addr, ThreadId, TypeTag, ValKind};

/// Metadata of one live heap allocation (an entry in the paper's "table of
/// allocated blocks with their type information").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// First word of the block.
    pub base: Addr,
    /// Length in words.
    pub len: usize,
    /// The allocation site label (the paper maps addresses back to the
    /// source line of the allocation; sites are how ignore-specs select
    /// "small nondeterministic structures").
    pub site: &'static str,
    /// Per-word type layout, for FP round-off during traversal.
    pub tag: TypeTag,
    /// The thread that performed the allocation.
    pub tid: ThreadId,
    /// Per-thread allocation sequence number (the replay key is
    /// `(tid, seq)`).
    pub seq: u64,
}

impl BlockInfo {
    /// The declared kind of the `i`-th word of the block.
    pub fn kind_at(&self, i: usize) -> ValKind {
        self.tag.kind_at(i)
    }

    /// Iterates over all word addresses of the block.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        (0..self.len as u64).map(move |i| self.base.offset(i))
    }

    /// Returns `true` if `addr` falls inside the block.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.len as u64
    }
}

/// A log of the addresses returned by the allocator, keyed by
/// `(thread, per-thread allocation index)`.
///
/// Produced by every run; feed it back through
/// [`RunConfig::alloc_replay`](crate::RunConfig) to make later runs
/// allocate at the same addresses (the paper treats allocator results as
/// program *input* that must be fixed across the compared runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocLog {
    entries: HashMap<(ThreadId, u64), u64>,
}

impl AllocLog {
    /// Number of logged allocations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the logged base address for `(tid, seq)`.
    pub fn lookup(&self, tid: ThreadId, seq: u64) -> Option<Addr> {
        self.entries.get(&(tid, seq)).map(|&b| Addr(b))
    }

    /// The logged allocations as `((tid, seq), base)` triples, sorted by
    /// key — a canonical order, so two equal logs always enumerate
    /// identically (the corpus serializer relies on this).
    pub fn entries(&self) -> Vec<((ThreadId, u64), u64)> {
        let mut v: Vec<((ThreadId, u64), u64)> =
            self.entries.iter().map(|(&k, &base)| (k, base)).collect();
        v.sort_unstable();
        v
    }

    /// Inserts one logged allocation — the inverse of
    /// [`entries`](AllocLog::entries), for deserializing a persisted log.
    pub fn insert(&mut self, tid: ThreadId, seq: u64, base: u64) {
        self.record(tid, seq, base);
    }

    fn record(&mut self, tid: ThreadId, seq: u64, base: u64) {
        self.entries.insert((tid, seq), base);
    }
}

/// The heap allocator state for one run.
#[derive(Debug)]
pub(crate) struct Allocator {
    /// Next unused word offset from `HEAP_BASE`.
    next: u64,
    /// Size-classed LIFO free lists (exact-size reuse, like a fast-bin).
    free_lists: BTreeMap<usize, Vec<u64>>,
    /// Live blocks by base address.
    table: BTreeMap<u64, BlockInfo>,
    /// Per-thread allocation counters.
    counters: Vec<u64>,
    /// Log of this run's allocations.
    log: AllocLog,
    /// Addresses to replay, if any.
    replay: Option<Arc<AllocLog>>,
    /// How many replayed allocations had to fall back to fresh memory
    /// (missing key or overlap with a live block).
    replay_misses: u64,
}

impl Allocator {
    pub(crate) fn new(nthreads: usize, replay: Option<Arc<AllocLog>>) -> Self {
        Allocator {
            next: 0,
            free_lists: BTreeMap::new(),
            table: BTreeMap::new(),
            counters: vec![0; nthreads],
            log: AllocLog::default(),
            replay,
            replay_misses: 0,
        }
    }

    pub(crate) fn table(&self) -> &BTreeMap<u64, BlockInfo> {
        &self.table
    }

    pub(crate) fn into_parts(self) -> (AllocLog, BTreeMap<u64, BlockInfo>, u64) {
        (self.log, self.table, self.replay_misses)
    }

    /// Returns `true` if `[base, base+len)` overlaps any live block.
    fn overlaps_live(&self, base: u64, len: usize) -> bool {
        // The previous block (by base) could extend into us; any block
        // starting inside us also overlaps.
        if let Some((_, prev)) = self.table.range(..=base).next_back() {
            if prev.base.0 + prev.len as u64 > base {
                return true;
            }
        }
        self.table.range(base..base + len as u64).next().is_some()
    }

    /// Allocates `len` words for `tid` at `site`, returning the block's
    /// base address. Never fails (the heap grows on demand).
    pub(crate) fn alloc(
        &mut self,
        tid: ThreadId,
        site: &'static str,
        tag: TypeTag,
        len: usize,
    ) -> Addr {
        let len = len.max(1);
        let seq = self.counters[tid];
        self.counters[tid] += 1;

        let base = self
            .replayed_base(tid, seq, len)
            .unwrap_or_else(|| self.natural_base(len));

        self.log.record(tid, seq, base);
        self.table.insert(
            base,
            BlockInfo {
                base: Addr(base),
                len,
                site,
                tag,
                tid,
                seq,
            },
        );
        Addr(base)
    }

    fn replayed_base(&mut self, tid: ThreadId, seq: u64, len: usize) -> Option<u64> {
        let replay = self.replay.as_ref()?;
        match replay.lookup(tid, seq) {
            Some(addr) if !self.overlaps_live(addr.0, len) => {
                // Keep the bump pointer past every replayed block so a
                // later fallback allocation cannot collide with one.
                self.next = self.next.max(addr.0 - HEAP_BASE + len as u64);
                Some(addr.0)
            }
            _ => {
                // Key missing (the runs diverged structurally) or the
                // logged block overlaps a live one (lifetimes shifted
                // under this schedule): fall back to fresh memory.
                self.replay_misses += 1;
                None
            }
        }
    }

    fn natural_base(&mut self, len: usize) -> u64 {
        if self.replay.is_none() {
            if let Some(list) = self.free_lists.get_mut(&len) {
                if let Some(base) = list.pop() {
                    return base;
                }
            }
        }
        let base = HEAP_BASE + self.next;
        self.next += len as u64;
        base
    }

    /// Frees the block at `addr`, returning its metadata, or `None` if
    /// `addr` is not the base of a live block.
    pub(crate) fn free(&mut self, addr: Addr) -> Option<BlockInfo> {
        let block = self.table.remove(&addr.0)?;
        if self.replay.is_none() {
            self.free_lists.entry(block.len).or_default().push(addr.0);
        }
        Some(block)
    }

    /// Total words the heap must be grown to.
    pub(crate) fn high_water(&self) -> usize {
        self.next as usize
    }

    /// The log of this run's allocations so far.
    #[cfg(test)]
    pub(crate) fn log(&self) -> &AllocLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(alloc: &mut Allocator, tid: ThreadId, len: usize) -> Addr {
        alloc.alloc(tid, "test", TypeTag::u64s(), len)
    }

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut al = Allocator::new(2, None);
        let x = a(&mut al, 0, 4);
        let y = a(&mut al, 1, 2);
        assert_eq!(x, Addr(HEAP_BASE));
        assert_eq!(y, Addr(HEAP_BASE + 4));
        assert_eq!(al.high_water(), 6);
        assert_eq!(al.table().len(), 2);
    }

    #[test]
    fn free_list_reuse_is_lifo_and_size_classed() {
        let mut al = Allocator::new(1, None);
        let x = a(&mut al, 0, 4);
        let y = a(&mut al, 0, 4);
        al.free(x).unwrap();
        al.free(y).unwrap();
        // Same-size allocation reuses the most recently freed block.
        assert_eq!(a(&mut al, 0, 4), y);
        assert_eq!(a(&mut al, 0, 4), x);
        // A different size does not reuse.
        let z = a(&mut al, 0, 2);
        assert_eq!(z, Addr(HEAP_BASE + 8));
    }

    #[test]
    fn alloc_order_changes_addresses() {
        // The schedule-dependence the paper controls: the same per-thread
        // allocation sequence gets different addresses if the interleaving
        // differs.
        let mut run1 = Allocator::new(2, None);
        let t0_first = run1.alloc(0, "s", TypeTag::u64s(), 3);
        let _ = run1.alloc(1, "s", TypeTag::u64s(), 3);

        let mut run2 = Allocator::new(2, None);
        let _ = run2.alloc(1, "s", TypeTag::u64s(), 3);
        let t0_second = run2.alloc(0, "s", TypeTag::u64s(), 3);

        assert_ne!(t0_first, t0_second);
    }

    #[test]
    fn replay_restores_addresses() {
        let mut run1 = Allocator::new(2, None);
        let x1 = run1.alloc(0, "s", TypeTag::u64s(), 3);
        let y1 = run1.alloc(1, "s", TypeTag::u64s(), 5);
        let (log, _, _) = run1.into_parts();

        // Replay with the *opposite* interleaving: addresses still match.
        let mut run2 = Allocator::new(2, Some(Arc::new(log)));
        let y2 = run2.alloc(1, "s", TypeTag::u64s(), 5);
        let x2 = run2.alloc(0, "s", TypeTag::u64s(), 3);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
        let (_, _, misses) = run2.into_parts();
        assert_eq!(misses, 0);
    }

    #[test]
    fn replay_overlap_falls_back() {
        // Run 1: t0 allocates A, frees it, t1 reuses the space for B.
        let mut run1 = Allocator::new(2, None);
        let a1 = run1.alloc(0, "s", TypeTag::u64s(), 4);
        run1.free(a1).unwrap();
        let b1 = run1.alloc(1, "s", TypeTag::u64s(), 4);
        assert_eq!(a1, b1); // reuse happened
        let (log, _, _) = run1.into_parts();

        // Run 2 (different schedule): t1 allocates B *before* t0 frees A;
        // the replayed address would overlap the still-live A, so the
        // allocator must fall back rather than corrupt memory.
        let mut run2 = Allocator::new(2, Some(Arc::new(log)));
        let a2 = run2.alloc(0, "s", TypeTag::u64s(), 4);
        let b2 = run2.alloc(1, "s", TypeTag::u64s(), 4);
        assert_eq!(a2, a1);
        assert_ne!(b2, a2, "live blocks must never overlap");
        let (_, table, misses) = run2.into_parts();
        assert_eq!(misses, 1);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn replay_missing_key_falls_back() {
        let run1 = Allocator::new(1, None);
        let (log, _, _) = run1.into_parts(); // empty log
        let mut run2 = Allocator::new(1, Some(Arc::new(log)));
        let x = a(&mut run2, 0, 2);
        assert_eq!(x, Addr(HEAP_BASE));
        let (_, _, misses) = run2.into_parts();
        assert_eq!(misses, 1);
    }

    #[test]
    fn free_of_unknown_address_is_none() {
        let mut al = Allocator::new(1, None);
        assert!(al.free(Addr(HEAP_BASE + 123)).is_none());
        let x = a(&mut al, 0, 2);
        // Freeing an interior pointer is also invalid.
        assert!(al.free(x.offset(1)).is_none());
        assert!(al.free(x).is_some());
        assert!(al.free(x).is_none(), "double free rejected");
    }

    #[test]
    fn block_info_helpers() {
        let mut al = Allocator::new(1, None);
        let x = al.alloc(0, "site", TypeTag::f64s(), 3);
        let block = al.table()[&x.0].clone();
        assert_eq!(block.kind_at(2), ValKind::F64);
        assert_eq!(block.iter().count(), 3);
        assert!(block.contains(x.offset(2)));
        assert!(!block.contains(x.offset(3)));
        assert_eq!(block.site, "site");
        assert_eq!(block.seq, 0);
    }

    #[test]
    fn log_records_every_alloc() {
        let mut al = Allocator::new(2, None);
        a(&mut al, 0, 1);
        a(&mut al, 0, 1);
        a(&mut al, 1, 1);
        assert_eq!(al.log().len(), 3);
        assert!(al.log().lookup(0, 1).is_some());
        assert!(al.log().lookup(1, 1).is_none());
        assert!(!al.log().is_empty());
    }

    #[test]
    fn zero_len_alloc_rounds_up() {
        let mut al = Allocator::new(1, None);
        let x = a(&mut al, 0, 0);
        let y = a(&mut al, 0, 1);
        assert_ne!(x, y);
    }
}
