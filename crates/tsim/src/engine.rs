//! The execution engine: serialized cooperative scheduling of simulated
//! threads over the shared machine state.
//!
//! Each simulated thread is an OS thread, but exactly one of them owns the
//! *token* (`Central::active`) at any time, so execution is serialized and
//! fully determined by the scheduler's decisions. Threads hand the token
//! over at scheduling points (synchronization operations, and data
//! accesses when the [`SwitchPolicy`](crate::SwitchPolicy) says so).
//!
//! # Ownership transfer
//!
//! The machine state ([`Central`]) lives in a `Mutex<Option<Box<Central>>>`
//! only *between* turns. When a thread is granted the token it moves the
//! box out of the mutex into its own [`ThreadCtx`]; every data access then
//! runs directly on the owned state with no lock or atomic traffic beyond
//! one relaxed load of the abort flag. The box goes back into the mutex
//! only at a scheduling point whose pick lands on a *different* thread —
//! so a phase in which one thread holds the token (and in particular any
//! single-threaded run) executes its entire access stream without touching
//! the mutex or a condvar at all. This is what makes the store hot path
//! allocation- and lock-free.

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::Instant;

use adhash::{hash_delta_run, DeltaBatch, FpRound, HashSum, Mix64Hasher};

use crate::alloc::{AllocLog, Allocator, BlockInfo};
use crate::error::SimError;
use crate::faults::{FaultKind, FaultPlan, FaultRecord, FaultState};
use crate::libcalls::{LibCalls, LibLog};
use crate::mem::Memory;
use crate::monitor::{
    CheckpointInfo, CheckpointKind, EngineHashes, FastPathSpec, Monitor, StateView,
};
use crate::program::{GlobalDecl, Program, RunConfig};
use crate::sched::{Scheduler, SwitchPolicy};
use crate::trace::{Trace, TraceOp};
use crate::types::{Addr, BarrierId, CondId, LockId, RwLockId, SemId, ThreadId, TypeTag, ValKind};

/// Instruction-cost model (in simulated instructions).
const COST_ACCESS: u64 = 1;
const COST_SYNC: u64 = 1;
const COST_MALLOC: u64 = 10;
const COST_FREE: u64 = 10;
const COST_LIB: u64 = 5;

/// Even under `SwitchPolicy::SyncOnly`, force a scheduling point every
/// this many consecutive data accesses by one thread, so spin loops over
/// plain loads cannot monopolize the token forever.
const FORCED_PREEMPT_EVERY: u64 = 4096;

/// Panic payload used to silently unwind simulated threads when the run
/// aborts (deadlock, step limit, machine misuse).
struct SimAbort;

/// Installs (once per process) a panic hook that suppresses the default
/// message for [`SimAbort`] unwinds while delegating everything else.
fn install_quiet_abort_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SimAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Object-safe wrapper that lets the engine hold any monitor type and
/// still return the concrete value to the caller.
trait AnyMonitor: Monitor {
    fn as_monitor(&mut self) -> &mut dyn Monitor;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<M: Monitor + 'static> AnyMonitor for M {
    fn as_monitor(&mut self) -> &mut dyn Monitor {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    BlockedLock(LockId),
    BlockedBarrier(BarrierId),
    BlockedCond(CondId),
    BlockedRwRead(RwLockId),
    BlockedRwWrite(RwLockId),
    BlockedSem(SemId),
    Finished,
}

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<ThreadId>,
}

#[derive(Debug)]
struct BarrierState {
    parties: usize,
    arrived: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct RwState {
    writer: Option<ThreadId>,
    readers: Vec<ThreadId>,
}

#[derive(Debug)]
struct SemState {
    count: u64,
}

/// Per-thread run state, kept in one contiguous arena (`Central::threads`)
/// instead of parallel `Vec`s so a scheduling point touches one cache line
/// per thread and run construction performs one allocation for all of it.
#[derive(Debug, Clone)]
struct ThreadSlot {
    state: TState,
    instr: u64,
    access_count: u64,
}

/// Engine-side store datapath for monitors that claim a
/// [`FastPathSpec`]: replaces the per-store virtual dispatch with
/// monomorphic batched incremental hashing (folded four lanes wide at
/// flush, see [`DeltaBatch`]).
struct HotState {
    hashing: bool,
    rounding: Option<FpRound>,
    hasher: Mix64Hasher,
    /// Deltas buffered since the last flush; all belong to `batch_tid`.
    batch: DeltaBatch,
    batch_tid: ThreadId,
    /// Per-thread incremental sums, grown lazily to the highest storing
    /// thread id (mirrors the lazy per-core growth of the dyn-path
    /// checker, which the cost model observes).
    sums: Vec<HashSum>,
    stores: u64,
    freed_words: u64,
    /// Reusable `(old, new)` buffer for whole-block frees.
    free_scratch: Vec<(u64, u64)>,
}

impl HotState {
    fn new(spec: FastPathSpec) -> Self {
        HotState {
            hashing: spec.hashing,
            rounding: spec.rounding,
            hasher: Mix64Hasher::default(),
            batch: DeltaBatch::new(),
            batch_tid: 0,
            sums: Vec::new(),
            stores: 0,
            freed_words: 0,
            free_scratch: Vec::new(),
        }
    }

    /// Rounds a word iff it is an FP store and rounding is configured —
    /// exactly `MhmCore::round_off` semantics, so the fast path hashes
    /// bit-identically to the dyn-path checker.
    #[inline]
    fn round(&self, bits: u64, kind: ValKind) -> u64 {
        match (kind, self.rounding) {
            (ValKind::F64, Some(r)) => r.apply_bits(bits),
            _ => bits,
        }
    }

    /// Folds the buffered deltas into `batch_tid`'s sum.
    fn flush_batch(&mut self) {
        if !self.batch.is_empty() {
            let sum = self.batch.flush(&self.hasher);
            let tid = self.batch_tid;
            if self.sums.len() <= tid {
                self.sums.resize(tid + 1, HashSum::ZERO);
            }
            self.sums[tid] = self.sums[tid].combine(sum);
        }
    }

    /// The per-store hot path: count, round, and buffer one delta.
    #[inline]
    fn on_store(&mut self, tid: ThreadId, addr: Addr, old: u64, new: u64, kind: ValKind) {
        self.stores += 1;
        if !self.hashing {
            return;
        }
        if self.batch_tid != tid || self.batch.is_full() {
            self.flush_batch();
            self.batch_tid = tid;
        }
        self.batch
            .push(addr.raw(), self.round(old, kind), self.round(new, kind));
    }
}

/// All mutable machine state, protected by one mutex.
struct Central {
    mem: Memory,
    globals: Vec<GlobalDecl>,
    alloc: Allocator,
    locks: Vec<LockState>,
    rwlocks: Vec<RwState>,
    sems: Vec<SemState>,
    barriers: Vec<BarrierState>,
    threads: Vec<ThreadSlot>,
    active: Option<ThreadId>,
    scheduler: Box<dyn Scheduler + Send>,
    switch: SwitchPolicy,
    monitor: Box<dyn AnyMonitor + Send>,
    hot: Option<HotState>,
    zero_fill_instr: u64,
    charge_zero_fill: bool,
    lib: LibCalls,
    output: Vec<u8>,
    trace: Option<Trace>,
    decisions: Vec<u32>,
    decision_options: Option<Vec<Vec<u32>>>,
    step: u64,
    max_steps: u64,
    faults: Option<FaultState>,
    deadline_at: Option<Instant>,
    deadline_ms: u64,
    cp_seq: u64,
    cp_decision_index: Vec<usize>,
    error: Option<SimError>,
    finished: usize,
    nthreads: usize,
    sink: Option<Arc<dyn obs::EventSink>>,
    /// Reusable runnable-set buffer for scheduling points (no per-point
    /// allocation).
    sched_scratch: Vec<ThreadId>,
}

impl Central {
    fn trace_push(&mut self, tid: ThreadId, op: TraceOp) {
        if let Some(t) = &mut self.trace {
            t.push(tid, op);
        }
    }

    /// Emits one observability event, building it lazily so a run
    /// without a sink pays only this `Option` check.
    fn obs_emit(&self, make: impl FnOnce(u64) -> obs::Event) {
        if let Some(sink) = &self.sink {
            sink.record(make(self.step));
        }
    }

    /// Emits a fault-injection event.
    fn obs_fault(&self, tid: ThreadId, kind: FaultKind) {
        self.obs_emit(|step| {
            obs::Event::instant(step, tid as u32, "fault")
                .with_arg("tid", tid as u32)
                .with_arg("kind", kind.label())
        });
    }

    fn fire_checkpoint(&mut self, tid: ThreadId, kind: CheckpointKind) {
        let seq = self.cp_seq;
        self.cp_seq += 1;
        self.cp_decision_index.push(self.decisions.len());
        self.trace_push(tid, TraceOp::Checkpoint { seq });
        self.obs_emit(|step| {
            let (kind_str, label) = match kind {
                CheckpointKind::Barrier(_) => ("barrier", None),
                CheckpointKind::Manual(l) => ("manual", Some(l)),
                CheckpointKind::End => ("end", None),
            };
            let ev = obs::Event::instant(step, tid as u32, "checkpoint")
                .with_arg("seq", seq)
                .with_arg("kind", kind_str);
            match label {
                Some(l) => ev.with_arg("label", l),
                None => ev,
            }
        });
        let Central {
            mem,
            globals,
            alloc,
            monitor,
            hot,
            ..
        } = self;
        let mut view = StateView::new(mem, globals, alloc.table());
        if let Some(h) = hot.as_mut() {
            // Checkpoints are flush boundaries: drain the delta batch so
            // the per-thread sums are exact, then expose them.
            h.flush_batch();
        }
        if let Some(h) = hot.as_ref() {
            view = view.with_engine(EngineHashes {
                sums: &h.sums,
                stores: h.stores,
                freed_words: h.freed_words,
            });
        }
        monitor
            .as_monitor()
            .on_checkpoint(&CheckpointInfo { seq, kind }, &view);
    }

    fn deadlock_detail(&self) -> String {
        let mut parts = Vec::new();
        for (t, slot) in self.threads.iter().enumerate() {
            let what = match &slot.state {
                TState::Ready => continue,
                TState::BlockedLock(l) => format!("thread {t} waits on lock {}", l.index()),
                TState::BlockedBarrier(b) => {
                    format!("thread {t} waits at barrier {}", b.index())
                }
                TState::BlockedCond(c) => {
                    format!("thread {t} waits on condvar {}", c.0)
                }
                TState::BlockedRwRead(l) => {
                    format!("thread {t} waits to read-lock rwlock {}", l.index())
                }
                TState::BlockedRwWrite(l) => {
                    format!("thread {t} waits to write-lock rwlock {}", l.index())
                }
                TState::BlockedSem(sem) => {
                    format!("thread {t} waits on semaphore {}", sem.index())
                }
                TState::Finished => continue,
            };
            parts.push(what);
        }
        if parts.is_empty() {
            "no runnable threads".to_owned()
        } else {
            parts.join("; ")
        }
    }
}

struct Shared {
    /// The machine-state cell: `Some` while the state is parked between
    /// turns, `None` while the running thread owns it (see the module
    /// docs on ownership transfer).
    mu: Mutex<Option<Box<Central>>>,
    /// One condvar per simulated thread: a thread only ever waits on its
    /// own, so handing the token over wakes exactly the picked thread
    /// instead of stampeding every waiter (and the coordinator) through
    /// a futex herd at every scheduling point.
    cvs: Vec<Condvar>,
    /// The run coordinator's condvar: signalled on completion and errors,
    /// never on routine token handoffs.
    coord: Condvar,
    /// Set by the coordinator when the deadline fires while a thread owns
    /// the machine state: that thread cannot be reached through the cell,
    /// so it polls this flag (one relaxed load) on every instrumented
    /// call and aborts at the next one.
    abort: AtomicBool,
}

impl Shared {
    /// Wakes every waiter — error paths only.
    fn wake_all(&self) {
        for cv in &self.cvs {
            cv.notify_all();
        }
        self.coord.notify_all();
    }
}

fn lock_cell(shared: &Shared) -> MutexGuard<'_, Option<Box<Central>>> {
    shared.mu.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Picks the next thread to run (or detects completion/deadlock) and
/// returns the pick. Expects `c.active == None`. The caller is
/// responsible for waking the picked thread (after parking the machine
/// state back in the cell, so the wakeup cannot be missed).
///
/// `avoid` excludes a thread from consideration when at least one other
/// thread is runnable — used by the forced-preemption backstop so that a
/// thread spinning on plain loads cannot be handed the token straight
/// back regardless of the scheduler policy.
///
/// A `None` return means no thread is runnable: either every thread
/// finished, or the run deadlocked (recorded in `c.error`).
fn schedule_next_core(c: &mut Central, avoid: Option<ThreadId>) -> Option<ThreadId> {
    let mut runnable = std::mem::take(&mut c.sched_scratch);
    runnable.clear();
    runnable.extend((0..c.nthreads).filter(|&t| c.threads[t].state == TState::Ready));
    if let Some(avoid) = avoid {
        if runnable.len() > 1 {
            runnable.retain(|&t| t != avoid);
        }
    }
    if runnable.is_empty() {
        if c.finished < c.nthreads && c.error.is_none() {
            c.error = Some(SimError::Deadlock {
                detail: c.deadlock_detail(),
            });
        }
        c.sched_scratch = runnable;
        None
    } else {
        let idx = c.scheduler.pick(&runnable, c.step).min(runnable.len() - 1);
        let next = runnable[idx];
        c.decisions.push(next as u32);
        if let Some(opts) = &mut c.decision_options {
            opts.push(runnable.iter().map(|&t| t as u32).collect());
        }
        c.active = Some(next);
        c.obs_emit(|step| {
            obs::Event::instant(step, next as u32, "sched")
                .with_arg("tid", next as u32)
                .with_arg("runnable", runnable.len())
        });
        c.sched_scratch = runnable;
        Some(next)
    }
}

/// Registers a wake operation with the fault plan; `true` means an
/// injected [`FaultKind::WakeDrop`] swallows this wake (the classic
/// lost-wakeup bug — the woken state change simply does not happen).
fn wake_dropped(c: &mut Central, tid: ThreadId) -> bool {
    let dropped = match &mut c.faults {
        Some(f) => f.fire(FaultKind::WakeDrop, tid).is_some(),
        None => false,
    };
    if dropped {
        c.obs_fault(tid, FaultKind::WakeDrop);
    }
    dropped
}

/// The per-thread instrumented API that workload bodies are written
/// against — the simulator's equivalent of the instruction stream Pin
/// instruments in the paper.
///
/// All shared-memory traffic, synchronization, allocation, library calls
/// and output of the program under test must go through this context; the
/// run's [`Monitor`] observes it and the scheduler interleaves it.
///
/// Methods abort the whole run (by unwinding this thread) on machine
/// misuse; the run then returns the corresponding [`SimError`].
pub struct ThreadCtx {
    tid: ThreadId,
    shared: Arc<Shared>,
    /// The machine state, owned while this thread holds the token
    /// (`None` while parked in the cell or owned by another thread).
    owned: Option<Box<Central>>,
}

impl std::fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx").field("tid", &self.tid).finish()
    }
}

/// What to do after the scheduler pick at a scheduling point.
enum After {
    /// The pick landed back on the caller: keep ownership and continue.
    KeepRunning,
    /// Hand the machine state to the picked thread (or, on `None`, park
    /// it and wake everyone — the core recorded a deadlock error).
    Handoff(Option<ThreadId>),
    /// Abort the run with this error.
    Fail(SimError),
}

impl ThreadCtx {
    /// This thread's id (0-based, dense).
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Number of threads in the program.
    pub fn nthreads(&self) -> usize {
        self.shared.cvs.len()
    }

    /// The owned machine state — the entire hot-path "guard": one relaxed
    /// load of the abort flag and one `Option` branch, no lock.
    #[inline]
    fn central(&mut self) -> &mut Central {
        if self.shared.abort.load(Ordering::Relaxed) {
            self.abort_slow();
        }
        self.owned.as_deref_mut().expect("token protocol violated")
    }

    /// The deadline fired while we owned the machine state: record the
    /// error, park the state, and unwind.
    #[cold]
    fn abort_slow(&mut self) -> ! {
        if let Some(c) = self.owned.as_deref_mut() {
            if c.error.is_none() {
                c.error = Some(SimError::Deadline {
                    limit_ms: c.deadline_ms,
                });
            }
        }
        if let Some(boxed) = self.owned.take() {
            *lock_cell(&self.shared) = Some(boxed);
        }
        self.shared.wake_all();
        panic::panic_any(SimAbort)
    }

    #[cold]
    fn fail(&mut self, err: SimError) -> ! {
        match self.owned.take() {
            Some(mut boxed) => {
                if boxed.error.is_none() {
                    boxed.error = Some(err);
                }
                *lock_cell(&self.shared) = Some(boxed);
            }
            None => {
                let mut cell = lock_cell(&self.shared);
                if let Some(c) = cell.as_deref_mut() {
                    if c.error.is_none() {
                        c.error = Some(err);
                    }
                }
            }
        }
        self.shared.wake_all();
        panic::panic_any(SimAbort)
    }

    /// Blocks until this thread is scheduled again (or the run aborts),
    /// then takes ownership of the machine state. Waits on this thread's
    /// own condvar: nobody else ever sleeps there.
    fn wait_for_turn_locked(&mut self, mut cell: MutexGuard<'_, Option<Box<Central>>>) {
        loop {
            match cell.as_deref() {
                Some(c) => {
                    if c.error.is_some() {
                        drop(cell);
                        panic::panic_any(SimAbort);
                    }
                    if c.active == Some(self.tid) && c.threads[self.tid].state == TState::Ready {
                        self.owned = cell.take();
                        return;
                    }
                }
                None => {
                    // Another thread owns the state. If the run is being
                    // torn down it may never come back to the cell (the
                    // owner could be stuck), so honor the abort flag.
                    if self.shared.abort.load(Ordering::Relaxed) {
                        drop(cell);
                        panic::panic_any(SimAbort);
                    }
                }
            }
            cell = self.shared.cvs[self.tid]
                .wait(cell)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A scheduling point: record our new state, give up the token, let
    /// the scheduler pick, and wait until it is our turn again. When the
    /// pick lands back on us the whole operation stays on the owned state
    /// — no mutex, no condvar.
    fn reschedule(&mut self, new_state: TState) {
        self.reschedule_avoiding(new_state, false)
    }

    fn reschedule_avoiding(&mut self, new_state: TState, avoid_self: bool) {
        let tid = self.tid;
        let after = {
            let c = self.owned.as_deref_mut().expect("token protocol violated");
            c.step += 1;
            if c.step > c.max_steps && c.error.is_none() {
                After::Fail(SimError::StepLimit { limit: c.max_steps })
            } else if c
                .deadline_at
                // The watchdog: every scheduling point checks the wall
                // clock, so even a spin livelock over plain loads (which
                // reaches here via the forced-preemption backstop) is
                // caught without waiting for the much larger step limit.
                .is_some_and(|at| Instant::now() >= at && c.error.is_none())
            {
                After::Fail(SimError::Deadline {
                    limit_ms: c.deadline_ms,
                })
            } else {
                c.threads[tid].state = new_state;
                c.active = None;
                let picked = schedule_next_core(c, avoid_self.then_some(tid));
                if picked == Some(tid) {
                    After::KeepRunning
                } else {
                    After::Handoff(picked)
                }
            }
        };
        match after {
            After::KeepRunning => {}
            After::Fail(err) => self.fail(err),
            After::Handoff(picked) => {
                let boxed = self.owned.take().expect("token protocol violated");
                let shared = Arc::clone(&self.shared);
                let mut cell = lock_cell(&shared);
                *cell = Some(boxed);
                match picked {
                    Some(next) => shared.cvs[next].notify_one(),
                    // No runnable thread: the core recorded a deadlock
                    // (the caller is not finished), so wake everyone.
                    None => shared.wake_all(),
                }
                self.wait_for_turn_locked(cell);
            }
        }
    }

    #[inline]
    fn access_preempt(&mut self) {
        let tid = self.tid;
        let (forced, policy) = {
            let c = self.owned.as_deref_mut().expect("token protocol violated");
            let slot = &mut c.threads[tid];
            slot.access_count += 1;
            let count = slot.access_count;
            let forced = count.is_multiple_of(FORCED_PREEMPT_EVERY);
            (forced, !forced && c.switch.preempt_on_access(count))
        };
        if forced {
            self.reschedule_avoiding(TState::Ready, true);
        } else if policy {
            self.reschedule(TState::Ready);
        }
    }

    // ---- data accesses -------------------------------------------------

    fn load_kind(&mut self, addr: Addr, kind: ValKind) -> u64 {
        let tid = self.tid;
        let value = {
            let c = self.central();
            c.threads[tid].instr += COST_ACCESS;
            match c.mem.read(addr) {
                Some(value) => {
                    if c.hot.is_none() {
                        // A fast-path claim covers loads too (a claiming
                        // monitor's `on_load` is a no-op), so the dispatch
                        // is skipped entirely.
                        c.monitor.as_monitor().on_load(tid, addr, value, kind);
                    }
                    c.trace_push(tid, TraceOp::Load(addr));
                    Some(value)
                }
                None => None,
            }
        };
        let Some(value) = value else {
            self.fail(SimError::BadAddress { tid, addr });
        };
        self.access_preempt();
        value
    }

    fn store_kind(&mut self, addr: Addr, mut value: u64, kind: ValKind) {
        let tid = self.tid;
        let ok = {
            let c = self.central();
            c.threads[tid].instr += COST_ACCESS;
            if let Some(f) = &mut c.faults {
                // Data corruption: the value actually written (and seen by
                // both memory and the monitor) has one bit flipped.
                if let Some(e) = f.fire(FaultKind::BitFlip, tid) {
                    value ^= 1 << (e % 64);
                    c.obs_fault(tid, FaultKind::BitFlip);
                }
            }
            match c.mem.write(addr, value) {
                Some(mut old) => {
                    if let Some(f) = &mut c.faults {
                        // The §4.1 SW-Inc hazard: the monitor's read of the
                        // old value races the store and observes a wrong
                        // (stale) word, so it subtracts the wrong term from
                        // the hash. Memory itself is untouched — only the
                        // monitor is lied to.
                        if let Some(e) = f.fire(FaultKind::StaleRead, tid) {
                            old ^= 1 << (e % 64);
                            c.obs_fault(tid, FaultKind::StaleRead);
                        }
                    }
                    match &mut c.hot {
                        Some(hot) => hot.on_store(tid, addr, old, value, kind),
                        None => c.monitor.as_monitor().on_store(tid, addr, old, value, kind),
                    }
                    c.trace_push(tid, TraceOp::Store(addr));
                    true
                }
                None => false,
            }
        };
        if !ok {
            self.fail(SimError::BadAddress { tid, addr });
        }
        self.access_preempt();
    }

    /// Loads an integer/pointer word.
    pub fn load(&mut self, addr: Addr) -> u64 {
        self.load_kind(addr, ValKind::U64)
    }

    /// Stores an integer/pointer word.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.store_kind(addr, value, ValKind::U64)
    }

    /// Loads an `f64` (stored as its bit pattern).
    pub fn load_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.load_kind(addr, ValKind::F64))
    }

    /// Stores an `f64` — an *FP store*, which the checker may round off
    /// before hashing.
    pub fn store_f64(&mut self, addr: Addr, value: f64) {
        self.store_kind(addr, value.to_bits(), ValKind::F64)
    }

    /// Atomic fetch-add on an integer word; returns the previous value.
    /// A synchronization (scheduling) point.
    pub fn fetch_add(&mut self, addr: Addr, delta: u64) -> u64 {
        let tid = self.tid;
        let old = {
            let c = self.central();
            c.threads[tid].instr += 2 * COST_ACCESS;
            match c.mem.read(addr) {
                Some(old) => {
                    let new = old.wrapping_add(delta);
                    c.mem.write(addr, new);
                    match &mut c.hot {
                        Some(hot) => hot.on_store(tid, addr, old, new, ValKind::U64),
                        None => c
                            .monitor
                            .as_monitor()
                            .on_store(tid, addr, old, new, ValKind::U64),
                    }
                    c.trace_push(tid, TraceOp::Rmw(addr));
                    Some(old)
                }
                None => None,
            }
        };
        let Some(old) = old else {
            self.fail(SimError::BadAddress { tid, addr });
        };
        self.reschedule(TState::Ready);
        old
    }

    /// Atomic compare-and-swap; returns the previous value (the swap
    /// happened iff it equals `expected`). A scheduling point.
    pub fn compare_and_swap(&mut self, addr: Addr, expected: u64, new: u64) -> u64 {
        let tid = self.tid;
        let old = {
            let c = self.central();
            c.threads[tid].instr += 2 * COST_ACCESS;
            match c.mem.read(addr) {
                Some(old) => {
                    if old == expected {
                        c.mem.write(addr, new);
                        match &mut c.hot {
                            Some(hot) => hot.on_store(tid, addr, old, new, ValKind::U64),
                            None => {
                                c.monitor
                                    .as_monitor()
                                    .on_store(tid, addr, old, new, ValKind::U64)
                            }
                        }
                    }
                    c.trace_push(tid, TraceOp::Rmw(addr));
                    Some(old)
                }
                None => None,
            }
        };
        let Some(old) = old else {
            self.fail(SimError::BadAddress { tid, addr });
        };
        self.reschedule(TState::Ready);
        old
    }

    // ---- synchronization -----------------------------------------------

    /// Acquires a mutex, blocking while it is held by another thread.
    ///
    /// The simulated mutexes are non-reentrant; re-acquiring aborts the
    /// run with [`SimError::RelockHeld`].
    pub fn lock(&mut self, l: LockId) {
        enum LockOutcome {
            Acquired,
            Blocked,
            Relock,
        }
        loop {
            let tid = self.tid;
            let outcome = {
                let c = self.central();
                c.threads[tid].instr += COST_SYNC;
                match c.locks[l.0].held_by {
                    None => {
                        c.locks[l.0].held_by = Some(tid);
                        c.trace_push(tid, TraceOp::Lock(l));
                        LockOutcome::Acquired
                    }
                    Some(holder) if holder == tid => LockOutcome::Relock,
                    Some(_) => LockOutcome::Blocked,
                }
            };
            match outcome {
                LockOutcome::Acquired => {
                    self.reschedule(TState::Ready);
                    return;
                }
                LockOutcome::Blocked => self.reschedule(TState::BlockedLock(l)),
                LockOutcome::Relock => self.fail(SimError::RelockHeld { tid, lock: l }),
            }
        }
    }

    /// Releases a mutex this thread holds.
    pub fn unlock(&mut self, l: LockId) {
        let tid = self.tid;
        let ok = {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            if c.locks[l.0].held_by == Some(tid) {
                c.locks[l.0].held_by = None;
                if !wake_dropped(c, tid) {
                    for t in 0..c.nthreads {
                        if c.threads[t].state == TState::BlockedLock(l) {
                            c.threads[t].state = TState::Ready;
                        }
                    }
                }
                c.trace_push(tid, TraceOp::Unlock(l));
                true
            } else {
                false
            }
        };
        if !ok {
            self.fail(SimError::UnlockNotHeld { tid, lock: l });
        }
        self.reschedule(TState::Ready);
    }

    /// Arrives at a pthread-style barrier; blocks until all parties have
    /// arrived. The last arrival fires a determinism checkpoint — the
    /// paper checks at every dynamic `pthread_barrier_wait`.
    pub fn barrier(&mut self, b: BarrierId) {
        let tid = self.tid;
        let state = {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            c.trace_push(tid, TraceOp::BarrierArrive(b));
            c.barriers[b.0].arrived.push(tid);
            if c.barriers[b.0].arrived.len() == c.barriers[b.0].parties {
                let arrived = std::mem::take(&mut c.barriers[b.0].arrived);
                for &t in &arrived {
                    c.threads[t].state = TState::Ready;
                }
                c.trace_push(tid, TraceOp::BarrierRelease(b));
                c.fire_checkpoint(tid, CheckpointKind::Barrier(b));
                TState::Ready
            } else {
                TState::BlockedBarrier(b)
            }
        };
        self.reschedule(state);
    }

    /// Waits on a condition variable, releasing `l` while waiting and
    /// re-acquiring it before returning.
    ///
    /// Spurious wakeups are possible (as with pthreads): always call in a
    /// predicate loop.
    pub fn cond_wait(&mut self, cond: CondId, l: LockId) {
        let tid = self.tid;
        let ok = {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            if c.locks[l.0].held_by == Some(tid) {
                c.locks[l.0].held_by = None;
                for t in 0..c.nthreads {
                    if c.threads[t].state == TState::BlockedLock(l) {
                        c.threads[t].state = TState::Ready;
                    }
                }
                c.trace_push(tid, TraceOp::CondWait(cond, l));
                true
            } else {
                false
            }
        };
        if !ok {
            self.fail(SimError::UnlockNotHeld { tid, lock: l });
        }
        self.reschedule(TState::BlockedCond(cond));
        self.lock(l);
    }

    /// Wakes one thread waiting on `cond` (the lowest-id waiter).
    pub fn cond_signal(&mut self, cond: CondId) {
        let tid = self.tid;
        {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            if !wake_dropped(c, tid) {
                if let Some(t) =
                    (0..c.nthreads).find(|&t| c.threads[t].state == TState::BlockedCond(cond))
                {
                    c.threads[t].state = TState::Ready;
                }
            }
            c.trace_push(tid, TraceOp::CondSignal(cond));
        }
        self.reschedule(TState::Ready);
    }

    /// Wakes every thread waiting on `cond`.
    pub fn cond_broadcast(&mut self, cond: CondId) {
        let tid = self.tid;
        {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            if !wake_dropped(c, tid) {
                for t in 0..c.nthreads {
                    if c.threads[t].state == TState::BlockedCond(cond) {
                        c.threads[t].state = TState::Ready;
                    }
                }
            }
            c.trace_push(tid, TraceOp::CondBroadcast(cond));
        }
        self.reschedule(TState::Ready);
    }

    /// Voluntarily yields the token (a scheduling point with no effect).
    pub fn sched_yield(&mut self) {
        let _ = self.central();
        self.reschedule(TState::Ready);
    }

    // ---- reader-writer locks and semaphores ------------------------------

    /// Acquires a reader-writer lock in shared (read) mode; blocks while
    /// a writer holds it.
    pub fn read_lock(&mut self, l: RwLockId) {
        loop {
            let tid = self.tid;
            let acquired = {
                let c = self.central();
                c.threads[tid].instr += COST_SYNC;
                if c.rwlocks[l.0].writer.is_none() {
                    c.rwlocks[l.0].readers.push(tid);
                    c.trace_push(tid, TraceOp::RwReadLock(l));
                    true
                } else {
                    false
                }
            };
            if acquired {
                self.reschedule(TState::Ready);
                return;
            }
            self.reschedule(TState::BlockedRwRead(l));
        }
    }

    /// Releases a shared (read) hold.
    pub fn read_unlock(&mut self, l: RwLockId) {
        let tid = self.tid;
        let ok = {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            match c.rwlocks[l.0].readers.iter().position(|&t| t == tid) {
                Some(pos) => {
                    c.rwlocks[l.0].readers.swap_remove(pos);
                    if c.rwlocks[l.0].readers.is_empty() {
                        // A waiting writer may proceed.
                        for t in 0..c.nthreads {
                            if c.threads[t].state == TState::BlockedRwWrite(l) {
                                c.threads[t].state = TState::Ready;
                            }
                        }
                    }
                    c.trace_push(tid, TraceOp::RwReadUnlock(l));
                    true
                }
                None => false,
            }
        };
        if !ok {
            self.fail(SimError::RwUnlockNotHeld {
                tid,
                rwlock: l.0,
                write: false,
            });
        }
        self.reschedule(TState::Ready);
    }

    /// Acquires a reader-writer lock in exclusive (write) mode; blocks
    /// while any reader or another writer holds it.
    pub fn write_lock(&mut self, l: RwLockId) {
        loop {
            let tid = self.tid;
            let acquired = {
                let c = self.central();
                c.threads[tid].instr += COST_SYNC;
                let st = &mut c.rwlocks[l.0];
                if st.writer.is_none() && st.readers.is_empty() {
                    st.writer = Some(tid);
                    c.trace_push(tid, TraceOp::RwWriteLock(l));
                    true
                } else {
                    false
                }
            };
            if acquired {
                self.reschedule(TState::Ready);
                return;
            }
            self.reschedule(TState::BlockedRwWrite(l));
        }
    }

    /// Releases an exclusive (write) hold.
    pub fn write_unlock(&mut self, l: RwLockId) {
        let tid = self.tid;
        let ok = {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            if c.rwlocks[l.0].writer == Some(tid) {
                c.rwlocks[l.0].writer = None;
                for t in 0..c.nthreads {
                    if c.threads[t].state == TState::BlockedRwRead(l)
                        || c.threads[t].state == TState::BlockedRwWrite(l)
                    {
                        c.threads[t].state = TState::Ready;
                    }
                }
                c.trace_push(tid, TraceOp::RwWriteUnlock(l));
                true
            } else {
                false
            }
        };
        if !ok {
            self.fail(SimError::RwUnlockNotHeld {
                tid,
                rwlock: l.0,
                write: true,
            });
        }
        self.reschedule(TState::Ready);
    }

    /// Semaphore wait (P): blocks until the count is positive, then
    /// decrements it.
    pub fn sem_wait(&mut self, sem: SemId) {
        loop {
            let tid = self.tid;
            let acquired = {
                let c = self.central();
                c.threads[tid].instr += COST_SYNC;
                if c.sems[sem.0].count > 0 {
                    c.sems[sem.0].count -= 1;
                    c.trace_push(tid, TraceOp::SemWait(sem));
                    true
                } else {
                    false
                }
            };
            if acquired {
                self.reschedule(TState::Ready);
                return;
            }
            self.reschedule(TState::BlockedSem(sem));
        }
    }

    /// Semaphore post (V): increments the count and wakes waiters.
    pub fn sem_post(&mut self, sem: SemId) {
        let tid = self.tid;
        {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            c.sems[sem.0].count += 1;
            if !wake_dropped(c, tid) {
                for t in 0..c.nthreads {
                    if c.threads[t].state == TState::BlockedSem(sem) {
                        c.threads[t].state = TState::Ready;
                    }
                }
            }
            c.trace_push(tid, TraceOp::SemPost(sem));
        }
        self.reschedule(TState::Ready);
    }

    // ---- heap ------------------------------------------------------------

    /// Allocates `len` zero-filled words at allocation site `site` with
    /// per-word type layout `tag`. A scheduling point (the allocator is
    /// shared state).
    pub fn malloc(&mut self, site: &'static str, tag: TypeTag, len: usize) -> Addr {
        let tid = self.tid;
        let alloc_failed = {
            let c = self.central();
            c.threads[tid].instr += COST_MALLOC;
            let failed = match &mut c.faults {
                Some(f) => f.fire(FaultKind::AllocFail, tid).is_some(),
                None => false,
            };
            if failed {
                c.obs_fault(tid, FaultKind::AllocFail);
            }
            failed
        };
        if alloc_failed {
            self.fail(SimError::AllocFailed { tid, site });
        }
        let base = {
            let c = self.central();
            let base = c.alloc.alloc(tid, site, tag, len);
            let high = c.alloc.high_water();
            c.mem.grow_heap(high);
            let len = c.alloc.table()[&base.0].len;
            for i in 0..len {
                c.mem.write(base.offset(i as u64), 0);
            }
            if c.charge_zero_fill {
                c.zero_fill_instr += len as u64;
            }
            let block = c.alloc.table()[&base.0].clone();
            c.monitor.as_monitor().on_alloc(tid, &block);
            c.trace_push(tid, TraceOp::Alloc { base, len });
            c.obs_emit(|step| {
                obs::Event::instant(step, tid as u32, "alloc")
                    .with_arg("base", base.0)
                    .with_arg("words", len)
            });
            base
        };
        self.reschedule(TState::Ready);
        base
    }

    /// Frees the block at `addr`. Aborts the run with
    /// [`SimError::BadFree`] if `addr` is not the base of a live block.
    /// A scheduling point.
    pub fn free(&mut self, addr: Addr) {
        let tid = self.tid;
        let block = {
            let c = self.central();
            c.threads[tid].instr += COST_FREE;
            c.alloc.free(addr)
        };
        let Some(block) = block else {
            self.fail(SimError::BadFree { tid, addr });
        };
        let central = self.central();
        match &mut central.hot {
            Some(hot) => {
                hot.freed_words += block.len as u64;
                if hot.hashing {
                    // The freed block leaves the live state: cancel every
                    // word's contribution (delta current → 0, rounded as
                    // the dyn-path checker would) via one fused run over
                    // the block's contiguous words.
                    hot.flush_batch();
                    if hot.sums.len() <= tid {
                        hot.sums.resize(tid + 1, HashSum::ZERO);
                    }
                    let mut pairs = std::mem::take(&mut hot.free_scratch);
                    pairs.clear();
                    for i in 0..block.len {
                        let a = block.base.offset(i as u64);
                        let cur = central.mem.read(a).unwrap_or(0);
                        let kind = block.kind_at(i);
                        pairs.push((hot.round(cur, kind), hot.round(0, kind)));
                    }
                    let delta = hash_delta_run(&hot.hasher, block.base.raw(), &pairs);
                    hot.sums[tid] = hot.sums[tid].combine(delta);
                    hot.free_scratch = pairs;
                }
            }
            None => {
                let contents: Vec<u64> = block
                    .iter()
                    .map(|a| central.mem.read(a).unwrap_or(0))
                    .collect();
                central.monitor.as_monitor().on_free(tid, &block, &contents);
            }
        }
        central.trace_push(tid, TraceOp::Free { base: addr });
        central.obs_emit(|step| {
            obs::Event::instant(step, tid as u32, "free").with_arg("base", addr.0)
        });
        self.reschedule(TState::Ready);
    }

    // ---- library calls, output, accounting -------------------------------

    /// Simulated nondeterministic `rand()` (controlled by the run's
    /// library seed / replay log).
    pub fn rand_u64(&mut self) -> u64 {
        let tid = self.tid;
        let c = self.central();
        c.threads[tid].instr += COST_LIB;
        let v = c.lib.rand_u64(tid);
        lib_perturb(c, tid, v)
    }

    /// Simulated `gettimeofday()` (controlled like [`rand_u64`]).
    ///
    /// [`rand_u64`]: ThreadCtx::rand_u64
    pub fn gettimeofday(&mut self) -> u64 {
        let tid = self.tid;
        let c = self.central();
        c.threads[tid].instr += COST_LIB;
        let v = c.lib.gettimeofday(tid);
        lib_perturb(c, tid, v)
    }

    /// Appends bytes to the program's output stream (the simulated
    /// `write()`); a scheduling point.
    pub fn write_output(&mut self, bytes: &[u8]) {
        let tid = self.tid;
        {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC + bytes.len() as u64 / 8;
            c.output.extend_from_slice(bytes);
            c.monitor.as_monitor().on_output(tid, bytes);
            c.trace_push(tid, TraceOp::Output { len: bytes.len() });
        }
        self.reschedule(TState::Ready);
    }

    /// Accounts `n` instructions of thread-local computation (work that
    /// does not touch shared memory).
    #[inline]
    pub fn work(&mut self, n: u64) {
        let tid = self.tid;
        let c = self.central();
        c.threads[tid].instr += n;
    }

    /// Fires a manual determinism checkpoint (the paper's
    /// programmer-specified checking points). A scheduling point.
    pub fn checkpoint(&mut self, label: &'static str) {
        let tid = self.tid;
        {
            let c = self.central();
            c.threads[tid].instr += COST_SYNC;
            c.fire_checkpoint(tid, CheckpointKind::Manual(label));
        }
        self.reschedule(TState::Ready);
    }

    fn wait_first_turn(&mut self) {
        let shared = Arc::clone(&self.shared);
        let cell = lock_cell(&shared);
        self.wait_for_turn_locked(cell);
    }
}

/// Applies an injected [`FaultKind::LibPerturb`] fault to a library
/// call's result (environment nondeterminism beyond the seeded
/// stream, e.g. an NTP step under `gettimeofday`).
fn lib_perturb(c: &mut Central, tid: ThreadId, v: u64) -> u64 {
    let perturbed = match &mut c.faults {
        Some(f) => f.fire(FaultKind::LibPerturb, tid),
        None => None,
    };
    match perturbed {
        Some(e) => {
            c.obs_fault(tid, FaultKind::LibPerturb);
            v ^ e
        }
        None => v,
    }
}

/// Single-threaded setup context: establishes the program's fixed input
/// state before the threads start. No scheduling is involved; effects are
/// still visible to the [`Monitor`] (attributed to thread 0) so that the
/// identical input contributes identically to every run.
pub struct SetupCtx<'a> {
    c: &'a mut Central,
}

impl std::fmt::Debug for SetupCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetupCtx").finish_non_exhaustive()
    }
}

impl SetupCtx<'_> {
    /// Stores an integer word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped (setup bugs are programming errors).
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.c.threads[0].instr += COST_ACCESS;
        let old = self
            .c
            .mem
            .write(addr, value)
            .expect("setup store to unmapped address");
        self.c
            .monitor
            .as_monitor()
            .on_store(0, addr, old, value, ValKind::U64);
    }

    /// Stores an `f64` word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    pub fn store_f64(&mut self, addr: Addr, value: f64) {
        self.c.threads[0].instr += COST_ACCESS;
        let old = self
            .c
            .mem
            .write(addr, value.to_bits())
            .expect("setup store to unmapped address");
        self.c
            .monitor
            .as_monitor()
            .on_store(0, addr, old, value.to_bits(), ValKind::F64);
    }

    /// Loads a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    pub fn load(&mut self, addr: Addr) -> u64 {
        self.c
            .mem
            .read(addr)
            .expect("setup load from unmapped address")
    }

    /// Allocates `len` zero-filled words (setup allocations model the
    /// input data of the program).
    pub fn malloc(&mut self, site: &'static str, tag: TypeTag, len: usize) -> Addr {
        self.c.threads[0].instr += COST_MALLOC;
        let base = self.c.alloc.alloc(0, site, tag, len);
        let high = self.c.alloc.high_water();
        self.c.mem.grow_heap(high);
        let len = self.c.alloc.table()[&base.0].len;
        for i in 0..len {
            self.c.mem.write(base.offset(i as u64), 0);
        }
        if self.c.charge_zero_fill {
            self.c.zero_fill_instr += len as u64;
        }
        let block = self.c.alloc.table()[&base.0].clone();
        self.c.monitor.as_monitor().on_alloc(0, &block);
        base
    }

    /// A deterministic pseudo-random stream for building input data
    /// (fixed across runs; not a simulated nondeterministic library call).
    pub fn input_rand(&mut self, key: u64) -> u64 {
        let mut x = key ^ 0x5bf0_3635_16f5_0e5b;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// The result of one simulated run.
///
/// Carries the monitor back to the caller together with the run's
/// accounting, logs, optional trace, and a view of the final state.
pub struct RunOutcome<M> {
    /// The monitor that observed the run.
    pub monitor: M,
    /// Native instructions executed, per thread (the Figure 6 baseline).
    pub instr: Vec<u64>,
    /// Instructions spent zero-filling allocations, charged only when
    /// [`RunConfig::charge_zero_fill`](crate::RunConfig) is set — the
    /// paper's HW-InstantCheck overhead.
    pub zero_fill_instr: u64,
    /// The program's output stream.
    pub output: Vec<u8>,
    /// The scheduler decisions taken (thread id per scheduling point);
    /// feed into a [`ScriptedScheduler`](crate::ScriptedScheduler) to
    /// replay the interleaving.
    pub decisions: Vec<u32>,
    /// The runnable set at every decision (recorded only when
    /// [`RunConfig::record_options`](crate::RunConfig) is set; empty
    /// otherwise).
    pub decision_options: Vec<Vec<u32>>,
    /// Total scheduling steps.
    pub steps: u64,
    /// Number of checkpoints fired (including the final `End`).
    pub checkpoints: u64,
    /// For each checkpoint (in firing order), how many scheduler
    /// decisions had been taken when it fired — lets systematic
    /// exploration align decision prefixes with checkpoint boundaries.
    pub checkpoint_decision_index: Vec<usize>,
    /// Allocator address log (for cross-run replay).
    pub alloc_log: Arc<AllocLog>,
    /// Library-call log (for cross-run replay).
    pub lib_log: Arc<LibLog>,
    /// Replayed allocations that fell back to fresh memory.
    pub replay_misses: u64,
    /// Every fault the run's [`FaultPlan`](crate::FaultPlan) injected,
    /// in firing order. Empty when no plan was configured. Part of the
    /// reproducibility contract: equal (fault seed, run config) pairs
    /// produce equal logs.
    pub faults: Vec<FaultRecord>,
    /// The recorded trace, if requested.
    pub trace: Option<Trace>,
    mem: Memory,
    globals: Vec<GlobalDecl>,
    blocks: BTreeMap<u64, BlockInfo>,
}

impl<M> std::fmt::Debug for RunOutcome<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOutcome")
            .field("steps", &self.steps)
            .field("checkpoints", &self.checkpoints)
            .field("instructions", &self.total_instructions())
            .finish_non_exhaustive()
    }
}

impl<M> RunOutcome<M> {
    /// Reads one word of the final memory, or `None` if unmapped.
    pub fn final_word(&self, addr: Addr) -> Option<u64> {
        self.mem.read(addr)
    }

    /// Reads one `f64` of the final memory.
    pub fn final_f64(&self, addr: Addr) -> Option<f64> {
        self.mem.read(addr).map(f64::from_bits)
    }

    /// A view of the final live state (globals + live heap blocks).
    pub fn final_state(&self) -> StateView<'_> {
        StateView::new(&self.mem, &self.globals, &self.blocks)
    }

    /// Total native instructions across all threads (excluding monitor
    /// overhead and zero-fill).
    pub fn total_instructions(&self) -> u64 {
        self.instr.iter().sum()
    }
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn thread_main(shared: Arc<Shared>, tid: ThreadId, body: Box<dyn FnOnce(&mut ThreadCtx) + Send>) {
    let mut ctx = ThreadCtx {
        tid,
        shared: shared.clone(),
        owned: None,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        ctx.wait_first_turn();
        body(&mut ctx);
    }));
    // Park the machine state if we still own it (normal completion, or a
    // panic out of the workload body — both happen while holding the
    // token). If we unwound from a wait instead, the state is either in
    // the cell already or owned by another thread.
    let owned = ctx.owned.take();
    let mut cell = lock_cell(&shared);
    if let Some(boxed) = owned {
        *cell = Some(boxed);
    }
    // When the cell is empty the machine state is owned by another
    // (still running) thread; we can only be here unwinding from an
    // abort, whose error that owner records. Nothing to update.
    if let Some(c) = cell.as_deref_mut() {
        if let Err(payload) = &result {
            if !payload.is::<SimAbort>() && c.error.is_none() {
                c.error = Some(SimError::ThreadPanic {
                    tid,
                    message: payload_message(payload.as_ref()),
                });
            }
        }
        if c.threads[tid].state != TState::Finished {
            c.threads[tid].state = TState::Finished;
            c.finished += 1;
        }
        if c.active == Some(tid) {
            c.active = None;
        }
        if c.error.is_none() && c.active.is_none() {
            match schedule_next_core(c, None) {
                Some(next) => shared.cvs[next].notify_one(),
                None => {
                    if c.error.is_some() {
                        shared.wake_all();
                    } else {
                        // All threads finished: only the coordinator
                        // cares.
                        shared.coord.notify_all();
                    }
                }
            }
        } else {
            shared.wake_all();
        }
    }
}

/// Runs `prog` under `config` with `monitor` observing.
pub(crate) fn run<M: Monitor + 'static>(
    prog: Program,
    config: &RunConfig,
    monitor: M,
) -> Result<RunOutcome<M>, SimError> {
    install_quiet_abort_hook();
    let nthreads = prog.nthreads;
    let mut scheduler = config.scheduler.build();
    scheduler.init(nthreads);

    // Consult the monitor's fast-path claim once, before it is boxed.
    let hot = monitor.fast_path().map(HotState::new);

    let mut central = Central {
        mem: Memory::new(prog.global_words),
        globals: prog.globals,
        alloc: Allocator::new(nthreads, config.alloc_replay.clone()),
        locks: (0..prog.locks).map(|_| LockState::default()).collect(),
        rwlocks: (0..prog.rwlocks).map(|_| RwState::default()).collect(),
        sems: prog.sems.iter().map(|&count| SemState { count }).collect(),
        barriers: prog
            .barriers
            .iter()
            .map(|&parties| BarrierState {
                parties,
                arrived: Vec::new(),
            })
            .collect(),
        threads: vec![
            ThreadSlot {
                state: TState::Ready,
                instr: 0,
                access_count: 0,
            };
            nthreads
        ],
        active: None,
        scheduler,
        switch: config.switch,
        monitor: Box::new(monitor),
        hot,
        zero_fill_instr: 0,
        charge_zero_fill: config.charge_zero_fill,
        lib: LibCalls::new(nthreads, config.lib_seed, config.lib_replay.clone()),
        output: Vec::new(),
        trace: config.record_trace.then(Trace::default),
        decisions: Vec::new(),
        decision_options: config.record_options.then(Vec::new),
        step: 0,
        max_steps: config.max_steps,
        faults: config
            .faults
            .clone()
            .filter(FaultPlan::is_active)
            .map(FaultState::new),
        deadline_at: config.deadline.map(|d| Instant::now() + d),
        deadline_ms: config.deadline.map_or(0, |d| d.as_millis() as u64),
        cp_seq: 0,
        cp_decision_index: Vec::new(),
        error: None,
        finished: 0,
        nthreads,
        // Drop disabled sinks up front so every emission site reduces
        // to a `None` check.
        sink: config.sink.clone().filter(|s| s.enabled()),
        sched_scratch: Vec::with_capacity(nthreads),
    };

    if let Some(setup) = prog.setup {
        let mut sctx = SetupCtx { c: &mut central };
        setup(&mut sctx);
    }

    let deadline_ms = central.deadline_ms;
    let deadline_at = central.deadline_at;
    let shared = Arc::new(Shared {
        mu: Mutex::new(Some(Box::new(central))),
        cvs: (0..nthreads).map(|_| Condvar::new()).collect(),
        coord: Condvar::new(),
        abort: AtomicBool::new(false),
    });

    let handles: Vec<_> = prog
        .threads
        .into_iter()
        .enumerate()
        .map(|(tid, body)| {
            let sh = shared.clone();
            thread::Builder::new()
                .name(format!("tsim-{tid}"))
                .spawn(move || thread_main(sh, tid, body))
                .expect("spawning a simulated thread")
        })
        .collect();

    {
        let mut cell = lock_cell(&shared);
        if let Some(next) = schedule_next_core(
            cell.as_deref_mut().expect("machine state present at start"),
            None,
        ) {
            shared.cvs[next].notify_one();
        }
        loop {
            // While a thread owns the machine state the coordinator
            // cannot inspect it; completion and errors always end with
            // the state parked back in the cell plus a wakeup.
            if let Some(c) = cell.as_deref() {
                if c.finished >= nthreads || c.error.is_some() {
                    break;
                }
            }
            match deadline_at {
                // With a watchdog configured, the coordinator wakes at
                // the deadline even if no simulated thread reaches a
                // scheduling point (e.g. one thread stuck in a pure
                // `work` loop): it posts the error (or raises the abort
                // flag when the state is owned by the stuck thread, which
                // then unwinds at its next instrumented call).
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        shared.abort.store(true, Ordering::SeqCst);
                        if let Some(c) = cell.as_deref_mut() {
                            if c.error.is_none() {
                                c.error = Some(SimError::Deadline {
                                    limit_ms: deadline_ms,
                                });
                            }
                        }
                        shared.wake_all();
                        break;
                    }
                    cell = shared
                        .coord
                        .wait_timeout(cell, at - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                None => {
                    cell = shared
                        .coord
                        .wait(cell)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }

    let shared =
        Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("all simulated threads joined"));
    let mut central = *shared
        .mu
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .expect("machine state parked after all threads joined");

    if let Some(err) = central.error.take() {
        return Err(err);
    }

    // End-of-run determinism checkpoint (the paper always checks at the
    // end of the program).
    central.fire_checkpoint(0, CheckpointKind::End);

    let (alloc_log, blocks, replay_misses) = central.alloc.into_parts();
    let monitor = central
        .monitor
        .into_any()
        .downcast::<M>()
        .unwrap_or_else(|_| unreachable!("monitor type preserved"));

    Ok(RunOutcome {
        monitor: *monitor,
        instr: central.threads.iter().map(|s| s.instr).collect(),
        zero_fill_instr: central.zero_fill_instr,
        output: central.output,
        decisions: central.decisions,
        decision_options: central.decision_options.unwrap_or_default(),
        steps: central.step,
        checkpoints: central.cp_seq,
        checkpoint_decision_index: central.cp_decision_index,
        alloc_log: Arc::new(alloc_log),
        lib_log: Arc::new(central.lib.into_log()),
        replay_misses,
        faults: central.faults.map_or_else(Vec::new, FaultState::into_log),
        trace: central.trace,
        mem: central.mem,
        globals: central.globals,
        blocks,
    })
}
