//! The execution engine: serialized cooperative scheduling of simulated
//! threads over the shared machine state.
//!
//! Each simulated thread is an OS thread, but exactly one of them owns the
//! *token* (`Central::active`) at any time, so execution is serialized and
//! fully determined by the scheduler's decisions. Threads hand the token
//! over at scheduling points (synchronization operations, and data
//! accesses when the [`SwitchPolicy`](crate::SwitchPolicy) says so).

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::Instant;

use crate::alloc::{AllocLog, Allocator, BlockInfo};
use crate::error::SimError;
use crate::faults::{FaultKind, FaultPlan, FaultRecord, FaultState};
use crate::libcalls::{LibCalls, LibLog};
use crate::mem::Memory;
use crate::monitor::{CheckpointInfo, CheckpointKind, Monitor, StateView};
use crate::program::{GlobalDecl, Program, RunConfig};
use crate::sched::{Scheduler, SwitchPolicy};
use crate::trace::{Trace, TraceOp};
use crate::types::{Addr, BarrierId, CondId, LockId, RwLockId, SemId, ThreadId, TypeTag, ValKind};

/// Instruction-cost model (in simulated instructions).
const COST_ACCESS: u64 = 1;
const COST_SYNC: u64 = 1;
const COST_MALLOC: u64 = 10;
const COST_FREE: u64 = 10;
const COST_LIB: u64 = 5;

/// Even under `SwitchPolicy::SyncOnly`, force a scheduling point every
/// this many consecutive data accesses by one thread, so spin loops over
/// plain loads cannot monopolize the token forever.
const FORCED_PREEMPT_EVERY: u64 = 4096;

/// Panic payload used to silently unwind simulated threads when the run
/// aborts (deadlock, step limit, machine misuse).
struct SimAbort;

/// Installs (once per process) a panic hook that suppresses the default
/// message for [`SimAbort`] unwinds while delegating everything else.
fn install_quiet_abort_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SimAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Object-safe wrapper that lets the engine hold any monitor type and
/// still return the concrete value to the caller.
trait AnyMonitor: Monitor {
    fn as_monitor(&mut self) -> &mut dyn Monitor;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<M: Monitor + 'static> AnyMonitor for M {
    fn as_monitor(&mut self) -> &mut dyn Monitor {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    BlockedLock(LockId),
    BlockedBarrier(BarrierId),
    BlockedCond(CondId),
    BlockedRwRead(RwLockId),
    BlockedRwWrite(RwLockId),
    BlockedSem(SemId),
    Finished,
}

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<ThreadId>,
}

#[derive(Debug)]
struct BarrierState {
    parties: usize,
    arrived: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct RwState {
    writer: Option<ThreadId>,
    readers: Vec<ThreadId>,
}

#[derive(Debug)]
struct SemState {
    count: u64,
}

/// All mutable machine state, protected by one mutex.
struct Central {
    mem: Memory,
    globals: Vec<GlobalDecl>,
    alloc: Allocator,
    locks: Vec<LockState>,
    rwlocks: Vec<RwState>,
    sems: Vec<SemState>,
    barriers: Vec<BarrierState>,
    states: Vec<TState>,
    active: Option<ThreadId>,
    scheduler: Box<dyn Scheduler + Send>,
    switch: SwitchPolicy,
    monitor: Box<dyn AnyMonitor + Send>,
    instr: Vec<u64>,
    zero_fill_instr: u64,
    charge_zero_fill: bool,
    lib: LibCalls,
    output: Vec<u8>,
    trace: Option<Trace>,
    decisions: Vec<u32>,
    decision_options: Option<Vec<Vec<u32>>>,
    step: u64,
    max_steps: u64,
    faults: Option<FaultState>,
    deadline_at: Option<Instant>,
    deadline_ms: u64,
    access_count: Vec<u64>,
    cp_seq: u64,
    cp_decision_index: Vec<usize>,
    error: Option<SimError>,
    finished: usize,
    nthreads: usize,
    sink: Option<Arc<dyn obs::EventSink>>,
}

impl Central {
    fn trace_push(&mut self, tid: ThreadId, op: TraceOp) {
        if let Some(t) = &mut self.trace {
            t.push(tid, op);
        }
    }

    /// Emits one observability event, building it lazily so a run
    /// without a sink pays only this `Option` check.
    fn obs_emit(&self, make: impl FnOnce(u64) -> obs::Event) {
        if let Some(sink) = &self.sink {
            sink.record(make(self.step));
        }
    }

    /// Emits a fault-injection event.
    fn obs_fault(&self, tid: ThreadId, kind: FaultKind) {
        self.obs_emit(|step| {
            obs::Event::instant(step, tid as u32, "fault")
                .with_arg("tid", tid as u32)
                .with_arg("kind", kind.label())
        });
    }

    fn fire_checkpoint(&mut self, tid: ThreadId, kind: CheckpointKind) {
        let seq = self.cp_seq;
        self.cp_seq += 1;
        self.cp_decision_index.push(self.decisions.len());
        self.trace_push(tid, TraceOp::Checkpoint { seq });
        self.obs_emit(|step| {
            let (kind_str, label) = match kind {
                CheckpointKind::Barrier(_) => ("barrier", None),
                CheckpointKind::Manual(l) => ("manual", Some(l)),
                CheckpointKind::End => ("end", None),
            };
            let ev = obs::Event::instant(step, tid as u32, "checkpoint")
                .with_arg("seq", seq)
                .with_arg("kind", kind_str);
            match label {
                Some(l) => ev.with_arg("label", l),
                None => ev,
            }
        });
        let Central {
            mem,
            globals,
            alloc,
            monitor,
            ..
        } = self;
        let view = StateView::new(mem, globals, alloc.table());
        monitor
            .as_monitor()
            .on_checkpoint(&CheckpointInfo { seq, kind }, &view);
    }

    fn runnable(&self) -> Vec<ThreadId> {
        (0..self.nthreads)
            .filter(|&t| self.states[t] == TState::Ready)
            .collect()
    }

    fn deadlock_detail(&self) -> String {
        let mut parts = Vec::new();
        for (t, s) in self.states.iter().enumerate() {
            let what = match s {
                TState::Ready => continue,
                TState::BlockedLock(l) => format!("thread {t} waits on lock {}", l.index()),
                TState::BlockedBarrier(b) => {
                    format!("thread {t} waits at barrier {}", b.index())
                }
                TState::BlockedCond(c) => {
                    format!("thread {t} waits on condvar {}", c.0)
                }
                TState::BlockedRwRead(l) => {
                    format!("thread {t} waits to read-lock rwlock {}", l.index())
                }
                TState::BlockedRwWrite(l) => {
                    format!("thread {t} waits to write-lock rwlock {}", l.index())
                }
                TState::BlockedSem(sem) => {
                    format!("thread {t} waits on semaphore {}", sem.index())
                }
                TState::Finished => continue,
            };
            parts.push(what);
        }
        if parts.is_empty() {
            "no runnable threads".to_owned()
        } else {
            parts.join("; ")
        }
    }
}

struct Shared {
    mu: Mutex<Central>,
    cv: Condvar,
}

fn lock_central(shared: &Shared) -> MutexGuard<'_, Central> {
    shared.mu.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Picks the next thread to run (or detects completion/deadlock).
/// Expects `central.active == None`.
///
/// `avoid` excludes a thread from consideration when at least one other
/// thread is runnable — used by the forced-preemption backstop so that a
/// thread spinning on plain loads cannot be handed the token straight
/// back regardless of the scheduler policy.
fn schedule_next_avoiding(c: &mut Central, cv: &Condvar, avoid: Option<ThreadId>) {
    let mut runnable = c.runnable();
    if let Some(avoid) = avoid {
        if runnable.len() > 1 {
            runnable.retain(|&t| t != avoid);
        }
    }
    if runnable.is_empty() {
        if c.finished < c.nthreads && c.error.is_none() {
            c.error = Some(SimError::Deadlock {
                detail: c.deadlock_detail(),
            });
        }
    } else {
        let idx = c.scheduler.pick(&runnable, c.step).min(runnable.len() - 1);
        let next = runnable[idx];
        c.decisions.push(next as u32);
        if let Some(opts) = &mut c.decision_options {
            opts.push(runnable.iter().map(|&t| t as u32).collect());
        }
        c.active = Some(next);
        c.obs_emit(|step| {
            obs::Event::instant(step, next as u32, "sched")
                .with_arg("tid", next as u32)
                .with_arg("runnable", runnable.len())
        });
    }
    cv.notify_all();
}

fn schedule_next(c: &mut Central, cv: &Condvar) {
    schedule_next_avoiding(c, cv, None)
}

/// The per-thread instrumented API that workload bodies are written
/// against — the simulator's equivalent of the instruction stream Pin
/// instruments in the paper.
///
/// All shared-memory traffic, synchronization, allocation, library calls
/// and output of the program under test must go through this context; the
/// run's [`Monitor`] observes it and the scheduler interleaves it.
///
/// Methods abort the whole run (by unwinding this thread) on machine
/// misuse; the run then returns the corresponding [`SimError`].
pub struct ThreadCtx {
    tid: ThreadId,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx").field("tid", &self.tid).finish()
    }
}

impl ThreadCtx {
    /// This thread's id (0-based, dense).
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Number of threads in the program.
    pub fn nthreads(&self) -> usize {
        lock_central(&self.shared).nthreads
    }

    fn guard(&self) -> MutexGuard<'_, Central> {
        let c = lock_central(&self.shared);
        if c.error.is_some() {
            drop(c);
            panic::panic_any(SimAbort);
        }
        debug_assert_eq!(c.active, Some(self.tid), "token protocol violated");
        c
    }

    fn fail(&self, mut c: MutexGuard<'_, Central>, err: SimError) -> ! {
        if c.error.is_none() {
            c.error = Some(err);
        }
        self.shared.cv.notify_all();
        drop(c);
        panic::panic_any(SimAbort)
    }

    /// Blocks until this thread is scheduled again (or the run aborts).
    fn wait_for_turn<'a>(&self, mut c: MutexGuard<'a, Central>) -> MutexGuard<'a, Central> {
        loop {
            if c.error.is_some() {
                drop(c);
                panic::panic_any(SimAbort);
            }
            if c.active == Some(self.tid) && c.states[self.tid] == TState::Ready {
                return c;
            }
            c = self
                .shared
                .cv
                .wait(c)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A scheduling point: record our new state, give up the token, let
    /// the scheduler pick, and wait until it is our turn again.
    fn reschedule<'a>(
        &self,
        c: MutexGuard<'a, Central>,
        new_state: TState,
    ) -> MutexGuard<'a, Central> {
        self.reschedule_avoiding(c, new_state, false)
    }

    fn reschedule_avoiding<'a>(
        &self,
        mut c: MutexGuard<'a, Central>,
        new_state: TState,
        avoid_self: bool,
    ) -> MutexGuard<'a, Central> {
        c.step += 1;
        if c.step > c.max_steps && c.error.is_none() {
            let limit = c.max_steps;
            self.fail(c, SimError::StepLimit { limit });
        }
        if let Some(at) = c.deadline_at {
            // The watchdog: every scheduling point checks the wall
            // clock, so even a spin livelock over plain loads (which
            // reaches here via the forced-preemption backstop) is
            // caught without waiting for the much larger step limit.
            if Instant::now() >= at && c.error.is_none() {
                let limit_ms = c.deadline_ms;
                self.fail(c, SimError::Deadline { limit_ms });
            }
        }
        c.states[self.tid] = new_state;
        c.active = None;
        let avoid = avoid_self.then_some(self.tid);
        schedule_next_avoiding(&mut c, &self.shared.cv, avoid);
        self.wait_for_turn(c)
    }

    fn access_preempt(&self, mut c: MutexGuard<'_, Central>) {
        let tid = self.tid;
        c.access_count[tid] += 1;
        let count = c.access_count[tid];
        let forced = count.is_multiple_of(FORCED_PREEMPT_EVERY);
        if forced {
            let c = self.reschedule_avoiding(c, TState::Ready, true);
            drop(c);
        } else if c.switch.preempt_on_access(count) {
            let c = self.reschedule(c, TState::Ready);
            drop(c);
        }
    }

    // ---- data accesses -------------------------------------------------

    fn load_kind(&mut self, addr: Addr, kind: ValKind) -> u64 {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_ACCESS;
        let Some(value) = c.mem.read(addr) else {
            self.fail(c, SimError::BadAddress { tid, addr });
        };
        c.monitor.as_monitor().on_load(tid, addr, value, kind);
        c.trace_push(tid, TraceOp::Load(addr));
        self.access_preempt(c);
        value
    }

    fn store_kind(&mut self, addr: Addr, mut value: u64, kind: ValKind) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_ACCESS;
        if let Some(f) = &mut c.faults {
            // Data corruption: the value actually written (and seen by
            // both memory and the monitor) has one bit flipped.
            if let Some(e) = f.fire(FaultKind::BitFlip, tid) {
                value ^= 1 << (e % 64);
                c.obs_fault(tid, FaultKind::BitFlip);
            }
        }
        let Some(mut old) = c.mem.write(addr, value) else {
            self.fail(c, SimError::BadAddress { tid, addr });
        };
        if let Some(f) = &mut c.faults {
            // The §4.1 SW-Inc hazard: the monitor's read of the old
            // value races the store and observes a wrong (stale) word,
            // so it subtracts the wrong term from the hash. Memory
            // itself is untouched — only the monitor is lied to.
            if let Some(e) = f.fire(FaultKind::StaleRead, tid) {
                old ^= 1 << (e % 64);
                c.obs_fault(tid, FaultKind::StaleRead);
            }
        }
        c.monitor.as_monitor().on_store(tid, addr, old, value, kind);
        c.trace_push(tid, TraceOp::Store(addr));
        self.access_preempt(c);
    }

    /// Loads an integer/pointer word.
    pub fn load(&mut self, addr: Addr) -> u64 {
        self.load_kind(addr, ValKind::U64)
    }

    /// Stores an integer/pointer word.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.store_kind(addr, value, ValKind::U64)
    }

    /// Loads an `f64` (stored as its bit pattern).
    pub fn load_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.load_kind(addr, ValKind::F64))
    }

    /// Stores an `f64` — an *FP store*, which the checker may round off
    /// before hashing.
    pub fn store_f64(&mut self, addr: Addr, value: f64) {
        self.store_kind(addr, value.to_bits(), ValKind::F64)
    }

    /// Atomic fetch-add on an integer word; returns the previous value.
    /// A synchronization (scheduling) point.
    pub fn fetch_add(&mut self, addr: Addr, delta: u64) -> u64 {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += 2 * COST_ACCESS;
        let Some(old) = c.mem.read(addr) else {
            self.fail(c, SimError::BadAddress { tid, addr });
        };
        let new = old.wrapping_add(delta);
        c.mem.write(addr, new);
        c.monitor
            .as_monitor()
            .on_store(tid, addr, old, new, ValKind::U64);
        c.trace_push(tid, TraceOp::Rmw(addr));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
        old
    }

    /// Atomic compare-and-swap; returns the previous value (the swap
    /// happened iff it equals `expected`). A scheduling point.
    pub fn compare_and_swap(&mut self, addr: Addr, expected: u64, new: u64) -> u64 {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += 2 * COST_ACCESS;
        let Some(old) = c.mem.read(addr) else {
            self.fail(c, SimError::BadAddress { tid, addr });
        };
        if old == expected {
            c.mem.write(addr, new);
            c.monitor
                .as_monitor()
                .on_store(tid, addr, old, new, ValKind::U64);
        }
        c.trace_push(tid, TraceOp::Rmw(addr));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
        old
    }

    // ---- synchronization -----------------------------------------------

    /// Acquires a mutex, blocking while it is held by another thread.
    ///
    /// The simulated mutexes are non-reentrant; re-acquiring aborts the
    /// run with [`SimError::RelockHeld`].
    pub fn lock(&mut self, l: LockId) {
        loop {
            let mut c = self.guard();
            let tid = self.tid;
            c.instr[tid] += COST_SYNC;
            match c.locks[l.0].held_by {
                None => {
                    c.locks[l.0].held_by = Some(tid);
                    c.trace_push(tid, TraceOp::Lock(l));
                    let c = self.reschedule(c, TState::Ready);
                    drop(c);
                    return;
                }
                Some(holder) if holder == tid => {
                    self.fail(c, SimError::RelockHeld { tid, lock: l });
                }
                Some(_) => {
                    let c = self.reschedule(c, TState::BlockedLock(l));
                    drop(c);
                }
            }
        }
    }

    /// Releases a mutex this thread holds.
    pub fn unlock(&mut self, l: LockId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        if c.locks[l.0].held_by != Some(tid) {
            self.fail(c, SimError::UnlockNotHeld { tid, lock: l });
        }
        c.locks[l.0].held_by = None;
        if !self.wake_dropped(&mut c) {
            for t in 0..c.nthreads {
                if c.states[t] == TState::BlockedLock(l) {
                    c.states[t] = TState::Ready;
                }
            }
        }
        c.trace_push(tid, TraceOp::Unlock(l));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    /// Registers a wake operation with the fault plan; `true` means an
    /// injected [`FaultKind::WakeDrop`] swallows this wake (the classic
    /// lost-wakeup bug — the woken state change simply does not happen).
    fn wake_dropped(&self, c: &mut Central) -> bool {
        let tid = self.tid;
        let dropped = match &mut c.faults {
            Some(f) => f.fire(FaultKind::WakeDrop, tid).is_some(),
            None => false,
        };
        if dropped {
            c.obs_fault(tid, FaultKind::WakeDrop);
        }
        dropped
    }

    /// Arrives at a pthread-style barrier; blocks until all parties have
    /// arrived. The last arrival fires a determinism checkpoint — the
    /// paper checks at every dynamic `pthread_barrier_wait`.
    pub fn barrier(&mut self, b: BarrierId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        c.trace_push(tid, TraceOp::BarrierArrive(b));
        c.barriers[b.0].arrived.push(tid);
        if c.barriers[b.0].arrived.len() == c.barriers[b.0].parties {
            let arrived = std::mem::take(&mut c.barriers[b.0].arrived);
            for &t in &arrived {
                c.states[t] = TState::Ready;
            }
            c.trace_push(tid, TraceOp::BarrierRelease(b));
            c.fire_checkpoint(tid, CheckpointKind::Barrier(b));
            let c = self.reschedule(c, TState::Ready);
            drop(c);
        } else {
            let c = self.reschedule(c, TState::BlockedBarrier(b));
            drop(c);
        }
    }

    /// Waits on a condition variable, releasing `l` while waiting and
    /// re-acquiring it before returning.
    ///
    /// Spurious wakeups are possible (as with pthreads): always call in a
    /// predicate loop.
    pub fn cond_wait(&mut self, cond: CondId, l: LockId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        if c.locks[l.0].held_by != Some(tid) {
            self.fail(c, SimError::UnlockNotHeld { tid, lock: l });
        }
        c.locks[l.0].held_by = None;
        for t in 0..c.nthreads {
            if c.states[t] == TState::BlockedLock(l) {
                c.states[t] = TState::Ready;
            }
        }
        c.trace_push(tid, TraceOp::CondWait(cond, l));
        let c = self.reschedule(c, TState::BlockedCond(cond));
        drop(c);
        self.lock(l);
    }

    /// Wakes one thread waiting on `cond` (the lowest-id waiter).
    pub fn cond_signal(&mut self, cond: CondId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        if !self.wake_dropped(&mut c) {
            if let Some(t) = (0..c.nthreads).find(|&t| c.states[t] == TState::BlockedCond(cond)) {
                c.states[t] = TState::Ready;
            }
        }
        c.trace_push(tid, TraceOp::CondSignal(cond));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    /// Wakes every thread waiting on `cond`.
    pub fn cond_broadcast(&mut self, cond: CondId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        if !self.wake_dropped(&mut c) {
            for t in 0..c.nthreads {
                if c.states[t] == TState::BlockedCond(cond) {
                    c.states[t] = TState::Ready;
                }
            }
        }
        c.trace_push(tid, TraceOp::CondBroadcast(cond));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    /// Voluntarily yields the token (a scheduling point with no effect).
    pub fn sched_yield(&mut self) {
        let c = self.guard();
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    // ---- reader-writer locks and semaphores ------------------------------

    /// Acquires a reader-writer lock in shared (read) mode; blocks while
    /// a writer holds it.
    pub fn read_lock(&mut self, l: RwLockId) {
        loop {
            let mut c = self.guard();
            let tid = self.tid;
            c.instr[tid] += COST_SYNC;
            if c.rwlocks[l.0].writer.is_none() {
                c.rwlocks[l.0].readers.push(tid);
                c.trace_push(tid, TraceOp::RwReadLock(l));
                let c = self.reschedule(c, TState::Ready);
                drop(c);
                return;
            }
            let c = self.reschedule(c, TState::BlockedRwRead(l));
            drop(c);
        }
    }

    /// Releases a shared (read) hold.
    pub fn read_unlock(&mut self, l: RwLockId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        let Some(pos) = c.rwlocks[l.0].readers.iter().position(|&t| t == tid) else {
            self.fail(
                c,
                SimError::RwUnlockNotHeld {
                    tid,
                    rwlock: l.0,
                    write: false,
                },
            );
        };
        c.rwlocks[l.0].readers.swap_remove(pos);
        if c.rwlocks[l.0].readers.is_empty() {
            // A waiting writer may proceed.
            for t in 0..c.nthreads {
                if c.states[t] == TState::BlockedRwWrite(l) {
                    c.states[t] = TState::Ready;
                }
            }
        }
        c.trace_push(tid, TraceOp::RwReadUnlock(l));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    /// Acquires a reader-writer lock in exclusive (write) mode; blocks
    /// while any reader or another writer holds it.
    pub fn write_lock(&mut self, l: RwLockId) {
        loop {
            let mut c = self.guard();
            let tid = self.tid;
            c.instr[tid] += COST_SYNC;
            let st = &mut c.rwlocks[l.0];
            if st.writer.is_none() && st.readers.is_empty() {
                st.writer = Some(tid);
                c.trace_push(tid, TraceOp::RwWriteLock(l));
                let c = self.reschedule(c, TState::Ready);
                drop(c);
                return;
            }
            let c = self.reschedule(c, TState::BlockedRwWrite(l));
            drop(c);
        }
    }

    /// Releases an exclusive (write) hold.
    pub fn write_unlock(&mut self, l: RwLockId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        if c.rwlocks[l.0].writer != Some(tid) {
            self.fail(
                c,
                SimError::RwUnlockNotHeld {
                    tid,
                    rwlock: l.0,
                    write: true,
                },
            );
        }
        c.rwlocks[l.0].writer = None;
        for t in 0..c.nthreads {
            if c.states[t] == TState::BlockedRwRead(l) || c.states[t] == TState::BlockedRwWrite(l) {
                c.states[t] = TState::Ready;
            }
        }
        c.trace_push(tid, TraceOp::RwWriteUnlock(l));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    /// Semaphore wait (P): blocks until the count is positive, then
    /// decrements it.
    pub fn sem_wait(&mut self, sem: SemId) {
        loop {
            let mut c = self.guard();
            let tid = self.tid;
            c.instr[tid] += COST_SYNC;
            if c.sems[sem.0].count > 0 {
                c.sems[sem.0].count -= 1;
                c.trace_push(tid, TraceOp::SemWait(sem));
                let c = self.reschedule(c, TState::Ready);
                drop(c);
                return;
            }
            let c = self.reschedule(c, TState::BlockedSem(sem));
            drop(c);
        }
    }

    /// Semaphore post (V): increments the count and wakes waiters.
    pub fn sem_post(&mut self, sem: SemId) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        c.sems[sem.0].count += 1;
        if !self.wake_dropped(&mut c) {
            for t in 0..c.nthreads {
                if c.states[t] == TState::BlockedSem(sem) {
                    c.states[t] = TState::Ready;
                }
            }
        }
        c.trace_push(tid, TraceOp::SemPost(sem));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    // ---- heap ------------------------------------------------------------

    /// Allocates `len` zero-filled words at allocation site `site` with
    /// per-word type layout `tag`. A scheduling point (the allocator is
    /// shared state).
    pub fn malloc(&mut self, site: &'static str, tag: TypeTag, len: usize) -> Addr {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_MALLOC;
        if let Some(f) = &mut c.faults {
            if f.fire(FaultKind::AllocFail, tid).is_some() {
                c.obs_fault(tid, FaultKind::AllocFail);
                self.fail(c, SimError::AllocFailed { tid, site });
            }
        }
        let base = c.alloc.alloc(tid, site, tag, len);
        let high = c.alloc.high_water();
        c.mem.grow_heap(high);
        let len = c.alloc.table()[&base.0].len;
        for i in 0..len {
            c.mem.write(base.offset(i as u64), 0);
        }
        if c.charge_zero_fill {
            c.zero_fill_instr += len as u64;
        }
        let block = c.alloc.table()[&base.0].clone();
        c.monitor.as_monitor().on_alloc(tid, &block);
        c.trace_push(tid, TraceOp::Alloc { base, len });
        c.obs_emit(|step| {
            obs::Event::instant(step, tid as u32, "alloc")
                .with_arg("base", base.0)
                .with_arg("words", len)
        });
        let c = self.reschedule(c, TState::Ready);
        drop(c);
        base
    }

    /// Frees the block at `addr`. Aborts the run with
    /// [`SimError::BadFree`] if `addr` is not the base of a live block.
    /// A scheduling point.
    pub fn free(&mut self, addr: Addr) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_FREE;
        let Some(block) = c.alloc.free(addr) else {
            self.fail(c, SimError::BadFree { tid, addr });
        };
        let contents: Vec<u64> = block.iter().map(|a| c.mem.read(a).unwrap_or(0)).collect();
        c.monitor.as_monitor().on_free(tid, &block, &contents);
        c.trace_push(tid, TraceOp::Free { base: addr });
        c.obs_emit(|step| obs::Event::instant(step, tid as u32, "free").with_arg("base", addr.0));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    // ---- library calls, output, accounting -------------------------------

    /// Simulated nondeterministic `rand()` (controlled by the run's
    /// library seed / replay log).
    pub fn rand_u64(&mut self) -> u64 {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_LIB;
        let v = c.lib.rand_u64(tid);
        self.lib_perturb(&mut c, v)
    }

    /// Simulated `gettimeofday()` (controlled like [`rand_u64`]).
    ///
    /// [`rand_u64`]: ThreadCtx::rand_u64
    pub fn gettimeofday(&mut self) -> u64 {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_LIB;
        let v = c.lib.gettimeofday(tid);
        self.lib_perturb(&mut c, v)
    }

    /// Applies an injected [`FaultKind::LibPerturb`] fault to a library
    /// call's result (environment nondeterminism beyond the seeded
    /// stream, e.g. an NTP step under `gettimeofday`).
    fn lib_perturb(&self, c: &mut Central, v: u64) -> u64 {
        let tid = self.tid;
        let perturbed = match &mut c.faults {
            Some(f) => f.fire(FaultKind::LibPerturb, tid),
            None => None,
        };
        match perturbed {
            Some(e) => {
                c.obs_fault(tid, FaultKind::LibPerturb);
                v ^ e
            }
            None => v,
        }
    }

    /// Appends bytes to the program's output stream (the simulated
    /// `write()`); a scheduling point.
    pub fn write_output(&mut self, bytes: &[u8]) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC + bytes.len() as u64 / 8;
        c.output.extend_from_slice(bytes);
        c.monitor.as_monitor().on_output(tid, bytes);
        c.trace_push(tid, TraceOp::Output { len: bytes.len() });
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    /// Accounts `n` instructions of thread-local computation (work that
    /// does not touch shared memory).
    pub fn work(&mut self, n: u64) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += n;
    }

    /// Fires a manual determinism checkpoint (the paper's
    /// programmer-specified checking points). A scheduling point.
    pub fn checkpoint(&mut self, label: &'static str) {
        let mut c = self.guard();
        let tid = self.tid;
        c.instr[tid] += COST_SYNC;
        c.fire_checkpoint(tid, CheckpointKind::Manual(label));
        let c = self.reschedule(c, TState::Ready);
        drop(c);
    }

    fn wait_first_turn(&self) {
        let c = lock_central(&self.shared);
        let c = self.wait_for_turn(c);
        drop(c);
    }
}

/// Single-threaded setup context: establishes the program's fixed input
/// state before the threads start. No scheduling is involved; effects are
/// still visible to the [`Monitor`] (attributed to thread 0) so that the
/// identical input contributes identically to every run.
pub struct SetupCtx<'a> {
    c: &'a mut Central,
}

impl std::fmt::Debug for SetupCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetupCtx").finish_non_exhaustive()
    }
}

impl SetupCtx<'_> {
    /// Stores an integer word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped (setup bugs are programming errors).
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.c.instr[0] += COST_ACCESS;
        let old = self
            .c
            .mem
            .write(addr, value)
            .expect("setup store to unmapped address");
        self.c
            .monitor
            .as_monitor()
            .on_store(0, addr, old, value, ValKind::U64);
    }

    /// Stores an `f64` word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    pub fn store_f64(&mut self, addr: Addr, value: f64) {
        self.c.instr[0] += COST_ACCESS;
        let old = self
            .c
            .mem
            .write(addr, value.to_bits())
            .expect("setup store to unmapped address");
        self.c
            .monitor
            .as_monitor()
            .on_store(0, addr, old, value.to_bits(), ValKind::F64);
    }

    /// Loads a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    pub fn load(&mut self, addr: Addr) -> u64 {
        self.c
            .mem
            .read(addr)
            .expect("setup load from unmapped address")
    }

    /// Allocates `len` zero-filled words (setup allocations model the
    /// input data of the program).
    pub fn malloc(&mut self, site: &'static str, tag: TypeTag, len: usize) -> Addr {
        self.c.instr[0] += COST_MALLOC;
        let base = self.c.alloc.alloc(0, site, tag, len);
        let high = self.c.alloc.high_water();
        self.c.mem.grow_heap(high);
        let len = self.c.alloc.table()[&base.0].len;
        for i in 0..len {
            self.c.mem.write(base.offset(i as u64), 0);
        }
        if self.c.charge_zero_fill {
            self.c.zero_fill_instr += len as u64;
        }
        let block = self.c.alloc.table()[&base.0].clone();
        self.c.monitor.as_monitor().on_alloc(0, &block);
        base
    }

    /// A deterministic pseudo-random stream for building input data
    /// (fixed across runs; not a simulated nondeterministic library call).
    pub fn input_rand(&mut self, key: u64) -> u64 {
        let mut x = key ^ 0x5bf0_3635_16f5_0e5b;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// The result of one simulated run.
///
/// Carries the monitor back to the caller together with the run's
/// accounting, logs, optional trace, and a view of the final state.
pub struct RunOutcome<M> {
    /// The monitor that observed the run.
    pub monitor: M,
    /// Native instructions executed, per thread (the Figure 6 baseline).
    pub instr: Vec<u64>,
    /// Instructions spent zero-filling allocations, charged only when
    /// [`RunConfig::charge_zero_fill`](crate::RunConfig) is set — the
    /// paper's HW-InstantCheck overhead.
    pub zero_fill_instr: u64,
    /// The program's output stream.
    pub output: Vec<u8>,
    /// The scheduler decisions taken (thread id per scheduling point);
    /// feed into a [`ScriptedScheduler`](crate::ScriptedScheduler) to
    /// replay the interleaving.
    pub decisions: Vec<u32>,
    /// The runnable set at every decision (recorded only when
    /// [`RunConfig::record_options`](crate::RunConfig) is set; empty
    /// otherwise).
    pub decision_options: Vec<Vec<u32>>,
    /// Total scheduling steps.
    pub steps: u64,
    /// Number of checkpoints fired (including the final `End`).
    pub checkpoints: u64,
    /// For each checkpoint (in firing order), how many scheduler
    /// decisions had been taken when it fired — lets systematic
    /// exploration align decision prefixes with checkpoint boundaries.
    pub checkpoint_decision_index: Vec<usize>,
    /// Allocator address log (for cross-run replay).
    pub alloc_log: Arc<AllocLog>,
    /// Library-call log (for cross-run replay).
    pub lib_log: Arc<LibLog>,
    /// Replayed allocations that fell back to fresh memory.
    pub replay_misses: u64,
    /// Every fault the run's [`FaultPlan`](crate::FaultPlan) injected,
    /// in firing order. Empty when no plan was configured. Part of the
    /// reproducibility contract: equal (fault seed, run config) pairs
    /// produce equal logs.
    pub faults: Vec<FaultRecord>,
    /// The recorded trace, if requested.
    pub trace: Option<Trace>,
    mem: Memory,
    globals: Vec<GlobalDecl>,
    blocks: BTreeMap<u64, BlockInfo>,
}

impl<M> std::fmt::Debug for RunOutcome<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOutcome")
            .field("steps", &self.steps)
            .field("checkpoints", &self.checkpoints)
            .field("instructions", &self.total_instructions())
            .finish_non_exhaustive()
    }
}

impl<M> RunOutcome<M> {
    /// Reads one word of the final memory, or `None` if unmapped.
    pub fn final_word(&self, addr: Addr) -> Option<u64> {
        self.mem.read(addr)
    }

    /// Reads one `f64` of the final memory.
    pub fn final_f64(&self, addr: Addr) -> Option<f64> {
        self.mem.read(addr).map(f64::from_bits)
    }

    /// A view of the final live state (globals + live heap blocks).
    pub fn final_state(&self) -> StateView<'_> {
        StateView::new(&self.mem, &self.globals, &self.blocks)
    }

    /// Total native instructions across all threads (excluding monitor
    /// overhead and zero-fill).
    pub fn total_instructions(&self) -> u64 {
        self.instr.iter().sum()
    }
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn thread_main(shared: Arc<Shared>, tid: ThreadId, body: Box<dyn FnOnce(&mut ThreadCtx) + Send>) {
    let ctx_shared = shared.clone();
    let result = panic::catch_unwind(AssertUnwindSafe(move || {
        let mut ctx = ThreadCtx {
            tid,
            shared: ctx_shared,
        };
        ctx.wait_first_turn();
        body(&mut ctx);
    }));
    let mut c = lock_central(&shared);
    if let Err(payload) = result {
        if !payload.is::<SimAbort>() && c.error.is_none() {
            c.error = Some(SimError::ThreadPanic {
                tid,
                message: payload_message(payload.as_ref()),
            });
        }
    }
    if c.states[tid] != TState::Finished {
        c.states[tid] = TState::Finished;
        c.finished += 1;
    }
    if c.active == Some(tid) {
        c.active = None;
    }
    if c.error.is_none() && c.active.is_none() {
        schedule_next(&mut c, &shared.cv);
    } else {
        shared.cv.notify_all();
    }
}

/// Runs `prog` under `config` with `monitor` observing.
pub(crate) fn run<M: Monitor + 'static>(
    prog: Program,
    config: &RunConfig,
    monitor: M,
) -> Result<RunOutcome<M>, SimError> {
    install_quiet_abort_hook();
    let nthreads = prog.nthreads;
    let mut scheduler = config.scheduler.build();
    scheduler.init(nthreads);

    let mut central = Central {
        mem: Memory::new(prog.global_words),
        globals: prog.globals,
        alloc: Allocator::new(nthreads, config.alloc_replay.clone()),
        locks: (0..prog.locks).map(|_| LockState::default()).collect(),
        rwlocks: (0..prog.rwlocks).map(|_| RwState::default()).collect(),
        sems: prog.sems.iter().map(|&count| SemState { count }).collect(),
        barriers: prog
            .barriers
            .iter()
            .map(|&parties| BarrierState {
                parties,
                arrived: Vec::new(),
            })
            .collect(),
        states: vec![TState::Ready; nthreads],
        active: None,
        scheduler,
        switch: config.switch,
        monitor: Box::new(monitor),
        instr: vec![0; nthreads],
        zero_fill_instr: 0,
        charge_zero_fill: config.charge_zero_fill,
        lib: LibCalls::new(nthreads, config.lib_seed, config.lib_replay.clone()),
        output: Vec::new(),
        trace: config.record_trace.then(Trace::default),
        decisions: Vec::new(),
        decision_options: config.record_options.then(Vec::new),
        step: 0,
        max_steps: config.max_steps,
        faults: config
            .faults
            .clone()
            .filter(FaultPlan::is_active)
            .map(FaultState::new),
        deadline_at: config.deadline.map(|d| Instant::now() + d),
        deadline_ms: config.deadline.map_or(0, |d| d.as_millis() as u64),
        access_count: vec![0; nthreads],
        cp_seq: 0,
        cp_decision_index: Vec::new(),
        error: None,
        finished: 0,
        nthreads,
        // Drop disabled sinks up front so every emission site reduces
        // to a `None` check.
        sink: config.sink.clone().filter(|s| s.enabled()),
    };

    if let Some(setup) = prog.setup {
        let mut sctx = SetupCtx { c: &mut central };
        setup(&mut sctx);
    }

    let shared = Arc::new(Shared {
        mu: Mutex::new(central),
        cv: Condvar::new(),
    });

    let handles: Vec<_> = prog
        .threads
        .into_iter()
        .enumerate()
        .map(|(tid, body)| {
            let sh = shared.clone();
            thread::Builder::new()
                .name(format!("tsim-{tid}"))
                .spawn(move || thread_main(sh, tid, body))
                .expect("spawning a simulated thread")
        })
        .collect();

    {
        let mut c = lock_central(&shared);
        schedule_next(&mut c, &shared.cv);
        while c.finished < nthreads && c.error.is_none() {
            match c.deadline_at {
                // With a watchdog configured, the coordinator wakes at
                // the deadline even if no simulated thread reaches a
                // scheduling point (e.g. one thread stuck in a pure
                // `work` loop): it posts the error, and the stuck
                // thread unwinds at its next instrumented call.
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        c.error = Some(SimError::Deadline {
                            limit_ms: c.deadline_ms,
                        });
                        shared.cv.notify_all();
                        break;
                    }
                    c = shared
                        .cv
                        .wait_timeout(c, at - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                None => {
                    c = shared.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }

    let shared =
        Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("all simulated threads joined"));
    let mut central = shared
        .mu
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);

    if let Some(err) = central.error.take() {
        return Err(err);
    }

    // End-of-run determinism checkpoint (the paper always checks at the
    // end of the program).
    central.fire_checkpoint(0, CheckpointKind::End);

    let (alloc_log, blocks, replay_misses) = central.alloc.into_parts();
    let monitor = central
        .monitor
        .into_any()
        .downcast::<M>()
        .unwrap_or_else(|_| unreachable!("monitor type preserved"));

    Ok(RunOutcome {
        monitor: *monitor,
        instr: central.instr,
        zero_fill_instr: central.zero_fill_instr,
        output: central.output,
        decisions: central.decisions,
        decision_options: central.decision_options.unwrap_or_default(),
        steps: central.step,
        checkpoints: central.cp_seq,
        checkpoint_decision_index: central.cp_decision_index,
        alloc_log: Arc::new(alloc_log),
        lib_log: Arc::new(central.lib.into_log()),
        replay_misses,
        faults: central.faults.map_or_else(Vec::new, FaultState::into_log),
        trace: central.trace,
        mem: central.mem,
        globals: central.globals,
        blocks,
    })
}
