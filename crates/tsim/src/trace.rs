//! Execution traces for offline analyses (race detection, systematic
//! exploration, replay).

use crate::types::{Addr, BarrierId, CondId, LockId, RwLockId, SemId, ThreadId};

/// One operation in a recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceOp {
    /// A data load from an address.
    Load(Addr),
    /// A data store to an address.
    Store(Addr),
    /// An atomic read-modify-write on an address.
    Rmw(Addr),
    /// A lock acquisition.
    Lock(LockId),
    /// A lock release.
    Unlock(LockId),
    /// Arrival at a barrier.
    BarrierArrive(BarrierId),
    /// Release of a completed barrier (recorded once, by the last
    /// arriving thread).
    BarrierRelease(BarrierId),
    /// Start of a condition-variable wait (the paired lock is released).
    CondWait(CondId, LockId),
    /// A condition-variable signal.
    CondSignal(CondId),
    /// A condition-variable broadcast.
    CondBroadcast(CondId),
    /// A heap allocation of `len` words at `base`.
    Alloc {
        /// First word of the new block.
        base: Addr,
        /// Block length in words.
        len: usize,
    },
    /// A heap free of the block at `base`.
    Free {
        /// Base of the freed block.
        base: Addr,
    },
    /// `len` bytes written to the output stream.
    Output {
        /// Number of bytes written.
        len: usize,
    },
    /// A determinism checkpoint fired (sequence number `seq`).
    Checkpoint {
        /// Checkpoint sequence number within the run.
        seq: u64,
    },
    /// A shared (read) acquisition of a reader-writer lock.
    RwReadLock(RwLockId),
    /// A shared (read) release.
    RwReadUnlock(RwLockId),
    /// An exclusive (write) acquisition.
    RwWriteLock(RwLockId),
    /// An exclusive (write) release.
    RwWriteUnlock(RwLockId),
    /// A semaphore wait (P) that succeeded.
    SemWait(SemId),
    /// A semaphore post (V).
    SemPost(SemId),
}

/// One event in a recorded trace: which thread did what at which
/// scheduling step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The global event index (dense, 0-based).
    pub index: u64,
    /// The thread that performed the operation.
    pub tid: ThreadId,
    /// The operation.
    pub op: TraceOp,
}

/// A full recorded trace of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, tid: ThreadId, op: TraceOp) {
        let index = self.events.len() as u64;
        self.events.push(TraceEvent { index, tid, op });
    }

    /// All events in program order (the serialized execution order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over all data accesses (loads, stores, RMWs) as
    /// `(event, addr, is_write)`.
    pub fn accesses(&self) -> impl Iterator<Item = (&TraceEvent, Addr, bool)> + '_ {
        self.events.iter().filter_map(|e| match e.op {
            TraceOp::Load(a) => Some((e, a, false)),
            TraceOp::Store(a) => Some((e, a, true)),
            TraceOp::Rmw(a) => Some((e, a, true)),
            _ => None,
        })
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_dense_indices() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push(0, TraceOp::Load(Addr(1)));
        t.push(1, TraceOp::Store(Addr(2)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].index, 0);
        assert_eq!(t.events()[1].index, 1);
        assert_eq!(t.events()[1].tid, 1);
    }

    #[test]
    fn accesses_filters_data_ops() {
        let mut t = Trace::default();
        t.push(0, TraceOp::Load(Addr(1)));
        t.push(0, TraceOp::Lock(LockId(0)));
        t.push(1, TraceOp::Store(Addr(2)));
        t.push(1, TraceOp::Rmw(Addr(3)));
        let acc: Vec<_> = t.accesses().collect();
        assert_eq!(acc.len(), 3);
        assert!(!acc[0].2); // load is not a write
        assert!(acc[1].2);
        assert!(acc[2].2);
    }

    #[test]
    fn iterate_by_reference() {
        let mut t = Trace::default();
        t.push(0, TraceOp::Checkpoint { seq: 0 });
        let tids: Vec<_> = (&t).into_iter().map(|e| e.tid).collect();
        assert_eq!(tids, vec![0]);
    }
}
