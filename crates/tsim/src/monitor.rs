//! The instrumentation surface: what a checker can observe during a run.

use std::collections::BTreeMap;

use adhash::{FpRound, HashSum};

use crate::alloc::BlockInfo;
use crate::mem::Memory;
use crate::program::GlobalDecl;
use crate::types::{Addr, BarrierId, ThreadId, ValKind};

/// A monitor's claim that the engine may handle its store/load datapath
/// itself (see [`Monitor::fast_path`]).
///
/// A claiming monitor stops receiving `on_store`/`on_load`/`on_free`
/// callbacks for accesses performed by simulated threads. Instead the
/// engine maintains per-thread incremental hash sums with the default
/// [`adhash::Mix64Hasher`] (when `hashing` is set), batched and folded
/// four lanes wide, and hands the results to the monitor at every
/// checkpoint via [`StateView::engine_hashes`]. Setup-phase accesses and
/// every other callback (`on_alloc`, `on_output`, `on_checkpoint`) are
/// delivered as usual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FastPathSpec {
    /// Maintain per-thread incremental hash sums over the stores. When
    /// `false` the engine only counts (the *Native* configuration).
    pub hashing: bool,
    /// Round off FP stores (both old and new value) with this mode before
    /// hashing, exactly as the `mhm` crate's `MhmCore` would. `None`
    /// hashes FP bits
    /// exactly.
    pub rounding: Option<FpRound>,
}

/// The engine-side accumulation handed to a fast-path monitor at each
/// checkpoint (via [`StateView::engine_hashes`]).
///
/// All counters are cumulative over the run so far; a monitor reconciles
/// by differencing against the previous checkpoint's values.
#[derive(Debug, Clone, Copy)]
pub struct EngineHashes<'a> {
    /// Per-thread incremental hash sums (index = thread id). All zeros
    /// when the fast path ran with `hashing: false`.
    pub sums: &'a [HashSum],
    /// Total monitored stores performed by simulated threads so far.
    pub stores: u64,
    /// Total words of freed heap blocks whose contribution the engine
    /// cancelled out of the sums so far.
    pub freed_words: u64,
}

/// Why a determinism checkpoint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckpointKind {
    /// A pthread-style barrier completed (all parties arrived).
    Barrier(BarrierId),
    /// A workload-inserted checkpoint (the paper's "additional program
    /// points where she expects her program to be in a deterministic
    /// state", e.g. the end of a loop iteration).
    Manual(&'static str),
    /// The program finished (all threads exited).
    End,
}

/// Identification of one dynamic checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Dense per-run sequence number (checkpoint alignment key across
    /// runs).
    pub seq: u64,
    /// What triggered the checkpoint.
    pub kind: CheckpointKind,
}

/// A read-only view of the machine state, passed to monitors at
/// checkpoints.
///
/// The *live state* is exactly what the paper hashes: the static data
/// (globals) plus the heap blocks currently allocated. Freed memory is
/// not part of the state.
#[derive(Debug)]
pub struct StateView<'a> {
    mem: &'a Memory,
    globals: &'a [GlobalDecl],
    blocks: &'a BTreeMap<u64, BlockInfo>,
    engine: Option<EngineHashes<'a>>,
}

impl<'a> StateView<'a> {
    pub(crate) fn new(
        mem: &'a Memory,
        globals: &'a [GlobalDecl],
        blocks: &'a BTreeMap<u64, BlockInfo>,
    ) -> Self {
        StateView {
            mem,
            globals,
            blocks,
            engine: None,
        }
    }

    pub(crate) fn with_engine(mut self, engine: EngineHashes<'a>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// The engine-side hash accumulation, present iff the run's monitor
    /// claimed the store datapath via [`Monitor::fast_path`].
    pub fn engine_hashes(&self) -> Option<EngineHashes<'a>> {
        self.engine
    }

    /// Reads one word, or `None` if the address is unmapped.
    pub fn read(&self, addr: Addr) -> Option<u64> {
        self.mem.read(addr)
    }

    /// The declared global regions.
    pub fn globals(&self) -> &[GlobalDecl] {
        self.globals
    }

    /// Looks up a global region by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// The live heap blocks, in address order.
    pub fn blocks(&self) -> impl Iterator<Item = &BlockInfo> + '_ {
        self.blocks.values()
    }

    /// The live heap blocks allocated at `site`.
    pub fn blocks_at_site<'s>(&'s self, site: &'s str) -> impl Iterator<Item = &'a BlockInfo> + 's {
        self.blocks.values().filter(move |b| b.site == site)
    }

    /// Iterates over every live word as `(addr, value, kind)` — the
    /// traversal of the paper's `SW-InstantCheck_Tr`.
    pub fn live_words(&self) -> impl Iterator<Item = (Addr, u64, ValKind)> + '_ {
        let globals = self.globals.iter().flat_map(move |g| {
            g.region
                .iter()
                .map(move |a| (a, self.mem.read(a).unwrap_or(0), g.region.kind))
        });
        let heap = self.blocks.values().flat_map(move |b| {
            (0..b.len).map(move |i| {
                let a = b.base.offset(i as u64);
                (a, self.mem.read(a).unwrap_or(0), b.kind_at(i))
            })
        });
        globals.chain(heap)
    }

    /// Number of live words (the paper's state size; ×8 for bytes).
    pub fn live_word_count(&self) -> usize {
        self.globals.iter().map(|g| g.region.len).sum::<usize>()
            + self.blocks.values().map(|b| b.len).sum::<usize>()
    }
}

/// Observer of a simulated run — the instrumentation hook surface.
///
/// This is the role Pin instrumentation (and the modeled MHM hardware)
/// plays in the paper: it sees every store with its old and new value,
/// every allocation and free, every output byte, and every checkpoint.
/// All methods default to no-ops so a monitor implements only what it
/// needs.
///
/// Methods are invoked with the machine lock held and execution
/// serialized, so a monitor needs no internal synchronization.
#[allow(unused_variables)]
pub trait Monitor: Send {
    /// A store of `new` over `old` at `addr` by `tid`.
    ///
    /// `kind` is [`ValKind::F64`] iff the program issued an FP store —
    /// the information the paper's LLVM pass provides to the MHM.
    fn on_store(&mut self, tid: ThreadId, addr: Addr, old: u64, new: u64, kind: ValKind) {}

    /// A load of `value` from `addr` by `tid`.
    fn on_load(&mut self, tid: ThreadId, addr: Addr, value: u64, kind: ValKind) {}

    /// A new heap block was allocated (already zero-filled).
    fn on_alloc(&mut self, tid: ThreadId, block: &BlockInfo) {}

    /// A heap block was freed. `contents` holds the words of the block at
    /// free time (an incremental checker uses them to cancel the block's
    /// contribution out of the running hash).
    fn on_free(&mut self, tid: ThreadId, block: &BlockInfo, contents: &[u64]) {}

    /// Bytes appended to the program output stream.
    fn on_output(&mut self, tid: ThreadId, bytes: &[u8]) {}

    /// A determinism checkpoint: a completed barrier, a manual checkpoint,
    /// or the end of the run.
    fn on_checkpoint(&mut self, info: &CheckpointInfo, view: &StateView<'_>) {}

    /// Extra instructions this monitor's checking scheme would execute on
    /// a real machine (e.g. 5 instructions per byte hashed in software) —
    /// the Figure 6 cost model.
    fn extra_instructions(&self) -> u64 {
        0
    }

    /// Opt this monitor into the engine's monomorphic store datapath.
    ///
    /// Returning `Some(spec)` promises that `on_store`, `on_load` and
    /// `on_free` for simulated-thread accesses are redundant with the
    /// engine maintaining per-thread incremental hash sums per `spec`
    /// (delivered at checkpoints through [`StateView::engine_hashes`]).
    /// The engine then skips the virtual dispatch on every access — the
    /// hot path of the whole simulator. Monitors that need per-access
    /// callbacks (recorders, cache models) keep the default `None`.
    ///
    /// The claim is consulted once at run start; it must not change over
    /// the monitor's lifetime.
    fn fast_path(&self) -> Option<FastPathSpec> {
        None
    }
}

/// A monitor that observes nothing — the *Native* configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    fn fast_path(&self) -> Option<FastPathSpec> {
        // Nothing to observe: let the engine count stores and skip both
        // the dispatch and the hashing.
        Some(FastPathSpec {
            hashing: false,
            rounding: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::GLOBALS_BASE;
    use crate::types::{Region, TypeTag};

    fn fixture() -> (Memory, Vec<GlobalDecl>, BTreeMap<u64, BlockInfo>) {
        let mut mem = Memory::new(3);
        mem.write(Addr(GLOBALS_BASE), 10);
        mem.write(Addr(GLOBALS_BASE + 2), 30);
        let globals = vec![GlobalDecl {
            name: "g",
            region: Region {
                base: Addr(GLOBALS_BASE),
                len: 3,
                kind: ValKind::U64,
            },
        }];
        let mut blocks = BTreeMap::new();
        blocks.insert(
            crate::mem::HEAP_BASE,
            BlockInfo {
                base: Addr(crate::mem::HEAP_BASE),
                len: 2,
                site: "buf",
                tag: TypeTag::f64s(),
                tid: 0,
                seq: 0,
            },
        );
        mem.grow_heap(2);
        mem.write(Addr(crate::mem::HEAP_BASE + 1), 7);
        (mem, globals, blocks)
    }

    #[test]
    fn live_words_covers_globals_and_heap() {
        let (mem, globals, blocks) = fixture();
        let view = StateView::new(&mem, &globals, &blocks);
        let words: Vec<_> = view.live_words().collect();
        assert_eq!(words.len(), 5);
        assert_eq!(view.live_word_count(), 5);
        assert_eq!(words[0], (Addr(GLOBALS_BASE), 10, ValKind::U64));
        assert_eq!(words[4], (Addr(crate::mem::HEAP_BASE + 1), 7, ValKind::F64));
    }

    #[test]
    fn lookup_helpers() {
        let (mem, globals, blocks) = fixture();
        let view = StateView::new(&mem, &globals, &blocks);
        assert!(view.global("g").is_some());
        assert!(view.global("nope").is_none());
        assert_eq!(view.blocks().count(), 1);
        assert_eq!(view.blocks_at_site("buf").count(), 1);
        assert_eq!(view.blocks_at_site("other").count(), 0);
        assert_eq!(view.read(Addr(GLOBALS_BASE + 2)), Some(30));
        assert_eq!(view.read(Addr(5)), None);
    }

    #[test]
    fn null_monitor_is_free() {
        let (mem, globals, blocks) = fixture();
        let view = StateView::new(&mem, &globals, &blocks);
        let mut m = NullMonitor;
        m.on_store(0, Addr(GLOBALS_BASE), 0, 1, ValKind::U64);
        m.on_checkpoint(
            &CheckpointInfo {
                seq: 0,
                kind: CheckpointKind::End,
            },
            &view,
        );
        assert_eq!(m.extra_instructions(), 0);
    }
}
