//! The instrumentation surface: what a checker can observe during a run.

use std::collections::BTreeMap;

use crate::alloc::BlockInfo;
use crate::mem::Memory;
use crate::program::GlobalDecl;
use crate::types::{Addr, BarrierId, ThreadId, ValKind};

/// Why a determinism checkpoint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckpointKind {
    /// A pthread-style barrier completed (all parties arrived).
    Barrier(BarrierId),
    /// A workload-inserted checkpoint (the paper's "additional program
    /// points where she expects her program to be in a deterministic
    /// state", e.g. the end of a loop iteration).
    Manual(&'static str),
    /// The program finished (all threads exited).
    End,
}

/// Identification of one dynamic checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Dense per-run sequence number (checkpoint alignment key across
    /// runs).
    pub seq: u64,
    /// What triggered the checkpoint.
    pub kind: CheckpointKind,
}

/// A read-only view of the machine state, passed to monitors at
/// checkpoints.
///
/// The *live state* is exactly what the paper hashes: the static data
/// (globals) plus the heap blocks currently allocated. Freed memory is
/// not part of the state.
#[derive(Debug)]
pub struct StateView<'a> {
    mem: &'a Memory,
    globals: &'a [GlobalDecl],
    blocks: &'a BTreeMap<u64, BlockInfo>,
}

impl<'a> StateView<'a> {
    pub(crate) fn new(
        mem: &'a Memory,
        globals: &'a [GlobalDecl],
        blocks: &'a BTreeMap<u64, BlockInfo>,
    ) -> Self {
        StateView {
            mem,
            globals,
            blocks,
        }
    }

    /// Reads one word, or `None` if the address is unmapped.
    pub fn read(&self, addr: Addr) -> Option<u64> {
        self.mem.read(addr)
    }

    /// The declared global regions.
    pub fn globals(&self) -> &[GlobalDecl] {
        self.globals
    }

    /// Looks up a global region by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// The live heap blocks, in address order.
    pub fn blocks(&self) -> impl Iterator<Item = &BlockInfo> + '_ {
        self.blocks.values()
    }

    /// The live heap blocks allocated at `site`.
    pub fn blocks_at_site(&self, site: &str) -> impl Iterator<Item = &BlockInfo> + '_ {
        let site = site.to_owned();
        self.blocks.values().filter(move |b| b.site == site)
    }

    /// Iterates over every live word as `(addr, value, kind)` — the
    /// traversal of the paper's `SW-InstantCheck_Tr`.
    pub fn live_words(&self) -> impl Iterator<Item = (Addr, u64, ValKind)> + '_ {
        let globals = self.globals.iter().flat_map(move |g| {
            g.region
                .iter()
                .map(move |a| (a, self.mem.read(a).unwrap_or(0), g.region.kind))
        });
        let heap = self.blocks.values().flat_map(move |b| {
            (0..b.len).map(move |i| {
                let a = b.base.offset(i as u64);
                (a, self.mem.read(a).unwrap_or(0), b.kind_at(i))
            })
        });
        globals.chain(heap)
    }

    /// Number of live words (the paper's state size; ×8 for bytes).
    pub fn live_word_count(&self) -> usize {
        self.globals.iter().map(|g| g.region.len).sum::<usize>()
            + self.blocks.values().map(|b| b.len).sum::<usize>()
    }
}

/// Observer of a simulated run — the instrumentation hook surface.
///
/// This is the role Pin instrumentation (and the modeled MHM hardware)
/// plays in the paper: it sees every store with its old and new value,
/// every allocation and free, every output byte, and every checkpoint.
/// All methods default to no-ops so a monitor implements only what it
/// needs.
///
/// Methods are invoked with the machine lock held and execution
/// serialized, so a monitor needs no internal synchronization.
#[allow(unused_variables)]
pub trait Monitor: Send {
    /// A store of `new` over `old` at `addr` by `tid`.
    ///
    /// `kind` is [`ValKind::F64`] iff the program issued an FP store —
    /// the information the paper's LLVM pass provides to the MHM.
    fn on_store(&mut self, tid: ThreadId, addr: Addr, old: u64, new: u64, kind: ValKind) {}

    /// A load of `value` from `addr` by `tid`.
    fn on_load(&mut self, tid: ThreadId, addr: Addr, value: u64, kind: ValKind) {}

    /// A new heap block was allocated (already zero-filled).
    fn on_alloc(&mut self, tid: ThreadId, block: &BlockInfo) {}

    /// A heap block was freed. `contents` holds the words of the block at
    /// free time (an incremental checker uses them to cancel the block's
    /// contribution out of the running hash).
    fn on_free(&mut self, tid: ThreadId, block: &BlockInfo, contents: &[u64]) {}

    /// Bytes appended to the program output stream.
    fn on_output(&mut self, tid: ThreadId, bytes: &[u8]) {}

    /// A determinism checkpoint: a completed barrier, a manual checkpoint,
    /// or the end of the run.
    fn on_checkpoint(&mut self, info: &CheckpointInfo, view: &StateView<'_>) {}

    /// Extra instructions this monitor's checking scheme would execute on
    /// a real machine (e.g. 5 instructions per byte hashed in software) —
    /// the Figure 6 cost model.
    fn extra_instructions(&self) -> u64 {
        0
    }
}

/// A monitor that observes nothing — the *Native* configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::GLOBALS_BASE;
    use crate::types::{Region, TypeTag};

    fn fixture() -> (Memory, Vec<GlobalDecl>, BTreeMap<u64, BlockInfo>) {
        let mut mem = Memory::new(3);
        mem.write(Addr(GLOBALS_BASE), 10);
        mem.write(Addr(GLOBALS_BASE + 2), 30);
        let globals = vec![GlobalDecl {
            name: "g",
            region: Region {
                base: Addr(GLOBALS_BASE),
                len: 3,
                kind: ValKind::U64,
            },
        }];
        let mut blocks = BTreeMap::new();
        blocks.insert(
            crate::mem::HEAP_BASE,
            BlockInfo {
                base: Addr(crate::mem::HEAP_BASE),
                len: 2,
                site: "buf",
                tag: TypeTag::f64s(),
                tid: 0,
                seq: 0,
            },
        );
        mem.grow_heap(2);
        mem.write(Addr(crate::mem::HEAP_BASE + 1), 7);
        (mem, globals, blocks)
    }

    #[test]
    fn live_words_covers_globals_and_heap() {
        let (mem, globals, blocks) = fixture();
        let view = StateView::new(&mem, &globals, &blocks);
        let words: Vec<_> = view.live_words().collect();
        assert_eq!(words.len(), 5);
        assert_eq!(view.live_word_count(), 5);
        assert_eq!(words[0], (Addr(GLOBALS_BASE), 10, ValKind::U64));
        assert_eq!(words[4], (Addr(crate::mem::HEAP_BASE + 1), 7, ValKind::F64));
    }

    #[test]
    fn lookup_helpers() {
        let (mem, globals, blocks) = fixture();
        let view = StateView::new(&mem, &globals, &blocks);
        assert!(view.global("g").is_some());
        assert!(view.global("nope").is_none());
        assert_eq!(view.blocks().count(), 1);
        assert_eq!(view.blocks_at_site("buf").count(), 1);
        assert_eq!(view.blocks_at_site("other").count(), 0);
        assert_eq!(view.read(Addr(GLOBALS_BASE + 2)), Some(30));
        assert_eq!(view.read(Addr(5)), None);
    }

    #[test]
    fn null_monitor_is_free() {
        let (mem, globals, blocks) = fixture();
        let view = StateView::new(&mem, &globals, &blocks);
        let mut m = NullMonitor;
        m.on_store(0, Addr(GLOBALS_BASE), 0, 1, ValKind::U64);
        m.on_checkpoint(
            &CheckpointInfo {
                seq: 0,
                kind: CheckpointKind::End,
            },
            &view,
        );
        assert_eq!(m.extra_instructions(), 0);
    }
}
