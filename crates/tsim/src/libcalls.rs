//! Record/replay of nondeterministic library calls.
//!
//! `rand` and `gettimeofday` return different values in different runs.
//! InstantCheck, like deterministic-replay systems, treats their results
//! as *input*: it records the values returned in one run and makes the
//! same calls return the same values in subsequent runs (Section 5). As
//! with any input, varying them across test campaigns increases coverage
//! — hence the per-run `lib_seed`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::types::ThreadId;

/// A log of library-call results keyed by `(thread, per-thread call index)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LibLog {
    rand: HashMap<(ThreadId, u64), u64>,
    time: HashMap<(ThreadId, u64), u64>,
}

impl LibLog {
    /// Number of logged calls (both kinds).
    pub fn len(&self) -> usize {
        self.rand.len() + self.time.len()
    }

    /// Returns `true` if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.rand.is_empty() && self.time.is_empty()
    }
}

/// Per-run library-call state.
#[derive(Debug)]
pub(crate) struct LibCalls {
    seed: u64,
    rand_seq: Vec<u64>,
    time_seq: Vec<u64>,
    clock: u64,
    log: LibLog,
    replay: Option<Arc<LibLog>>,
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl LibCalls {
    pub(crate) fn new(nthreads: usize, seed: u64, replay: Option<Arc<LibLog>>) -> Self {
        LibCalls {
            seed,
            rand_seq: vec![0; nthreads],
            time_seq: vec![0; nthreads],
            clock: 0,
            log: LibLog::default(),
            replay,
        }
    }

    /// Simulated `rand()`: seed- and history-dependent, replayable.
    pub(crate) fn rand_u64(&mut self, tid: ThreadId) -> u64 {
        let seq = self.rand_seq[tid];
        self.rand_seq[tid] += 1;
        let value = match self.replay.as_ref().and_then(|r| r.rand.get(&(tid, seq))) {
            Some(&v) => v,
            None => mix(self.seed ^ mix(tid as u64 + 1) ^ mix(seq.wrapping_add(0x51ed))),
        };
        self.log.rand.insert((tid, seq), value);
        value
    }

    /// Simulated `gettimeofday()`: a monotonic clock with seed-dependent
    /// jitter, replayable.
    pub(crate) fn gettimeofday(&mut self, tid: ThreadId) -> u64 {
        let seq = self.time_seq[tid];
        self.time_seq[tid] += 1;
        self.clock += 1;
        let value = match self.replay.as_ref().and_then(|r| r.time.get(&(tid, seq))) {
            Some(&v) => v,
            None => {
                let jitter = mix(self.seed ^ mix(tid as u64) ^ seq) % 997;
                1_000_000_000 + self.clock * 1000 + jitter
            }
        };
        self.log.time.insert((tid, seq), value);
        value
    }

    pub(crate) fn into_log(self) -> LibLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_varies_with_seed() {
        let mut a = LibCalls::new(1, 1, None);
        let mut b = LibCalls::new(1, 2, None);
        assert_ne!(a.rand_u64(0), b.rand_u64(0));
    }

    #[test]
    fn rand_deterministic_per_seed() {
        let mut a = LibCalls::new(2, 7, None);
        let mut b = LibCalls::new(2, 7, None);
        for tid in [0, 1, 0] {
            assert_eq!(a.rand_u64(tid), b.rand_u64(tid));
        }
    }

    #[test]
    fn replay_overrides_seed() {
        let mut rec = LibCalls::new(1, 1, None);
        let v0 = rec.rand_u64(0);
        let v1 = rec.rand_u64(0);
        let t0 = rec.gettimeofday(0);
        let log = Arc::new(rec.into_log());

        // Different seed, but replaying the log: identical results.
        let mut rep = LibCalls::new(1, 999, Some(log));
        assert_eq!(rep.rand_u64(0), v0);
        assert_eq!(rep.rand_u64(0), v1);
        assert_eq!(rep.gettimeofday(0), t0);
        // Past the log: falls back to generation.
        let _ = rep.rand_u64(0);
        assert_eq!(rep.into_log().len(), 4);
    }

    #[test]
    fn gettimeofday_is_monotonic_within_a_thread() {
        let mut l = LibCalls::new(1, 3, None);
        let a = l.gettimeofday(0);
        let b = l.gettimeofday(0);
        assert!(b > a);
    }

    #[test]
    fn log_len_and_empty() {
        let log = LibLog::default();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        let mut l = LibCalls::new(1, 3, None);
        l.rand_u64(0);
        l.gettimeofday(0);
        let log = l.into_log();
        assert!(!log.is_empty());
        assert_eq!(log.len(), 2);
    }
}
