//! Thread schedulers and preemption policies.
//!
//! The engine serializes execution and asks a [`Scheduler`] which runnable
//! thread goes next at each scheduling point. The random scheduler is the
//! paper's evaluation setup; the scripted scheduler supports systematic
//! exploration (CHESS-style) and replay; PCT is the randomized scheduler
//! with probabilistic bug-finding guarantees that the paper cites as a
//! drop-in testing driver.

use detrand::DetRng;

use crate::types::ThreadId;

/// Chooses the next thread to run.
///
/// `runnable` is always non-empty and sorted by thread id; the return
/// value is an *index into `runnable`*. `step` is the global scheduling
/// step counter, usable for step-keyed policies such as PCT's priority
/// change points.
pub trait Scheduler: Send {
    /// Called once before the run starts.
    fn init(&mut self, nthreads: usize) {
        let _ = nthreads;
    }

    /// Picks the index (into `runnable`) of the next thread to run.
    fn pick(&mut self, runnable: &[ThreadId], step: u64) -> usize;
}

/// When, besides synchronization operations, the engine inserts
/// scheduling points.
///
/// Synchronization operations (lock, unlock, barrier, condition variables,
/// atomic RMW, allocation, output) are *always* scheduling points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchPolicy {
    /// Switch only at synchronization operations — the paper's setup.
    /// Plain data accesses run without preemption.
    #[default]
    SyncOnly,
    /// Also switch at every data access (load/store). Exposes plain data
    /// races at the cost of many more scheduling decisions.
    EveryAccess,
    /// Also switch at every `n`-th data access by the running thread.
    EveryNth(u32),
}

impl SwitchPolicy {
    /// Returns `true` if the `count`-th consecutive data access by one
    /// thread should be a scheduling point.
    pub fn preempt_on_access(self, count: u64) -> bool {
        match self {
            SwitchPolicy::SyncOnly => false,
            SwitchPolicy::EveryAccess => true,
            SwitchPolicy::EveryNth(n) => n != 0 && count.is_multiple_of(u64::from(n)),
        }
    }
}

/// A clonable scheduler specification; the engine instantiates a fresh
/// [`Scheduler`] from it for every run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedulerKind {
    /// Uniformly random choice among runnable threads (seeded).
    Random {
        /// RNG seed; different seeds explore different interleavings.
        seed: u64,
    },
    /// Round-robin rotation over runnable threads.
    RoundRobin,
    /// Follow a recorded decision script (thread ids), falling back to
    /// the lowest-id runnable thread when the script is exhausted or the
    /// scripted thread is not runnable.
    Scripted {
        /// The decision script: preferred thread id per scheduling point.
        script: std::sync::Arc<Vec<u32>>,
    },
    /// Follow a decision script, then continue with seeded random
    /// choices once the script is exhausted (used by replay-assist
    /// searches: "obey the partial log, vary the rest").
    ScriptedThenRandom {
        /// The decision prefix to obey.
        script: std::sync::Arc<Vec<u32>>,
        /// Seed for the free suffix.
        seed: u64,
    },
    /// PCT (Burckhardt et al., ASPLOS 2010): random thread priorities
    /// with `depth - 1` random priority-change points.
    Pct {
        /// RNG seed.
        seed: u64,
        /// Bug depth `d` (number of ordering constraints to target).
        depth: u32,
        /// A priori estimate of the run length in scheduling steps, used
        /// to place the priority change points.
        expected_steps: u64,
    },
}

impl SchedulerKind {
    /// Instantiates a fresh scheduler for one run.
    pub fn build(&self) -> Box<dyn Scheduler + Send> {
        match self {
            SchedulerKind::Random { seed } => Box::new(RandomScheduler::new(*seed)),
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
            SchedulerKind::Scripted { script } => Box::new(ScriptedScheduler::new(script.clone())),
            SchedulerKind::ScriptedThenRandom { script, seed } => {
                Box::new(ScriptedThenRandomScheduler::new(script.clone(), *seed))
            }
            SchedulerKind::Pct {
                seed,
                depth,
                expected_steps,
            } => Box::new(PctScheduler::new(*seed, *depth, *expected_steps)),
        }
    }
}

/// Uniformly random scheduling — the paper's test driver.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: DetRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: DetRng::new(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, runnable: &[ThreadId], _step: u64) -> usize {
        self.rng.index(runnable.len())
    }
}

/// Deterministic round-robin scheduling.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    last: Option<ThreadId>,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, runnable: &[ThreadId], _step: u64) -> usize {
        let idx = match self.last {
            None => 0,
            Some(prev) => runnable.iter().position(|&t| t > prev).unwrap_or(0),
        };
        self.last = Some(runnable[idx]);
        idx
    }
}

/// Follows a recorded decision script; used for replay and for
/// systematic (stateless model checking) exploration.
#[derive(Debug)]
pub struct ScriptedScheduler {
    script: std::sync::Arc<Vec<u32>>,
    pos: usize,
}

impl ScriptedScheduler {
    /// Creates a scripted scheduler over a decision list (thread ids).
    pub fn new(script: std::sync::Arc<Vec<u32>>) -> Self {
        ScriptedScheduler { script, pos: 0 }
    }
}

impl Scheduler for ScriptedScheduler {
    fn pick(&mut self, runnable: &[ThreadId], _step: u64) -> usize {
        let want = self.script.get(self.pos).copied();
        self.pos += 1;
        match want {
            Some(tid) => runnable.iter().position(|&t| t as u32 == tid).unwrap_or(0),
            None => 0,
        }
    }
}

/// Follows a decision script, then falls back to seeded random choices.
#[derive(Debug)]
pub struct ScriptedThenRandomScheduler {
    script: std::sync::Arc<Vec<u32>>,
    pos: usize,
    rng: DetRng,
}

impl ScriptedThenRandomScheduler {
    /// Creates the scheduler.
    pub fn new(script: std::sync::Arc<Vec<u32>>, seed: u64) -> Self {
        ScriptedThenRandomScheduler {
            script,
            pos: 0,
            rng: DetRng::new(seed),
        }
    }
}

impl Scheduler for ScriptedThenRandomScheduler {
    fn pick(&mut self, runnable: &[ThreadId], _step: u64) -> usize {
        let want = self.script.get(self.pos).copied();
        self.pos += 1;
        match want {
            Some(tid) => runnable.iter().position(|&t| t as u32 == tid).unwrap_or(0),
            None => self.rng.index(runnable.len()),
        }
    }
}

/// PCT: randomized priority scheduling with `depth - 1` priority change
/// points, giving probabilistic guarantees of hitting bugs of depth `d`.
#[derive(Debug)]
pub struct PctScheduler {
    rng: DetRng,
    priorities: Vec<u64>,
    change_points: Vec<u64>,
    depth: u32,
    expected_steps: u64,
    low_counter: u64,
}

impl PctScheduler {
    /// Creates a PCT scheduler.
    pub fn new(seed: u64, depth: u32, expected_steps: u64) -> Self {
        PctScheduler {
            rng: DetRng::new(seed),
            priorities: Vec::new(),
            change_points: Vec::new(),
            depth,
            expected_steps: expected_steps.max(1),
            low_counter: 0,
        }
    }
}

impl Scheduler for PctScheduler {
    fn init(&mut self, nthreads: usize) {
        // Random distinct initial priorities: a random permutation offset
        // by `depth` so change points can assign strictly lower ones.
        let mut prio: Vec<u64> = (0..nthreads as u64)
            .map(|i| i + u64::from(self.depth) + 1)
            .collect();
        // Fisher–Yates.
        for i in (1..prio.len()).rev() {
            let j = self.rng.index(i + 1);
            prio.swap(i, j);
        }
        self.priorities = prio;
        self.change_points = (0..self.depth.saturating_sub(1))
            .map(|_| self.rng.below(self.expected_steps))
            .collect();
        self.change_points.sort_unstable();
    }

    fn pick(&mut self, runnable: &[ThreadId], step: u64) -> usize {
        if self.priorities.is_empty() {
            // init() was never called (defensive): behave like first-fit.
            return 0;
        }
        let idx = runnable
            .iter()
            .enumerate()
            .max_by_key(|(_, &t)| self.priorities[t])
            .map(|(i, _)| i)
            .unwrap_or(0);
        // At a change point, drop the chosen thread to a fresh lowest
        // priority.
        if self.change_points.binary_search(&step).is_ok() {
            self.low_counter += 1;
            let t = runnable[idx];
            self.priorities[t] = u64::from(self.depth).saturating_sub(self.low_counter);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let mut a = RandomScheduler::new(5);
        let mut b = RandomScheduler::new(5);
        let runnable = [0usize, 1, 2, 3];
        for step in 0..100 {
            assert_eq!(a.pick(&runnable, step), b.pick(&runnable, step));
        }
    }

    #[test]
    fn random_covers_all_threads() {
        let mut s = RandomScheduler::new(7);
        let runnable = [0usize, 1, 2];
        let mut seen = [false; 3];
        for step in 0..100 {
            seen[s.pick(&runnable, step)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobinScheduler::new();
        let runnable = [0usize, 1, 2];
        let picks: Vec<_> = (0..6).map(|i| runnable[s.pick(&runnable, i)]).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_blocked() {
        let mut s = RoundRobinScheduler::new();
        assert_eq!(s.pick(&[0, 1, 2], 0), 0); // runs 0
        assert_eq!(s.pick(&[0, 2], 1), 1); // 1 blocked: runs 2
        assert_eq!(s.pick(&[0, 2], 2), 0); // wraps to 0
    }

    #[test]
    fn scripted_follows_script_then_falls_back() {
        let script = std::sync::Arc::new(vec![2u32, 0, 7]);
        let mut s = ScriptedScheduler::new(script);
        let runnable = [0usize, 1, 2];
        assert_eq!(runnable[s.pick(&runnable, 0)], 2);
        assert_eq!(runnable[s.pick(&runnable, 1)], 0);
        assert_eq!(runnable[s.pick(&runnable, 2)], 0); // 7 not runnable
        assert_eq!(runnable[s.pick(&runnable, 3)], 0); // script exhausted
    }

    #[test]
    fn pct_is_deterministic_and_prioritized() {
        let mut a = PctScheduler::new(3, 3, 1000);
        let mut b = PctScheduler::new(3, 3, 1000);
        a.init(4);
        b.init(4);
        let runnable = [0usize, 1, 2, 3];
        for step in 0..200 {
            assert_eq!(a.pick(&runnable, step), b.pick(&runnable, step));
        }
        // Without change points hit, the same thread keeps running.
        let mut c = PctScheduler::new(9, 1, 1000);
        c.init(3);
        let first = c.pick(&[0, 1, 2], 0);
        assert_eq!(c.pick(&[0, 1, 2], 1), first);
    }

    #[test]
    fn pct_uninitialized_is_safe() {
        let mut s = PctScheduler::new(1, 2, 10);
        assert_eq!(s.pick(&[3, 4], 0), 0);
    }

    #[test]
    fn switch_policy_preemption() {
        assert!(!SwitchPolicy::SyncOnly.preempt_on_access(1));
        assert!(SwitchPolicy::EveryAccess.preempt_on_access(1));
        let every3 = SwitchPolicy::EveryNth(3);
        assert!(!every3.preempt_on_access(1));
        assert!(!every3.preempt_on_access(2));
        assert!(every3.preempt_on_access(3));
        assert!(every3.preempt_on_access(6));
        assert!(!SwitchPolicy::EveryNth(0).preempt_on_access(5));
    }

    #[test]
    fn kind_builds_all_variants() {
        for kind in [
            SchedulerKind::Random { seed: 1 },
            SchedulerKind::RoundRobin,
            SchedulerKind::Scripted {
                script: std::sync::Arc::new(vec![]),
            },
            SchedulerKind::Pct {
                seed: 1,
                depth: 2,
                expected_steps: 100,
            },
        ] {
            let mut s = kind.build();
            s.init(2);
            let _ = s.pick(&[0, 1], 0);
        }
    }
}
