//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::types::{Addr, LockId, ThreadId};

/// An error that aborts a simulated run.
///
/// These correspond to misuses of the simulated machine (bad address,
/// unlocking a lock one does not hold, …) or to whole-run failures
/// (deadlock, step-limit livelock, a workload thread panicking).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A thread accessed an address outside any mapped segment or live
    /// allocation.
    BadAddress {
        /// Thread performing the access.
        tid: ThreadId,
        /// The offending address.
        addr: Addr,
    },
    /// A thread released a lock it does not hold.
    UnlockNotHeld {
        /// Thread performing the unlock.
        tid: ThreadId,
        /// The lock in question.
        lock: LockId,
    },
    /// A thread acquired a lock it already holds (the simulated mutexes
    /// are non-reentrant, like `pthread_mutex_t` in default mode).
    RelockHeld {
        /// Thread performing the lock.
        tid: ThreadId,
        /// The lock in question.
        lock: LockId,
    },
    /// `free` was called on an address that is not the base of a live
    /// allocation.
    BadFree {
        /// Thread performing the free.
        tid: ThreadId,
        /// The offending address.
        addr: Addr,
    },
    /// No thread can make progress.
    Deadlock {
        /// Human-readable description of each blocked thread.
        detail: String,
    },
    /// The run exceeded the configured maximum number of scheduling steps.
    StepLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// A reader-writer lock was released in a mode the thread does not
    /// hold it in.
    RwUnlockNotHeld {
        /// Thread performing the release.
        tid: ThreadId,
        /// The lock index.
        rwlock: usize,
        /// `true` if the bad release was an exclusive (write) release.
        write: bool,
    },
    /// A workload thread panicked (e.g. a failed assertion in the
    /// program under test).
    ThreadPanic {
        /// The panicking thread.
        tid: ThreadId,
        /// The panic message, if it was a string.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadAddress { tid, addr } => {
                write!(f, "thread {tid} accessed unmapped address {addr}")
            }
            SimError::UnlockNotHeld { tid, lock } => {
                write!(f, "thread {tid} released lock {lock:?} it does not hold")
            }
            SimError::RelockHeld { tid, lock } => {
                write!(f, "thread {tid} re-acquired lock {lock:?} it already holds")
            }
            SimError::BadFree { tid, addr } => {
                write!(f, "thread {tid} freed invalid address {addr}")
            }
            SimError::RwUnlockNotHeld { tid, rwlock, write } => write!(
                f,
                "thread {tid} released rwlock {rwlock} ({} mode) it does not hold",
                if *write { "write" } else { "read" }
            ),
            SimError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            SimError::StepLimit { limit } => {
                write!(f, "run exceeded the step limit of {limit} scheduling steps")
            }
            SimError::ThreadPanic { tid, message } => {
                write!(f, "thread {tid} panicked: {message}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BadAddress { tid: 3, addr: Addr(0x99) };
        assert!(e.to_string().contains("thread 3"));
        assert!(e.to_string().contains("0x99"));
        let e = SimError::Deadlock { detail: "t0 waits on lock 1".into() };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::StepLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
