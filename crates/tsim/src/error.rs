//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::types::{Addr, LockId, ThreadId};

/// An error that aborts a simulated run.
///
/// These correspond to misuses of the simulated machine (bad address,
/// unlocking a lock one does not hold, …) or to whole-run failures
/// (deadlock, step-limit livelock, a workload thread panicking).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A thread accessed an address outside any mapped segment or live
    /// allocation.
    BadAddress {
        /// Thread performing the access.
        tid: ThreadId,
        /// The offending address.
        addr: Addr,
    },
    /// A thread released a lock it does not hold.
    UnlockNotHeld {
        /// Thread performing the unlock.
        tid: ThreadId,
        /// The lock in question.
        lock: LockId,
    },
    /// A thread acquired a lock it already holds (the simulated mutexes
    /// are non-reentrant, like `pthread_mutex_t` in default mode).
    RelockHeld {
        /// Thread performing the lock.
        tid: ThreadId,
        /// The lock in question.
        lock: LockId,
    },
    /// `free` was called on an address that is not the base of a live
    /// allocation.
    BadFree {
        /// Thread performing the free.
        tid: ThreadId,
        /// The offending address.
        addr: Addr,
    },
    /// No thread can make progress.
    Deadlock {
        /// Human-readable description of each blocked thread.
        detail: String,
    },
    /// The run exceeded the configured maximum number of scheduling steps.
    StepLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// A reader-writer lock was released in a mode the thread does not
    /// hold it in.
    RwUnlockNotHeld {
        /// Thread performing the release.
        tid: ThreadId,
        /// The lock index.
        rwlock: usize,
        /// `true` if the bad release was an exclusive (write) release.
        write: bool,
    },
    /// A workload thread panicked (e.g. a failed assertion in the
    /// program under test).
    ThreadPanic {
        /// The panicking thread.
        tid: ThreadId,
        /// The panic message, if it was a string.
        message: String,
    },
    /// The run exceeded its wall-clock watchdog deadline
    /// ([`RunConfig::deadline`](crate::RunConfig)).
    Deadline {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// An allocation failed (today only via injected
    /// [`FaultKind::AllocFail`](crate::FaultKind) faults; a real
    /// out-of-memory condition would surface the same way).
    AllocFailed {
        /// Thread performing the allocation.
        tid: ThreadId,
        /// The allocation site.
        site: &'static str,
    },
}

/// The *kind* of a [`SimError`], with the per-error payload stripped —
/// the unit failure campaigns bucket by.
///
/// [`SimError`] is `#[non_exhaustive]`, so downstream code cannot match
/// it exhaustively; `kind()` plus this enum's `Display` give reports a
/// stable, total classification anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum SimErrorKind {
    /// See [`SimError::BadAddress`].
    BadAddress,
    /// See [`SimError::UnlockNotHeld`].
    UnlockNotHeld,
    /// See [`SimError::RelockHeld`].
    RelockHeld,
    /// See [`SimError::BadFree`].
    BadFree,
    /// See [`SimError::Deadlock`].
    Deadlock,
    /// See [`SimError::StepLimit`].
    StepLimit,
    /// See [`SimError::RwUnlockNotHeld`].
    RwUnlockNotHeld,
    /// See [`SimError::ThreadPanic`].
    ThreadPanic,
    /// See [`SimError::Deadline`].
    Deadline,
    /// See [`SimError::AllocFailed`].
    AllocFailed,
}

impl SimErrorKind {
    /// A stable, short, machine-friendly name for this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimErrorKind::BadAddress => "bad-address",
            SimErrorKind::UnlockNotHeld => "unlock-not-held",
            SimErrorKind::RelockHeld => "relock-held",
            SimErrorKind::BadFree => "bad-free",
            SimErrorKind::Deadlock => "deadlock",
            SimErrorKind::StepLimit => "step-limit",
            SimErrorKind::RwUnlockNotHeld => "rw-unlock-not-held",
            SimErrorKind::ThreadPanic => "thread-panic",
            SimErrorKind::Deadline => "deadline",
            SimErrorKind::AllocFailed => "alloc-failed",
        }
    }
}

impl fmt::Display for SimErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SimError {
    /// This error's [`SimErrorKind`] (payload stripped).
    #[must_use]
    pub fn kind(&self) -> SimErrorKind {
        match self {
            SimError::BadAddress { .. } => SimErrorKind::BadAddress,
            SimError::UnlockNotHeld { .. } => SimErrorKind::UnlockNotHeld,
            SimError::RelockHeld { .. } => SimErrorKind::RelockHeld,
            SimError::BadFree { .. } => SimErrorKind::BadFree,
            SimError::Deadlock { .. } => SimErrorKind::Deadlock,
            SimError::StepLimit { .. } => SimErrorKind::StepLimit,
            SimError::RwUnlockNotHeld { .. } => SimErrorKind::RwUnlockNotHeld,
            SimError::ThreadPanic { .. } => SimErrorKind::ThreadPanic,
            SimError::Deadline { .. } => SimErrorKind::Deadline,
            SimError::AllocFailed { .. } => SimErrorKind::AllocFailed,
        }
    }

    /// Whether this failure can come and go with the schedule alone: a
    /// deadlock, livelock (step limit), or watchdog timeout under one
    /// scheduler seed, with clean completion under another, is itself a
    /// determinism finding — the campaign reports it rather than writing
    /// it off as infrastructure trouble.
    #[must_use]
    pub fn is_schedule_dependent(&self) -> bool {
        matches!(
            self.kind(),
            SimErrorKind::Deadlock | SimErrorKind::StepLimit | SimErrorKind::Deadline
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadAddress { tid, addr } => {
                write!(f, "thread {tid} accessed unmapped address {addr}")
            }
            SimError::UnlockNotHeld { tid, lock } => {
                write!(f, "thread {tid} released lock {lock:?} it does not hold")
            }
            SimError::RelockHeld { tid, lock } => {
                write!(f, "thread {tid} re-acquired lock {lock:?} it already holds")
            }
            SimError::BadFree { tid, addr } => {
                write!(f, "thread {tid} freed invalid address {addr}")
            }
            SimError::RwUnlockNotHeld { tid, rwlock, write } => write!(
                f,
                "thread {tid} released rwlock {rwlock} ({} mode) it does not hold",
                if *write { "write" } else { "read" }
            ),
            SimError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            SimError::StepLimit { limit } => {
                write!(f, "run exceeded the step limit of {limit} scheduling steps")
            }
            SimError::ThreadPanic { tid, message } => {
                write!(f, "thread {tid} panicked: {message}")
            }
            SimError::Deadline { limit_ms } => {
                write!(f, "run exceeded the wall-clock deadline of {limit_ms} ms")
            }
            SimError::AllocFailed { tid, site } => {
                write!(f, "thread {tid} failed to allocate at site {site:?}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BadAddress {
            tid: 3,
            addr: Addr(0x99),
        };
        assert!(e.to_string().contains("thread 3"));
        assert!(e.to_string().contains("0x99"));
        let e = SimError::Deadlock {
            detail: "t0 waits on lock 1".into(),
        };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::StepLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = SimError::Deadline { limit_ms: 250 };
        assert!(e.to_string().contains("250 ms"));
        let e = SimError::AllocFailed {
            tid: 1,
            site: "tree",
        };
        assert!(e.to_string().contains("tree"));
    }

    #[test]
    fn kinds_are_total_and_stable() {
        let cases: Vec<(SimError, SimErrorKind)> = vec![
            (
                SimError::BadAddress {
                    tid: 0,
                    addr: Addr(1),
                },
                SimErrorKind::BadAddress,
            ),
            (
                SimError::Deadlock {
                    detail: String::new(),
                },
                SimErrorKind::Deadlock,
            ),
            (SimError::StepLimit { limit: 1 }, SimErrorKind::StepLimit),
            (SimError::Deadline { limit_ms: 1 }, SimErrorKind::Deadline),
            (
                SimError::AllocFailed { tid: 0, site: "s" },
                SimErrorKind::AllocFailed,
            ),
            (
                SimError::ThreadPanic {
                    tid: 0,
                    message: String::new(),
                },
                SimErrorKind::ThreadPanic,
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn schedule_dependence_flags_whole_run_timing_failures() {
        assert!(SimError::Deadlock {
            detail: String::new()
        }
        .is_schedule_dependent());
        assert!(SimError::StepLimit { limit: 5 }.is_schedule_dependent());
        assert!(SimError::Deadline { limit_ms: 5 }.is_schedule_dependent());
        assert!(!SimError::BadFree {
            tid: 0,
            addr: Addr(8)
        }
        .is_schedule_dependent());
        assert!(!SimError::AllocFailed { tid: 0, site: "s" }.is_schedule_dependent());
        assert!(!SimError::ThreadPanic {
            tid: 0,
            message: String::new()
        }
        .is_schedule_dependent());
    }
}
