//! Shared building blocks for the application kernels.

use tsim::{CondId, LockId, ProgramBuilder, Region, ThreadCtx, ValKind};

/// A hand-coded barrier built from a lock + condition variable +
/// generation counter — the kind of barrier real applications roll by
/// hand (it does **not** fire a determinism checkpoint, unlike
/// [`ThreadCtx::barrier`]).
///
/// Its state (arrival count, generation) is deterministic whenever all
/// parties are past the barrier, so it never perturbs the state hash at
/// checkpoints.
#[derive(Debug, Clone, Copy)]
pub struct HandBarrier {
    lock: LockId,
    cond: CondId,
    /// `state.at(0)` = arrived count, `state.at(1)` = generation.
    state: Region,
    parties: u64,
}

impl HandBarrier {
    /// Declares the barrier's lock, condvar and state words on `b`.
    pub fn new(b: &mut ProgramBuilder, name: &'static str, parties: usize) -> Self {
        HandBarrier {
            lock: b.mutex(),
            cond: b.condvar(),
            state: b.global(name, ValKind::U64, 2),
            parties: parties as u64,
        }
    }

    /// Waits until all parties arrive.
    pub fn wait(&self, ctx: &mut ThreadCtx) {
        self.wait_inner(ctx, None);
    }

    /// Waits until all parties arrive; the *last* arriver fires a manual
    /// determinism checkpoint while every other party is still blocked,
    /// so the checkpoint observes a quiescent state (this is how the
    /// blackscholes/swaptions per-iteration checking points of Table 1
    /// are modeled).
    pub fn wait_checkpoint(&self, ctx: &mut ThreadCtx, label: &'static str) {
        self.wait_inner(ctx, Some(label));
    }

    fn wait_inner(&self, ctx: &mut ThreadCtx, label: Option<&'static str>) {
        let count = self.state.at(0);
        let gen = self.state.at(1);
        ctx.lock(self.lock);
        let my_gen = ctx.load(gen);
        let arrived = ctx.load(count) + 1;
        ctx.store(count, arrived);
        if arrived == self.parties {
            ctx.store(count, 0);
            ctx.store(gen, my_gen + 1);
            if let Some(label) = label {
                // All other parties are blocked on the condvar: the
                // state is quiescent.
                ctx.checkpoint(label);
            }
            ctx.cond_broadcast(self.cond);
            ctx.unlock(self.lock);
        } else {
            while ctx.load(gen) == my_gen {
                ctx.cond_wait(self.cond, self.lock);
            }
            ctx.unlock(self.lock);
        }
    }
}

/// A *racy* sense-reversing spin barrier, as found in `volrend`'s
/// hand-coded synchronization: the arrival counter is an atomic RMW, but
/// the release flag is spun on with plain loads that race with the
/// releasing store. The race is benign — every run leaves the barrier
/// state (and the program) in the same final state — and InstantCheck
/// must classify programs using it as deterministic.
#[derive(Debug, Clone, Copy)]
pub struct RacySenseBarrier {
    /// `state.at(0)` = arrived count, `state.at(1)` = sense flag.
    state: Region,
    parties: u64,
}

impl RacySenseBarrier {
    /// Declares the barrier's state words on `b`.
    pub fn new(b: &mut ProgramBuilder, name: &'static str, parties: usize) -> Self {
        RacySenseBarrier {
            state: b.global(name, ValKind::U64, 2),
            parties: parties as u64,
        }
    }

    /// Waits until all parties arrive (spinning; yields while spinning).
    ///
    /// `my_sense` is the caller's thread-local sense word; initialize it
    /// to 0 and pass the same variable to every wait.
    pub fn wait(&self, ctx: &mut ThreadCtx, my_sense: &mut u64) {
        let count = self.state.at(0);
        let sense = self.state.at(1);
        let next = 1 - *my_sense;
        let arrived = ctx.fetch_add(count, 1) + 1;
        if arrived == self.parties {
            ctx.store(count, 0);
            ctx.store(sense, next); // racy release store…
        } else {
            while ctx.load(sense) != next {
                // …racing with these plain spin loads (benign).
                ctx.sched_yield();
            }
        }
        *my_sense = next;
    }
}

/// A deterministic 64-bit mixer for building input data and thread-local
/// pseudo-random streams (fixed across runs; *not* a nondeterministic
/// library call).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic f64 in `[0, 1)` derived from a key.
pub fn unit_f64(key: u64) -> f64 {
    (mix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// A thread-local deterministic PRNG stream — the swaptions pattern:
/// "thread-local random number generators that have no shared state",
/// which is why a Monte Carlo simulation can be bit-by-bit deterministic.
#[derive(Debug, Clone)]
pub struct LocalRng {
    state: u64,
}

impl LocalRng {
    /// Seeds the stream (seed it from the thread id for per-thread
    /// streams).
    pub fn new(seed: u64) -> Self {
        LocalRng {
            state: mix64(seed ^ 0xd1b5_4a32_d192_ed03),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = mix64(self.state);
        self.state
    }

    /// Next f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, RunConfig};

    #[test]
    fn hand_barrier_synchronizes() {
        let n = 4;
        let mut b = ProgramBuilder::new(n);
        let slots = b.global("slots", ValKind::U64, n);
        let sums = b.global("sums", ValKind::U64, n);
        let hb = HandBarrier::new(&mut b, "hb", n);
        for tid in 0..n {
            b.thread(move |ctx| {
                ctx.store(slots.at(tid), tid as u64 + 1);
                hb.wait(ctx);
                let mut s = 0;
                for i in 0..n {
                    s += ctx.load(slots.at(i));
                }
                ctx.store(sums.at(tid), s);
            });
        }
        let out = b.build().run(&RunConfig::random(3)).unwrap();
        for tid in 0..n {
            assert_eq!(out.final_word(sums.at(tid)), Some(10));
        }
    }

    #[test]
    fn hand_barrier_is_reusable() {
        let n = 3;
        let mut b = ProgramBuilder::new(n);
        let acc = b.global("acc", ValKind::U64, 1);
        let hb = HandBarrier::new(&mut b, "hb", n);
        let lock = b.mutex();
        for _ in 0..n {
            b.thread(move |ctx| {
                for _ in 0..5 {
                    ctx.lock(lock);
                    let v = ctx.load(acc.at(0));
                    ctx.store(acc.at(0), v + 1);
                    ctx.unlock(lock);
                    hb.wait(ctx);
                }
            });
        }
        let out = b.build().run(&RunConfig::random(9)).unwrap();
        assert_eq!(out.final_word(tsim::Addr(tsim::GLOBALS_BASE)), Some(15));
    }

    #[test]
    fn racy_sense_barrier_synchronizes_despite_the_race() {
        let n = 4;
        for seed in 0..10 {
            let mut b = ProgramBuilder::new(n);
            let slots = b.global("slots", ValKind::U64, n);
            let ok = b.global("ok", ValKind::U64, n);
            let rb = RacySenseBarrier::new(&mut b, "rb", n);
            for tid in 0..n {
                b.thread(move |ctx| {
                    let mut sense = 0u64;
                    for round in 0..3u64 {
                        ctx.store(slots.at(tid), round * 10 + tid as u64);
                        rb.wait(ctx, &mut sense);
                        let mut sum = 0;
                        for i in 0..n {
                            sum += ctx.load(slots.at(i));
                        }
                        assert_eq!(sum, round * 10 * n as u64 + 6);
                        rb.wait(ctx, &mut sense);
                    }
                    ctx.store(ok.at(tid), 1);
                });
            }
            let out = b.build().run(&RunConfig::random(seed)).unwrap();
            for tid in 0..n {
                assert_eq!(out.final_word(ok.at(tid)), Some(1), "seed {seed}");
            }
        }
    }

    #[test]
    fn local_rng_is_deterministic_and_varied() {
        let mut a = LocalRng::new(3);
        let mut b = LocalRng::new(3);
        let mut c = LocalRng::new(4);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, c.next_u64());
        }
        let u = a.next_f64();
        assert!((0.0..1.0).contains(&u));
        assert!((0.0..1.0).contains(&unit_f64(77)));
    }
}
