//! Stress kernels for exercising the checker's *failure* paths rather
//! than its verdicts: programs that are externally deterministic when
//! they complete but can fail to complete at all under adversarial
//! schedules.
//!
//! The flagship kernel, [`lock_order_hazard`], carries a classic ABBA
//! lock-order inversion with a deliberately narrow race window, so a
//! multi-run campaign over consecutive scheduler seeds completes under
//! most seeds and deadlocks under a few — exactly the situation the
//! [`FailurePolicy`](instantcheck::FailurePolicy) machinery and the
//! report's schedule-divergence classification exist for.

use tsim::{Program, ProgramBuilder, ValKind};

/// A two-worker kernel with an ABBA lock-order inversion.
///
/// Each worker first performs `preamble` iterations on a private lock
/// (pure desynchronization — the two workers drift apart according to
/// the scheduler's choices), then crosses a **single** two-lock critical
/// section: worker 0 takes `front` then `back`, worker 1 takes `back`
/// then `front`. The shared updates commute, so every completing run
/// ends in the same state: the kernel is externally deterministic *when
/// it terminates*. Whether it terminates depends on the schedule: the
/// run deadlocks only if the scheduler lines the two one-operation-wide
/// windows up exactly — worker 0 holding `front` while worker 1 holds
/// `back`.
///
/// `preamble` tunes how rare that is: the longer the drift phase, the
/// smaller the fraction of scheduler seeds under which the windows
/// align. The campaign integration tests calibrate a seed range over
/// this kernel in which exactly one seed deadlocks.
pub fn lock_order_hazard(preamble: u64) -> Program {
    let mut b = ProgramBuilder::new(2);
    let totals = b.global("totals", ValKind::U64, 2);
    let front = b.mutex();
    let back = b.mutex();
    let private = [b.mutex(), b.mutex()];
    for (w, &my) in private.iter().enumerate() {
        b.thread(move |ctx| {
            for _ in 0..preamble {
                ctx.lock(my);
                let v = ctx.load(totals.at(w));
                ctx.store(totals.at(w), v + 1);
                ctx.unlock(my);
            }
            let (first, second) = if w == 0 { (front, back) } else { (back, front) };
            ctx.lock(first);
            ctx.lock(second);
            let v = ctx.load(totals.at(w));
            ctx.store(totals.at(w), v + 1);
            ctx.unlock(second);
            ctx.unlock(first);
        });
    }
    b.build()
}

/// The scheduler seeds in `seeds` under which [`lock_order_hazard`]
/// deadlocks (or fails for any other reason). Runs the kernel once per
/// seed — cheap, and deterministic because the simulator is.
pub fn failing_seeds(straight_iters: u64, seeds: impl IntoIterator<Item = u64>) -> Vec<u64> {
    seeds
        .into_iter()
        .filter(|&s| {
            lock_order_hazard(straight_iters)
                .run(&tsim::RunConfig::random(s))
                .is_err()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::RunConfig;

    #[test]
    fn completing_runs_all_agree() {
        let ok_seeds: Vec<u64> = (0..40)
            .filter(|&s| lock_order_hazard(32).run(&RunConfig::random(s)).is_ok())
            .collect();
        assert!(ok_seeds.len() >= 30, "most seeds complete");
        let outcome = |s| lock_order_hazard(32).run(&RunConfig::random(s)).unwrap();
        let base = outcome(ok_seeds[0]);
        for &s in &ok_seeds[1..] {
            let o = outcome(s);
            for i in 0..2 {
                let a = tsim::Addr(tsim::GLOBALS_BASE + i);
                assert_eq!(base.final_word(a), o.final_word(a), "seed {s}");
            }
        }
    }

    #[test]
    fn some_seed_deadlocks_but_only_rarely() {
        let failing = failing_seeds(32, 0..200);
        assert!(!failing.is_empty(), "the hazard must be reachable");
        assert!(failing.len() < 30, "the hazard must stay rare");
        let err = lock_order_hazard(32)
            .run(&RunConfig::random(failing[0]))
            .unwrap_err();
        assert_eq!(err.kind(), tsim::SimErrorKind::Deadlock);
        assert!(err.is_schedule_dependent());
    }
}
