//! Simulated kernels reproducing the determinism characteristics of the
//! 17 applications the InstantCheck paper evaluates (Table 1), plus the
//! three seeded-bug variants of Figure 7 / Table 2.
//!
//! Each kernel is a small parallel program written against [`tsim`]'s
//! instrumented API that exhibits the *same determinism class*, the same
//! *kind of nondeterminism source*, and (at paper scale) the same number
//! of dynamic checking points as the corresponding real application:
//!
//! | class | apps |
//! |---|---|
//! | bit-by-bit deterministic | blackscholes, fft, lu, radix, streamcluster (fixed), swaptions, volrend |
//! | deterministic modulo FP precision | fluidanimate, ocean, waterNS, waterSP |
//! | deterministic ignoring small structures | cholesky, pbzip2, sphinx3 |
//! | nondeterministic | barnes, canneal, radiosity |
//!
//! `streamcluster` additionally ships in its original *buggy* form (the
//! order-violation race the paper found), which is nondeterministic at a
//! window of internal barriers but masked by the end of the run.
//!
//! Every kernel has two scales: [`all`] returns paper-scale programs
//! (dynamic checking-point counts matching Table 1), [`all_scaled`]
//! returns miniatures with identical structure for fast tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod stress;
pub mod util;

use std::sync::Arc;

use instantcheck::{DetClass, IgnoreSpec, Subject};
use tsim::Program;

/// A registered application kernel: how to build it, plus the metadata
/// and expectations Table 1 records.
#[derive(Clone)]
pub struct AppSpec {
    /// Application name (Table 1 column 2).
    pub name: &'static str,
    /// Source suite (column 3): `parsec`, `splash2`, `openSrc`,
    /// `alpBench`.
    pub suite: &'static str,
    /// Whether the kernel performs FP operations (column 4).
    pub uses_fp: bool,
    /// The determinism class the kernel is engineered to exhibit.
    pub expected_class: DetClass,
    /// Expected total dynamic checking points (barriers + manual points
    /// + end) — columns 10+11.
    pub expected_points: usize,
    /// The programmer-supplied ignore spec for its small
    /// nondeterministic structures (empty unless class is
    /// `IgnoringStructs`).
    pub ignore: IgnoreSpec,
    /// Builds one fresh copy of the program.
    pub build: Arc<dyn Fn() -> Program + Send + Sync>,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("uses_fp", &self.uses_fp)
            .field("expected_class", &self.expected_class)
            .field("expected_points", &self.expected_points)
            .finish_non_exhaustive()
    }
}

impl AppSpec {
    /// Converts the spec into a checker [`Subject`].
    pub fn subject(&self) -> Subject {
        let build = Arc::clone(&self.build);
        let mut s = Subject::new(self.name, move || build());
        if self.uses_fp {
            s = s.with_fp();
        }
        s.with_ignore(self.ignore.clone())
    }

    /// Builds one fresh program.
    pub fn build(&self) -> Program {
        (self.build)()
    }
}

/// The paper's eight-thread configuration.
pub const THREADS: usize = 8;

/// All 17 applications at paper scale (Table 1 order). `streamcluster`
/// appears in its buggy (original v2.1) form, as in the paper's
/// experiments.
pub fn all() -> Vec<AppSpec> {
    vec![
        apps::blackscholes::spec(),
        apps::fft::spec(),
        apps::lu::spec(),
        apps::radix::spec(),
        apps::streamcluster::spec_buggy(),
        apps::swaptions::spec(),
        apps::volrend::spec(),
        apps::fluidanimate::spec(),
        apps::ocean::spec(),
        apps::water::spec_ns(),
        apps::water::spec_sp(),
        apps::cholesky::spec(),
        apps::pbzip2::spec(),
        apps::sphinx3::spec(),
        apps::barnes::spec(),
        apps::canneal::spec(),
        apps::radiosity::spec(),
    ]
}

/// All 17 applications at miniature scale (same structure, far fewer
/// iterations) for fast tests.
pub fn all_scaled() -> Vec<AppSpec> {
    vec![
        apps::blackscholes::spec_scaled(),
        apps::fft::spec_scaled(),
        apps::lu::spec_scaled(),
        apps::radix::spec_scaled(),
        apps::streamcluster::spec_buggy_scaled(),
        apps::swaptions::spec_scaled(),
        apps::volrend::spec_scaled(),
        apps::fluidanimate::spec_scaled(),
        apps::ocean::spec_scaled(),
        apps::water::spec_ns_scaled(),
        apps::water::spec_sp_scaled(),
        apps::cholesky::spec_scaled(),
        apps::pbzip2::spec_scaled(),
        apps::sphinx3::spec_scaled(),
        apps::barnes::spec_scaled(),
        apps::canneal::spec_scaled(),
        apps::radiosity::spec_scaled(),
    ]
}

/// Looks up an application by name (either scale).
pub fn by_name(name: &str, scaled: bool) -> Option<AppSpec> {
    let pool = if scaled { all_scaled() } else { all() };
    pool.into_iter().find(|a| a.name == name)
}

/// The three seeded-bug variants of Figure 7 (Table 2), paper scale:
/// a semantic bug in waterNS, an atomicity violation in waterSP, and an
/// order violation in radix — each injected only in thread 3, the radix
/// one with a single dynamic occurrence.
pub fn seeded_bugs() -> Vec<AppSpec> {
    vec![
        apps::water::spec_ns_semantic_bug(),
        apps::water::spec_sp_atomicity_bug(),
        apps::radix::spec_order_violation(),
    ]
}

/// Miniature versions of the seeded-bug variants.
pub fn seeded_bugs_scaled() -> Vec<AppSpec> {
    vec![
        apps::water::spec_ns_semantic_bug_scaled(),
        apps::water::spec_sp_atomicity_bug_scaled(),
        apps::radix::spec_order_violation_scaled(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_distinct() {
        let apps = all();
        assert_eq!(apps.len(), 17);
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17, "names must be unique");
        assert_eq!(all_scaled().len(), 17);
        assert_eq!(seeded_bugs().len(), 3);
        assert_eq!(seeded_bugs_scaled().len(), 3);
    }

    #[test]
    fn class_group_sizes_match_table1() {
        let apps = all();
        let count = |c: DetClass| apps.iter().filter(|a| a.expected_class == c).count();
        // streamcluster (buggy) counts as Nondeterministic-at-internal-
        // barriers but the paper groups it with bit-by-bit; we register
        // its expectation as BitExact-with-bug via expected_class
        // BitExact on the fixed variant. The buggy variant carries its
        // own class below.
        assert_eq!(count(DetClass::BitExact), 7);
        assert_eq!(count(DetClass::FpRounded), 4);
        assert_eq!(count(DetClass::IgnoringStructs), 3);
        assert_eq!(count(DetClass::Nondeterministic), 3);
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("fft", true).is_some());
        assert!(by_name("fft", false).is_some());
        assert!(by_name("doom", true).is_none());
    }

    #[test]
    fn subjects_carry_metadata() {
        let spec = by_name("cholesky", true).unwrap();
        let subj = spec.subject();
        assert_eq!(subj.name, "cholesky");
        assert!(subj.uses_fp);
        assert!(!subj.ignore.is_empty());
    }
}
