//! `cholesky` (SPLASH-2) — task-parallel sparse factorization.
//!
//! Deterministic only after ignoring small structures. Three sources of
//! nondeterminism, as in the paper:
//!
//! 1. FP precision (a locked global flop-sum whose accumulation order
//!    varies),
//! 2. the custom task allocator (we route it to the simulator's `malloc`
//!    exactly as the paper routes cholesky's custom allocator to libc
//!    `malloc`, so addresses are controlled by the checker's replay),
//! 3. the per-thread **free-task lists** (`freeTask`): after a thread
//!    processes a task it links the task node onto its own free list, so
//!    the lists' membership, order and head pointers depend on which
//!    thread won which task.
//!
//! The factorization result itself is deterministic: every task updates
//! a disjoint block of the matrix, so execution order is irrelevant.
//! Excluding the task nodes and the free-list heads from the hash (and
//! rounding FP) makes the kernel deterministic — Table 1's
//! "small-struct" class. 3 barriers + end = 4 checking points.

use std::sync::Arc;

use instantcheck::{DetClass, IgnoreSpec};
use tsim::{Program, ProgramBuilder, TypeTag, ValKind};

use crate::util::{mix64, unit_f64};
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Number of tasks (= matrix blocks).
    pub tasks: usize,
    /// Words per matrix block.
    pub block: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            tasks: 48,
            block: 8,
        }
    }
}

/// Task node layout: `[next, task_id]`.
const NODE_WORDS: usize = 2;

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let tasks = p.tasks;
    let block = p.block;
    let n = tasks * block;

    let mut b = ProgramBuilder::new(threads);
    let matrix = b.global("matrix", ValKind::F64, n);
    let flops = b.global("flop_sum", ValKind::F64, 1);
    let qhead = b.global("queue_head", ValKind::U64, 1);
    let free_heads = b.global("free_task_heads", ValKind::U64, threads);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let structure = b.global("sparsity_structure", ValKind::U64, 384);
    let qlock = b.mutex();
    let flock = b.mutex();
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..n {
            s.store_f64(matrix.at(i), 1.0 + unit_f64(i as u64));
        }
        // The "custom allocator" of the paper, routed through malloc:
        // build the initial task queue as a linked list of task nodes.
        let mut head = 0u64;
        for t in (0..tasks).rev() {
            let node = s.malloc("task_node", TypeTag::u64s(), NODE_WORDS);
            s.store(node, head); // next
            s.store(node.offset(1), t as u64); // task id
            head = node.raw();
        }
        s.store(qhead.at(0), head);
        for i in 0..384 {
            s.store(structure.at(i), mix64(i as u64 + 5) >> 16);
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            // Phase 1: per-thread warmup of disjoint matrix stripes.
            let stripe = n / ctx.nthreads();
            for i in tid * stripe..(tid + 1) * stripe {
                let v = ctx.load_f64(matrix.at(i));
                ctx.store_f64(matrix.at(i), v * 1.01);
                ctx.work(28);
            }
            ctx.barrier(bar);

            // Phase 2: task processing. Pop from the shared queue;
            // every task updates its own disjoint block.
            loop {
                ctx.lock(qlock);
                let head = ctx.load(qhead.at(0));
                if head == 0 {
                    ctx.unlock(qlock);
                    break;
                }
                let node = tsim::Addr(head);
                let next = ctx.load(node);
                ctx.store(qhead.at(0), next);
                ctx.unlock(qlock);

                let _nz = ctx.load(structure.at((ctx.tid() * 37) % 384));
                let t = ctx.load(node.offset(1)) as usize;
                let mut local_flops = 0.0;
                for j in 0..block {
                    let i = t * block + j;
                    let v = ctx.load_f64(matrix.at(i));
                    let f = (v + 0.5).sqrt();
                    ctx.store_f64(matrix.at(i), f);
                    local_flops += f;
                    ctx.work(84);
                }
                // Order-dependent FP accumulation (source 1).
                ctx.lock(flock);
                let s = ctx.load_f64(flops.at(0));
                ctx.store_f64(flops.at(0), s + local_flops);
                ctx.unlock(flock);

                // Recycle the node onto this thread's free list
                // (source 3): membership and link order are
                // schedule-dependent.
                let old = ctx.load(free_heads.at(tid));
                ctx.store(node, old);
                ctx.store(free_heads.at(tid), node.raw());
            }
            ctx.barrier(bar);

            // Phase 3: normalize own stripes (deterministic).
            for i in tid * stripe..(tid + 1) * stripe {
                let v = ctx.load_f64(matrix.at(i));
                ctx.store_f64(matrix.at(i), v * 0.5);
                ctx.work(21);
            }
            ctx.barrier(bar);
        });
    }
    b.build()
}

fn ignore_spec() -> IgnoreSpec {
    IgnoreSpec::new()
        .ignore_site("task_node")
        .ignore_global("free_task_heads")
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "cholesky",
        suite: "splash2",
        uses_fp: true,
        expected_class: DetClass::IgnoringStructs,
        expected_points: 4,
        ignore: ignore_spec(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 4 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        tasks: 12,
        block: 4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::FpRound;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    fn campaign(runs: usize, round: bool, ignore: bool) -> instantcheck::CheckReport {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let mut cfg = CheckerConfig::new(Scheme::HwInc).with_runs(runs);
        if round {
            cfg = cfg.with_rounding(FpRound::default());
        }
        if ignore {
            cfg = cfg.with_ignore(spec.ignore.clone());
        }
        Checker::new(cfg)
            .expect("valid config")
            .check(move || build())
            .unwrap()
    }

    #[test]
    fn nondet_until_structures_are_ignored() {
        assert!(!campaign(8, false, false).is_deterministic(), "bit-exact");
        assert!(
            !campaign(8, true, false).is_deterministic(),
            "free lists survive FP rounding"
        );
        assert!(campaign(8, true, true).is_deterministic(), "isolated");
    }

    #[test]
    fn matrix_result_is_schedule_independent() {
        let p = Params {
            threads: 4,
            tasks: 8,
            block: 4,
        };
        let a = build(&p).run(&tsim::RunConfig::random(2)).unwrap();
        let b = build(&p).run(&tsim::RunConfig::random(23)).unwrap();
        for i in 0..32u64 {
            assert_eq!(
                a.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)),
                b.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)),
                "matrix[{i}]"
            );
        }
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&tsim::RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
