//! `waterNS` and `waterSP` (SPLASH-2) — molecular dynamics.
//!
//! Both kernels are **deterministic modulo FP precision**: per-molecule
//! force and position updates are partitioned disjointly, but the global
//! potential/kinetic energy accumulators are updated by all threads
//! under a lock, so their last ulps depend on the accumulation order.
//! With InstantCheck's FP round-off the kernels are deterministic;
//! bit-by-bit they are not. 10 timesteps × 2 barriers = 20 barriers +
//! end = the 21 checking points of Table 1.
//!
//! Two of the paper's Figure 7 seeded bugs live here:
//!
//! * **waterNS semantic bug** (Fig 7(a)): thread 3, in one timestep's
//!   force phase, *overwrites* a shared boundary-force cell instead of
//!   accumulating into it — losing its neighbor's contribution or its
//!   own depending on the schedule. The corrupted force feeds the
//!   integrator, so positions stay nondeterministic to the end.
//! * **waterSP atomicity violation** (Fig 7(b)): thread 3, in one
//!   timestep's update phase, updates the (cumulative) kinetic-energy
//!   accumulator with an unlocked read-modify-write whose window spans
//!   its other synchronized work, so concurrent locked updates can be
//!   lost.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Which water variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// n-squared neighbor interactions.
    Nsquared,
    /// spatial (cell-based) interactions — structurally identical here,
    /// with a different force kernel.
    Spatial,
}

/// Which Figure 7 bug (if any) to seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// No bug.
    None,
    /// Fig 7(a): semantic bug in the force phase of timestep
    /// `bug_timestep` (thread 3 only).
    Semantic,
    /// Fig 7(b): atomicity violation in the update phase of timestep
    /// `bug_timestep` (thread 3 only).
    Atomicity,
}

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Molecules per thread.
    pub mols_per_thread: usize,
    /// Timesteps (2 barriers each).
    pub timesteps: usize,
    /// Variant.
    pub variant: Variant,
    /// Seeded bug.
    pub bug: SeededBug,
    /// Timestep (0-based) in which the bug strikes.
    pub bug_timestep: usize,
}

impl Params {
    fn paper(variant: Variant) -> Self {
        Params {
            threads: THREADS,
            mols_per_thread: 24,
            timesteps: 10,
            variant,
            bug: SeededBug::None,
            // NS semantic bug in ts 6 → first corrupt barrier is #13
            // (12 det / 9 ndet, Table 2); SP atomicity bug in ts 4 →
            // first corrupt barrier is #10 (9 det / 12 ndet).
            bug_timestep: 0,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let chunk = p.mols_per_thread;
    let n = threads * chunk;
    let timesteps = p.timesteps;
    let variant = p.variant;
    let bug = p.bug;
    let bug_ts = p.bug_timestep;

    let mut b = ProgramBuilder::new(threads);
    let pos = b.global("pos", ValKind::F64, n);
    let vel = b.global("vel", ValKind::F64, n);
    let force = b.global("force", ValKind::F64, n);
    let epot = b.global("epot", ValKind::F64, 1);
    let ekin = b.global("ekin", ValKind::F64, 1);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let potential_table = b.global("potential_table", ValKind::F64, 384);
    let energy_lock = b.mutex();
    let boundary_lock = b.mutex();
    let mid = crate::util::HandBarrier::new(&mut b, "force_mid_barrier", threads);
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..n {
            s.store_f64(pos.at(i), i as f64 + 0.3 * unit_f64(i as u64));
            s.store_f64(vel.at(i), 0.1 * (unit_f64(i as u64 + 555) - 0.5));
        }
        for i in 0..384 {
            s.store_f64(potential_table.at(i), unit_f64(i as u64 + 31_415));
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let lo = tid * chunk;
            let hi = lo + chunk;
            for ts in 0..timesteps {
                // ---- force phase A: disjoint base forces -------------
                // (positions are stable during the whole force phase, so
                // reading neighbors across slice boundaries is safe).
                let mut local_epot = 0.0;
                for i in lo..hi {
                    let x = ctx.load_f64(pos.at(i));
                    let left = ctx.load_f64(pos.at((i + n - 1) % n));
                    let right = ctx.load_f64(pos.at((i + 1) % n));
                    let f = match variant {
                        Variant::Nsquared => (left - x) + (right - x),
                        Variant::Spatial => 0.9 * (left - x) + 1.1 * (right - x),
                    };
                    ctx.store_f64(force.at(i), f);
                    local_epot += 0.5 * ((x - left).abs() + (right - x).abs());
                    ctx.work(98);
                }
                let _lj = ctx.load_f64(potential_table.at((ts * 7 + tid) % 384));
                // All base forces must be written before anyone
                // accumulates boundary corrections into them.
                mid.wait(ctx);

                // ---- force phase B: boundary corrections -------------
                // Each boundary molecule (the first of every slice, with
                // periodic wraparound) receives locked contributions
                // from *two* threads, so its last ulps depend on the
                // accumulation order.
                let target = hi % n; // the next slice's first molecule
                let x = ctx.load_f64(pos.at(hi - 1));
                let y = ctx.load_f64(pos.at(target));
                let contrib = 0.25 * (x - y);
                ctx.lock(boundary_lock);
                let cur = ctx.load_f64(force.at(target));
                if bug == SeededBug::Semantic && tid == 3 && ts == bug_ts {
                    // SEMANTIC BUG (Fig 7(a)): `=` instead of `+=`:
                    // whether the other thread's contribution survives
                    // depends on the accumulation order — a large,
                    // schedule-dependent error.
                    ctx.store_f64(force.at(target), contrib);
                } else {
                    ctx.store_f64(force.at(target), cur + contrib);
                }
                ctx.unlock(boundary_lock);
                // Own-edge correction on this slice's first molecule
                // (the same cell another thread targets above).
                let self_edge = ctx.load_f64(pos.at(lo));
                let prev = ctx.load_f64(pos.at((lo + n - 1) % n));
                ctx.lock(boundary_lock);
                let cur = ctx.load_f64(force.at(lo));
                // A substantial term: when the seeded semantic bug
                // discards it, the error in the integrated velocities
                // stays far above the FP round-off grid, so the
                // corruption persists to the end of the run.
                ctx.store_f64(force.at(lo), cur + 1.5 * (self_edge - prev));
                ctx.unlock(boundary_lock);

                // Global potential energy: locked, but the accumulation
                // order across threads varies → last-ulp noise.
                ctx.lock(energy_lock);
                let e = ctx.load_f64(epot.at(0));
                ctx.store_f64(epot.at(0), e + local_epot);
                ctx.unlock(energy_lock);
                ctx.barrier(bar);

                // ---- update phase ------------------------------------
                let mut local_ekin = 0.0;
                for i in lo..hi {
                    let f = ctx.load_f64(force.at(i));
                    let v = ctx.load_f64(vel.at(i)) + 0.01 * f;
                    ctx.store_f64(vel.at(i), v);
                    let x = ctx.load_f64(pos.at(i)) + 0.01 * v;
                    ctx.store_f64(pos.at(i), x);
                    local_ekin += 0.5 * v * v;
                    ctx.work(70);
                }
                if bug == SeededBug::Atomicity && tid == 3 && ts == bug_ts {
                    // ATOMICITY VIOLATION (Fig 7(b)): the read and the
                    // write of the cumulative kinetic energy span other
                    // synchronized work, so locked updates by other
                    // threads in between are lost.
                    let stale = ctx.load_f64(ekin.at(0));
                    ctx.lock(boundary_lock); // unrelated critical section
                    ctx.work(140);
                    ctx.unlock(boundary_lock);
                    ctx.store_f64(ekin.at(0), stale + local_ekin);
                } else {
                    ctx.lock(energy_lock);
                    let e = ctx.load_f64(ekin.at(0));
                    ctx.store_f64(ekin.at(0), e + local_ekin);
                    ctx.unlock(energy_lock);
                }
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params, name: &'static str, class: DetClass, suite: &'static str) -> AppSpec {
    AppSpec {
        name,
        suite,
        uses_fp: true,
        expected_class: class,
        expected_points: p.timesteps * 2 + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// waterNS at paper scale: 21 points, deterministic after FP rounding.
pub fn spec_ns() -> AppSpec {
    make_spec(
        Params::paper(Variant::Nsquared),
        "waterNS",
        DetClass::FpRounded,
        "splash2",
    )
}

/// waterSP at paper scale.
pub fn spec_sp() -> AppSpec {
    make_spec(
        Params::paper(Variant::Spatial),
        "waterSP",
        DetClass::FpRounded,
        "splash2",
    )
}

/// Miniature waterNS.
pub fn spec_ns_scaled() -> AppSpec {
    let p = Params {
        threads: 4,
        mols_per_thread: 6,
        timesteps: 4,
        ..Params::paper(Variant::Nsquared)
    };
    make_spec(p, "waterNS", DetClass::FpRounded, "splash2")
}

/// Miniature waterSP.
pub fn spec_sp_scaled() -> AppSpec {
    let p = Params {
        threads: 4,
        mols_per_thread: 6,
        timesteps: 4,
        ..Params::paper(Variant::Spatial)
    };
    make_spec(p, "waterSP", DetClass::FpRounded, "splash2")
}

/// waterNS with the Figure 7(a) semantic bug (Table 2 row 1): strikes in
/// timestep 6, so the first corrupted checkpoint is barrier 13 → 12
/// deterministic / 9 nondeterministic points.
pub fn spec_ns_semantic_bug() -> AppSpec {
    let p = Params {
        bug: SeededBug::Semantic,
        bug_timestep: 6,
        ..Params::paper(Variant::Nsquared)
    };
    make_spec(p, "waterNS+semantic", DetClass::Nondeterministic, "splash2")
}

/// waterSP with the Figure 7(b) atomicity violation (Table 2 row 2):
/// strikes in timestep 4, so the first corrupted checkpoint is barrier
/// 10 → 9 deterministic / 12 nondeterministic points.
pub fn spec_sp_atomicity_bug() -> AppSpec {
    let p = Params {
        bug: SeededBug::Atomicity,
        bug_timestep: 4,
        ..Params::paper(Variant::Spatial)
    };
    make_spec(
        p,
        "waterSP+atomicity",
        DetClass::Nondeterministic,
        "splash2",
    )
}

/// Miniature seeded-semantic waterNS (bug in timestep 1 of 4).
pub fn spec_ns_semantic_bug_scaled() -> AppSpec {
    let p = Params {
        threads: 4,
        mols_per_thread: 6,
        timesteps: 4,
        bug: SeededBug::Semantic,
        bug_timestep: 1,
        ..Params::paper(Variant::Nsquared)
    };
    make_spec(p, "waterNS+semantic", DetClass::Nondeterministic, "splash2")
}

/// Miniature seeded-atomicity waterSP (bug in timestep 1 of 4).
pub fn spec_sp_atomicity_bug_scaled() -> AppSpec {
    let p = Params {
        threads: 4,
        mols_per_thread: 6,
        timesteps: 4,
        bug: SeededBug::Atomicity,
        bug_timestep: 1,
        ..Params::paper(Variant::Spatial)
    };
    make_spec(
        p,
        "waterSP+atomicity",
        DetClass::Nondeterministic,
        "splash2",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::FpRound;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    fn campaign(spec: &AppSpec, runs: usize, round: bool) -> instantcheck::CheckReport {
        let build = Arc::clone(&spec.build);
        let mut cfg = CheckerConfig::new(Scheme::HwInc).with_runs(runs);
        if round {
            cfg = cfg.with_rounding(FpRound::default());
        }
        Checker::new(cfg)
            .expect("valid config")
            .check(move || build())
            .unwrap()
    }

    #[test]
    fn water_is_fp_prec_deterministic() {
        for spec in [spec_ns_scaled(), spec_sp_scaled()] {
            let exact = campaign(&spec, 8, false);
            assert!(
                !exact.is_deterministic(),
                "{}: ulp noise expected",
                spec.name
            );
            let rounded = campaign(&spec, 8, true);
            assert!(rounded.is_deterministic(), "{}", spec.name);
        }
    }

    #[test]
    fn seeded_bugs_survive_fp_rounding() {
        for spec in [
            spec_ns_semantic_bug_scaled(),
            spec_sp_atomicity_bug_scaled(),
        ] {
            let rounded = campaign(&spec, 10, true);
            assert!(
                !rounded.is_deterministic(),
                "{}: the seeded bug must not be absorbed by rounding",
                spec.name
            );
            assert!(
                rounded.first_ndet_run.unwrap() <= 8,
                "{}: detected within a few runs",
                spec.name
            );
        }
    }

    #[test]
    fn bug_timing_controls_the_det_ndet_split() {
        // Miniature: bug in ts 1 of 4 (9 points total). NS semantic bug
        // corrupts the force phase → first bad checkpoint is barrier 3
        // (force barrier of ts 1): 2 det + 7 ndet.
        let ns = campaign(&spec_ns_semantic_bug_scaled(), 10, true);
        assert!(!ns.is_deterministic());
        let first_bad = (0..ns.aligned_checkpoints)
            .find(|&i| !ns.distributions[i].is_deterministic())
            .unwrap();
        assert_eq!(first_bad, 2, "force barrier of ts 1 is checkpoint index 2");

        // SP atomicity bug corrupts the update phase → first bad
        // checkpoint is barrier 4 (update barrier of ts 1): 3 det.
        let sp = campaign(&spec_sp_atomicity_bug_scaled(), 10, true);
        let first_bad = (0..sp.aligned_checkpoints)
            .find(|&i| !sp.distributions[i].is_deterministic())
            .unwrap();
        assert_eq!(first_bad, 3, "update barrier of ts 1 is checkpoint index 3");
    }
}
