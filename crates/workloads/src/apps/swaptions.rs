//! `swaptions` (PARSEC) — Monte Carlo swaption pricing.
//!
//! A Monte Carlo simulation that is nonetheless **bit-by-bit
//! deterministic**: as the paper observes, each thread owns a
//! *thread-local* random number generator with no shared state, so given
//! the same seed every thread produces the same trial sequence for its
//! swaptions regardless of the interleaving. Determinism is checked at
//! the end of every simulation iteration (2500) plus the end of the
//! program = the 2501 points of Table 1.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::{unit_f64, HandBarrier, LocalRng};
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads (one swaption strip per thread).
    pub threads: usize,
    /// Monte Carlo iterations (one checkpoint each).
    pub iterations: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            iterations: 2_500,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let iterations = p.iterations;

    let mut b = ProgramBuilder::new(threads);
    let sums = b.global("payoff_sums", ValKind::F64, threads);
    let trials = b.global("trials", ValKind::U64, threads);
    let price = b.global("price", ValKind::F64, threads);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let yield_curve = b.global("yield_curve", ValKind::F64, 384);
    let hb = HandBarrier::new(&mut b, "mc_barrier", threads);

    b.setup(move |s| {
        for i in 0..384 {
            s.store_f64(yield_curve.at(i), 0.02 + 0.0001 * unit_f64(i as u64));
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let mut rng = LocalRng::new(tid as u64 + 1);
            for _iter in 0..iterations {
                let _y = ctx.load_f64(yield_curve.at((ctx.tid() * 31) % 384));
                // One Monte Carlo trial: simulate a short-rate path.
                let mut rate = 0.03;
                for _ in 0..4 {
                    rate += 0.002 * (rng.next_f64() - 0.5);
                    ctx.work(84);
                }
                let payoff = (rate - 0.03).max(0.0) * 1000.0;
                let s = ctx.load_f64(sums.at(tid)) + payoff;
                ctx.store_f64(sums.at(tid), s);
                let n = ctx.load(trials.at(tid)) + 1;
                ctx.store(trials.at(tid), n);
                ctx.store_f64(price.at(tid), s / n as f64);
                hb.wait_checkpoint(ctx, "mc_iteration");
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "swaptions",
        suite: "parsec",
        uses_fp: true,
        expected_class: DetClass::BitExact,
        expected_points: p.iterations + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 2501 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        iterations: 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{Addr, RunConfig, GLOBALS_BASE};

    #[test]
    fn monte_carlo_with_local_rngs_is_bitwise_deterministic() {
        let p = Params {
            threads: 4,
            iterations: 6,
        };
        let a = build(&p).run(&RunConfig::random(2)).unwrap();
        let b = build(&p).run(&RunConfig::random(33)).unwrap();
        for i in 0..12u64 {
            assert_eq!(
                a.final_word(Addr(GLOBALS_BASE + i)),
                b.final_word(Addr(GLOBALS_BASE + i))
            );
        }
    }

    #[test]
    fn prices_converge_to_something_positive() {
        let p = Params {
            threads: 2,
            iterations: 50,
        };
        let out = build(&p).run(&RunConfig::random(0)).unwrap();
        // price region comes after sums (2) and trials (2).
        let price0 = out.final_f64(Addr(GLOBALS_BASE + 4)).unwrap();
        assert!(price0.is_finite() && price0 >= 0.0);
        let trials0 = out.final_word(Addr(GLOBALS_BASE + 2)).unwrap();
        assert_eq!(trials0, 50);
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
