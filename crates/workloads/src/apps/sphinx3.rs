//! `sphinx3` (ALPBench) — speech-recognition pipeline.
//!
//! Deterministic only after ignoring ~4% of the memory: the paper found
//! that memory allocated at 15 of sphinx3's 230 allocation sites is
//! nondeterministic (search-lattice scratch whose content depends on the
//! schedule), and deleting those sites from the hash makes the rest of
//! the state deterministic. This kernel allocates the same 230-site
//! profile (215 deterministic model/feature blocks, 15 nondeterministic
//! lattice blocks) and processes an utterance frame by frame with 8
//! barriers per frame — 533 frames × 8 = 4264 barriers + end = the 4265
//! checking points of Table 1.

use std::sync::{Arc, OnceLock};

use instantcheck::{DetClass, IgnoreSpec};
use tsim::{Program, ProgramBuilder, TypeTag, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Total allocation sites, as in sphinx3.
pub const TOTAL_SITES: usize = 230;
/// Sites holding nondeterministic scratch, as in sphinx3.
pub const NDET_SITES: usize = 15;

/// Leaked static site names (`site_000` … `site_229`); the last
/// [`NDET_SITES`] are the nondeterministic ones.
fn site_names() -> &'static [&'static str] {
    static NAMES: OnceLock<Vec<&'static str>> = OnceLock::new();
    NAMES.get_or_init(|| {
        (0..TOTAL_SITES)
            .map(|i| {
                let name = if i >= TOTAL_SITES - NDET_SITES {
                    format!("lattice_site_{i:03}")
                } else {
                    format!("model_site_{i:03}")
                };
                &*Box::leak(name.into_boxed_str())
            })
            .collect()
    })
}

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Utterance frames (8 barriers each).
    pub frames: usize,
    /// Words per deterministic model block.
    pub model_block: usize,
    /// Words per nondeterministic lattice block.
    pub lattice_block: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            frames: 533,
            model_block: 10,
            lattice_block: 6,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let frames = p.frames;
    let model_block = p.model_block;
    let lattice_block = p.lattice_block;

    let mut b = ProgramBuilder::new(threads);
    // Handles to every allocated block.
    let blocks = b.global("block_ptrs", ValKind::U64, TOTAL_SITES);
    let score = b.global("utterance_score", ValKind::F64, 1);
    let slock = b.mutex();
    let llock = b.mutex();
    let bar = b.barrier();

    b.setup(move |s| {
        let names = site_names();
        for (i, name) in names.iter().enumerate() {
            let ndet = i >= TOTAL_SITES - NDET_SITES;
            let words = if ndet { lattice_block } else { model_block };
            let tag = if ndet {
                TypeTag::u64s()
            } else {
                TypeTag::f64s()
            };
            let addr = s.malloc(name, tag, words);
            s.store(blocks.at(i), addr.raw());
            if !ndet {
                for w in 0..words {
                    s.store_f64(addr.offset(w as u64), unit_f64((i * 31 + w) as u64));
                }
            }
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let nthreads = ctx.nthreads();
            for frame in 0..frames {
                for phase in 0..8usize {
                    match phase % 4 {
                        0 | 2 => {
                            // Acoustic scoring: deterministic FP update
                            // of this thread's model blocks (disjoint).
                            let mut site = tid;
                            while site < TOTAL_SITES - NDET_SITES {
                                if site % 29 == (frame + phase) % 29 {
                                    let base = tsim::Addr(ctx.load(blocks.at(site)));
                                    let w = (frame + site) % model_block;
                                    let v = ctx.load_f64(base.offset(w as u64));
                                    ctx.store_f64(
                                        base.offset(w as u64),
                                        (v * 1.0001 + 0.001).fract(),
                                    );
                                    ctx.work(126);
                                }
                                site += nthreads;
                            }
                        }
                        1 => {
                            // Lattice expansion: every thread claims the
                            // frame's lattice slot under the lock — the
                            // last claimer wins, so the recorded value
                            // is schedule-dependent.
                            let site = TOTAL_SITES - NDET_SITES + frame % NDET_SITES;
                            let base = tsim::Addr(ctx.load(blocks.at(site)));
                            let w = frame % lattice_block;
                            ctx.lock(llock);
                            ctx.store(base.offset(w as u64), ((tid as u64) << 32) | frame as u64);
                            ctx.unlock(llock);
                            ctx.work(70);
                        }
                        _ => {
                            // Score reduction: locked FP accumulation
                            // (order-dependent ulps).
                            ctx.lock(slock);
                            let s = ctx.load_f64(score.at(0));
                            ctx.store_f64(
                                score.at(0),
                                s + 0.001 * unit_f64((frame * 7 + tid) as u64),
                            );
                            ctx.unlock(slock);
                            ctx.work(42);
                        }
                    }
                    ctx.barrier(bar);
                }
            }
        });
    }
    b.build()
}

/// The 15-site ignore spec the programmer would write after the
/// localization tool points at the lattice sites.
pub fn ignore_spec() -> IgnoreSpec {
    let mut spec = IgnoreSpec::new();
    for name in &site_names()[TOTAL_SITES - NDET_SITES..] {
        spec = spec.ignore_site(*name);
    }
    spec
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "sphinx3",
        suite: "alpBench",
        uses_fp: true,
        expected_class: DetClass::IgnoringStructs,
        expected_points: p.frames * 8 + 1,
        ignore: ignore_spec(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 4265 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        frames: 4,
        model_block: 10,
        lattice_block: 6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::FpRound;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    fn campaign(runs: usize, round: bool, ignore: bool) -> instantcheck::CheckReport {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let mut cfg = CheckerConfig::new(Scheme::HwInc).with_runs(runs);
        if round {
            cfg = cfg.with_rounding(FpRound::default());
        }
        if ignore {
            cfg = cfg.with_ignore(spec.ignore.clone());
        }
        Checker::new(cfg)
            .expect("valid config")
            .check(move || build())
            .unwrap()
    }

    #[test]
    fn table1_pipeline_for_sphinx3() {
        assert!(!campaign(6, false, false).is_deterministic(), "bit-exact");
        assert!(
            !campaign(6, true, false).is_deterministic(),
            "lattice scratch survives FP rounding"
        );
        assert!(campaign(6, true, true).is_deterministic(), "isolated");
    }

    #[test]
    fn ignored_fraction_is_small() {
        let spec = spec_scaled();
        let out = spec.build().run(&tsim::RunConfig::random(0)).unwrap();
        let view = out.final_state();
        let ignored: usize = spec.ignore.resolve(&view).len();
        let total = view.live_word_count();
        let frac = ignored as f64 / total as f64;
        assert!(
            (0.01..0.10).contains(&frac),
            "ignored fraction {frac} should be a few percent (paper: 4%)"
        );
    }

    #[test]
    fn site_profile_matches_sphinx3() {
        assert_eq!(site_names().len(), 230);
        let spec = spec_scaled();
        let out = spec.build().run(&tsim::RunConfig::random(0)).unwrap();
        let view = out.final_state();
        assert_eq!(view.blocks().count(), 230);
    }
}
