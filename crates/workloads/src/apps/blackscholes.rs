//! `blackscholes` (PARSEC) — data-parallel option pricing.
//!
//! Bit-by-bit deterministic: each thread prices a disjoint slice of the
//! option portfolio, so although the kernel is FP-heavy there is no
//! cross-thread FP reduction whose order could vary. Determinism is
//! checked at the end of every iteration of the simulation pass (via a
//! hand-coded barrier whose last arriver fires a manual checkpoint) —
//! 100 iterations + the end of the program = the 101 dynamic checking
//! points of Table 1.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::{unit_f64, HandBarrier};
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Options priced per thread.
    pub options_per_thread: usize,
    /// Simulation-pass iterations (one checkpoint each).
    pub iterations: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            options_per_thread: 16,
            iterations: 100,
        }
    }
}

/// A smooth stand-in for the cumulative normal of the Black–Scholes
/// formula.
fn phi(x: f64) -> f64 {
    0.5 * (1.0 + (0.8 * x).tanh())
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let n = p.threads * p.options_per_thread;
    let iterations = p.iterations;
    let chunk = p.options_per_thread;

    let mut b = ProgramBuilder::new(p.threads);
    let spot = b.global("spot", ValKind::F64, n);
    let strike = b.global("strike", ValKind::F64, n);
    let price = b.global("price", ValKind::F64, n);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let vol_surface = b.global("vol_surface", ValKind::F64, 384);
    let hb = HandBarrier::new(&mut b, "pass_barrier", p.threads);

    b.setup(move |s| {
        for i in 0..n {
            s.store_f64(spot.at(i), 50.0 + 100.0 * unit_f64(i as u64));
            s.store_f64(strike.at(i), 40.0 + 120.0 * unit_f64(i as u64 + 7_000));
        }
        for i in 0..384 {
            s.store_f64(vol_surface.at(i), 0.2 + 0.1 * unit_f64(i as u64 + 64_000));
        }
    });

    for tid in 0..p.threads {
        b.thread(move |ctx| {
            let lo = tid * chunk;
            for iter in 0..iterations {
                let t = 1.0 + iter as f64 * 0.01; // time-to-expiry drift
                let _sigma = ctx.load_f64(vol_surface.at((iter * 3 + tid) % 384));
                for i in lo..lo + chunk {
                    let s = ctx.load_f64(spot.at(i));
                    let k = ctx.load_f64(strike.at(i));
                    let d1 = (s / k).ln() / (0.3 * t.sqrt()) + 0.15 * t.sqrt();
                    let d2 = d1 - 0.3 * t.sqrt();
                    let v = s * phi(d1) - k * (-0.05 * t).exp() * phi(d2);
                    ctx.store_f64(price.at(i), v);
                    ctx.work(280); // formula evaluation
                }
                hb.wait_checkpoint(ctx, "pass_iteration");
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "blackscholes",
        suite: "parsec",
        uses_fp: true,
        expected_class: DetClass::BitExact,
        expected_points: p.iterations + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 101 dynamic checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        options_per_thread: 4,
        iterations: 5,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::RunConfig;

    #[test]
    fn prices_are_schedule_independent() {
        let p = Params {
            threads: 4,
            options_per_thread: 4,
            iterations: 3,
        };
        let a = build(&p).run(&RunConfig::random(1)).unwrap();
        let b = build(&p).run(&RunConfig::random(99)).unwrap();
        let price_base = tsim::Addr(tsim::GLOBALS_BASE + 32); // after spot+strike
        for i in 0..16 {
            assert_eq!(
                a.final_word(price_base.offset(i)),
                b.final_word(price_base.offset(i)),
                "option {i}"
            );
        }
    }

    #[test]
    fn checkpoint_count_matches_table1_structure() {
        let spec = spec_scaled();
        let out = spec.build().run(&RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }

    #[test]
    fn prices_are_sane() {
        let p = Params {
            threads: 2,
            options_per_thread: 2,
            iterations: 1,
        };
        let out = build(&p).run(&RunConfig::random(0)).unwrap();
        let price_base = tsim::Addr(tsim::GLOBALS_BASE + 8);
        for i in 0..4 {
            let v = f64::from_bits(out.final_word(price_base.offset(i)).unwrap());
            assert!(v.is_finite() && v >= -1.0, "price {v}");
        }
    }
}
