//! `fft` (SPLASH-2) — iterative radix-2 FFT over complex data.
//!
//! Bit-by-bit deterministic: the bit-reversal phase and every butterfly
//! stage partition the array into disjoint per-thread slices, so the FP
//! operations happen in a fixed order regardless of the schedule. A
//! pthread barrier separates the phases — 12 barriers + the end of the
//! program = the 13 checking points of Table 1.
//!
//! This kernel rewrites the whole working set between consecutive
//! checkpoints, which is why (Figure 6) traversal-based hashing beats
//! incremental software hashing on it.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// log2 of the transform size.
    pub log2_n: u32,
}

impl Default for Params {
    fn default() -> Self {
        // 2^11 = 2048 points → 11 stages + 1 bit-reverse barrier = 12
        // barriers, 13 checking points.
        Params {
            threads: THREADS,
            log2_n: 11,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let n = 1usize << p.log2_n;
    let stages = p.log2_n;
    let threads = p.threads;

    let mut b = ProgramBuilder::new(threads);
    let src_re = b.global("src_re", ValKind::F64, n);
    let src_im = b.global("src_im", ValKind::F64, n);
    let re = b.global("re", ValKind::F64, n);
    let im = b.global("im", ValKind::F64, n);
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..n {
            s.store_f64(src_re.at(i), unit_f64(i as u64) * 2.0 - 1.0);
            s.store_f64(src_im.at(i), unit_f64(i as u64 + 40_000) * 2.0 - 1.0);
        }
    });

    let log2_n = p.log2_n;
    for tid in 0..threads {
        b.thread(move |ctx| {
            let chunk = n / ctx.nthreads();
            let lo = tid * chunk;
            let hi = if tid == ctx.nthreads() - 1 {
                n
            } else {
                lo + chunk
            };

            // Phase 1: bit-reverse permutation (disjoint destination
            // slices).
            for i in lo..hi {
                let j = (i as u64).reverse_bits() >> (64 - log2_n);
                let r = ctx.load_f64(src_re.at(j as usize));
                let x = ctx.load_f64(src_im.at(j as usize));
                ctx.store_f64(re.at(i), r);
                ctx.store_f64(im.at(i), x);
                ctx.work(56);
            }
            ctx.barrier(bar);

            // Phase 2: one barrier per butterfly stage. Each stage's
            // butterflies are partitioned by the index of the *first*
            // element of the pair, so the pairs touched by different
            // threads are disjoint.
            for s in 0..stages {
                let half = 1usize << s;
                let step = half << 1;
                // Global list of butterflies: (block, j) with block in
                // (0..n).step_by(step), j in 0..half. Flatten and slice.
                let total = n / 2;
                let per = total / ctx.nthreads();
                let from = tid * per;
                let to = if tid == ctx.nthreads() - 1 {
                    total
                } else {
                    from + per
                };
                for k in from..to {
                    let block = (k / half) * step;
                    let j = k % half;
                    let angle = -2.0 * std::f64::consts::PI * j as f64 / step as f64;
                    let (w_re, w_im) = (angle.cos(), angle.sin());
                    let a = block + j;
                    let c = a + half;
                    let (ar, ai) = (ctx.load_f64(re.at(a)), ctx.load_f64(im.at(a)));
                    let (cr, ci) = (ctx.load_f64(re.at(c)), ctx.load_f64(im.at(c)));
                    let tr = w_re * cr - w_im * ci;
                    let ti = w_re * ci + w_im * cr;
                    ctx.store_f64(re.at(a), ar + tr);
                    ctx.store_f64(im.at(a), ai + ti);
                    ctx.store_f64(re.at(c), ar - tr);
                    ctx.store_f64(im.at(c), ai - ti);
                    ctx.work(140);
                }
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "fft",
        suite: "splash2",
        uses_fp: true,
        expected_class: DetClass::BitExact,
        expected_points: p.log2_n as usize + 2, // bitrev + stages + end
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 13 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests (2^6 = 64 points).
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        log2_n: 6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{Addr, RunConfig, GLOBALS_BASE};

    fn read_spectrum(out: &tsim::RunOutcome<tsim::NullMonitor>, n: usize) -> Vec<(f64, f64)> {
        let re_base = Addr(GLOBALS_BASE + 2 * n as u64);
        let im_base = Addr(GLOBALS_BASE + 3 * n as u64);
        (0..n)
            .map(|i| {
                (
                    out.final_f64(re_base.offset(i as u64)).unwrap(),
                    out.final_f64(im_base.offset(i as u64)).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn fft_is_schedule_independent_bitwise() {
        let p = Params {
            threads: 4,
            log2_n: 5,
        };
        let a = build(&p).run(&RunConfig::random(1)).unwrap();
        let b = build(&p).run(&RunConfig::random(77)).unwrap();
        assert_eq!(read_spectrum(&a, 32), read_spectrum(&b, 32));
    }

    #[test]
    fn fft_matches_reference_dft() {
        let p = Params {
            threads: 2,
            log2_n: 4,
        };
        let n = 16usize;
        let out = build(&p).run(&RunConfig::random(0)).unwrap();
        let got = read_spectrum(&out, n);

        // Reference O(n^2) DFT on the same input.
        let input: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    unit_f64(i as u64) * 2.0 - 1.0,
                    unit_f64(i as u64 + 40_000) * 2.0 - 1.0,
                )
            })
            .collect();
        for (k, &(gr, gi)) in got.iter().enumerate() {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for (t, &(xr, xi)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                sr += xr * c - xi * s;
                si += xr * s + xi * c;
            }
            assert!((gr - sr).abs() < 1e-9, "re[{k}]: {gr} vs {sr}");
            assert!((gi - si).abs() < 1e-9, "im[{k}]: {gi} vs {si}");
        }
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
