//! `barnes` (SPLASH-2) — Barnes-Hut n-body simulation.
//!
//! **Nondeterministic**: the oct-tree is built by all threads inserting
//! bodies concurrently, drawing tree nodes from a shared pool with an
//! atomic bump counter — so which body lands in which node (and the
//! node link structure) depends on the schedule, and the force values
//! computed *from* the tree inherit the difference. Only the two initial
//! setup barriers (before tree construction) are deterministic: Table 1
//! reports 2 deterministic / 16 nondeterministic points, and the program
//! does not end deterministically.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Bodies per thread.
    pub bodies_per_thread: usize,
    /// Force/update rounds after tree construction. Total checking
    /// points = 2 (init) + 1 (tree) + 2×rounds (force+update barriers)
    /// + 1 (end).
    pub rounds: usize,
}

impl Default for Params {
    fn default() -> Self {
        // 2 + 1 + 2*7 = 17 barriers + end = 18 points (2 det / 16 ndet).
        Params {
            threads: THREADS,
            bodies_per_thread: 16,
            rounds: 7,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let chunk = p.bodies_per_thread;
    let n = threads * chunk;
    let rounds = p.rounds;

    let mut b = ProgramBuilder::new(threads);
    let pos = b.global("pos", ValKind::F64, n);
    let mass = b.global("mass", ValKind::F64, n);
    let acc = b.global("acc", ValKind::F64, n);
    let potential = b.global("potential", ValKind::F64, n);
    // Tree: a node pool; nodes[i] holds the body id stored there, and
    // body_node[bid] holds the node index assigned to the body.
    let pool_next = b.global("pool_next", ValKind::U64, 1);
    let nodes = b.global("tree_nodes", ValKind::U64, n);
    let body_node = b.global("body_node", ValKind::U64, n);
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..n {
            s.store_f64(pos.at(i), unit_f64(i as u64) * 100.0);
            s.store_f64(mass.at(i), 1.0 + unit_f64(i as u64 + 123));
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let lo = tid * chunk;
            let hi = lo + chunk;

            // Two deterministic init phases (disjoint writes).
            for i in lo..hi {
                ctx.store_f64(acc.at(i), 0.0);
                ctx.work(14);
            }
            ctx.barrier(bar); // det point 1
            for i in lo..hi {
                let m = ctx.load_f64(mass.at(i));
                ctx.store_f64(mass.at(i), m * 1.0); // normalization pass
                ctx.work(14);
            }
            ctx.barrier(bar); // det point 2

            // Tree construction: schedule-dependent node assignment.
            for i in lo..hi {
                let node = ctx.fetch_add(pool_next.at(0), 1) as usize;
                ctx.store(nodes.at(node), i as u64);
                ctx.store(body_node.at(i), node as u64);
                ctx.work(84);
            }
            ctx.barrier(bar); // first ndet point

            // Force/update rounds: forces read the (nondeterministic)
            // tree, so every subsequent state is nondeterministic.
            for round in 0..rounds {
                for i in lo..hi {
                    let my_node = ctx.load(body_node.at(i)) as usize;
                    // "Traverse" the tree: interact with the bodies in
                    // the neighbouring pool slots.
                    let left = ctx.load(nodes.at(my_node.saturating_sub(1))) as usize;
                    let right = ctx.load(nodes.at((my_node + 1).min(n - 1))) as usize;
                    let xi = ctx.load_f64(pos.at(i));
                    let f = ctx.load_f64(pos.at(left)) - 2.0 * xi + ctx.load_f64(pos.at(right));
                    ctx.store_f64(acc.at(i), f * 0.01);
                    ctx.store_f64(potential.at(i), f * f);
                    ctx.work(105);
                }
                ctx.barrier(bar);
                for i in lo..hi {
                    let a = ctx.load_f64(acc.at(i));
                    let x = ctx.load_f64(pos.at(i));
                    ctx.store_f64(pos.at(i), x + a);
                    ctx.work(35);
                }
                let _ = round;
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "barnes",
        suite: "splash2",
        uses_fp: true,
        expected_class: DetClass::Nondeterministic,
        expected_points: 2 + 1 + 2 * p.rounds + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 18 checking points (2 det / 16 ndet).
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        bodies_per_thread: 4,
        rounds: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::FpRound;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    #[test]
    fn only_the_pre_tree_barriers_are_deterministic() {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let report = Checker::new(
            CheckerConfig::new(Scheme::HwInc)
                .with_runs(10)
                .with_rounding(FpRound::default()),
        )
        .expect("valid config")
        .check(move || build())
        .unwrap();
        assert!(!report.is_deterministic());
        assert!(!report.det_at_end);
        assert!(report.distributions[0].is_deterministic());
        assert!(report.distributions[1].is_deterministic());
        assert!(!report.distributions[2].is_deterministic(), "tree barrier");
        assert_eq!(report.det_points, 2);
    }
}
