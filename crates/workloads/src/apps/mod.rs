//! One module per simulated application kernel.
//!
//! Every module follows the same shape: a `Params` struct (thread count
//! plus scale knobs), a `build(&Params) -> Program` constructor, and
//! `spec()` / `spec_scaled()` registry entries (paper-scale and
//! test-scale). Modules with seeded-bug variants (Figure 7) additionally
//! expose `spec_*_bug` constructors.

pub mod barnes;
pub mod blackscholes;
pub mod canneal;
pub mod cholesky;
pub mod fft;
pub mod fluidanimate;
pub mod lu;
pub mod ocean;
pub mod pbzip2;
pub mod radiosity;
pub mod radix;
pub mod sphinx3;
pub mod streamcluster;
pub mod swaptions;
pub mod volrend;
pub mod water;
