//! `volrend` (SPLASH-2) — volume rendering with a benign data race.
//!
//! Bit-by-bit deterministic and integer-only. Threads render disjoint
//! tiles of each frame, synchronizing mid-frame with a **hand-coded
//! sense-reversing spin barrier whose release flag is read/written with
//! racy plain accesses** — the benign race the paper calls out:
//! InstantCheck correctly classifies volrend as deterministic anyway,
//! because the race never changes the final state. One pthread barrier
//! per frame: 5 barriers + end = the 6 checking points of Table 1.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::{mix64, RacySenseBarrier};
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Frames rendered (one pthread barrier each).
    pub frames: usize,
    /// Pixels per thread per frame.
    pub pixels_per_thread: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            frames: 5,
            pixels_per_thread: 32,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let frames = p.frames;
    let chunk = p.pixels_per_thread;
    let width = threads * chunk;

    let mut b = ProgramBuilder::new(threads);
    let image = b.global("image", ValKind::U64, width);
    let opacity = b.global("opacity", ValKind::U64, width);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let volume = b.global("volume", ValKind::U64, 768);
    let rb = RacySenseBarrier::new(&mut b, "render_spin_barrier", threads);
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..768 {
            let v = s.input_rand(i as u64);
            s.store(volume.at(i), v);
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let lo = tid * chunk;
            let mut sense = 0u64;
            for frame in 0..frames {
                let _voxel = ctx.load(volume.at((frame * 31 + tid) % 768));
                // Pass 1: ray casting into the opacity buffer (disjoint
                // tiles).
                for i in lo..lo + chunk {
                    ctx.store(opacity.at(i), mix64((frame * width + i) as u64) >> 32);
                    ctx.work(105);
                }
                // Mid-frame sync through the racy hand-coded barrier:
                // compositing below reads *other* threads' opacity.
                rb.wait(ctx, &mut sense);
                // Pass 2: compositing (reads neighbors, writes own
                // tile).
                for i in lo..lo + chunk {
                    let left = ctx.load(opacity.at(i.saturating_sub(1)));
                    let own = ctx.load(opacity.at(i));
                    let right = ctx.load(opacity.at((i + 1).min(width - 1)));
                    ctx.store(image.at(i), own ^ (left >> 1) ^ (right >> 2));
                    ctx.work(56);
                }
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "volrend",
        suite: "splash2",
        uses_fp: false,
        expected_class: DetClass::BitExact,
        expected_points: p.frames + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 6 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        frames: 3,
        pixels_per_thread: 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantcheck::{Checker, CheckerConfig, Scheme};
    use tsim::{Addr, RunConfig, GLOBALS_BASE};

    #[test]
    fn image_is_schedule_independent_despite_the_benign_race() {
        let p = Params {
            threads: 4,
            frames: 2,
            pixels_per_thread: 4,
        };
        let a = build(&p).run(&RunConfig::random(1)).unwrap();
        let b = build(&p).run(&RunConfig::random(31337)).unwrap();
        for i in 0..16u64 {
            assert_eq!(
                a.final_word(Addr(GLOBALS_BASE + i)),
                b.final_word(Addr(GLOBALS_BASE + i)),
                "pixel {i}"
            );
        }
    }

    #[test]
    fn instantcheck_classifies_volrend_deterministic() {
        // The headline property: the hand-coded barrier races are benign
        // and InstantCheck sees through them.
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let report = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(8))
            .expect("valid config")
            .check(move || build())
            .unwrap();
        assert!(report.is_deterministic());
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
