//! `lu` (SPLASH-2) — dense LU factorization without pivoting.
//!
//! Bit-by-bit deterministic: at elimination step `k`, the rows below the
//! pivot are distributed round-robin over the threads, so every matrix
//! element is updated by exactly one thread in a fixed order. One
//! barrier per elimination step — 67 barriers + end = the 68 checking
//! points of Table 1.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, Region, ThreadCtx, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Matrix dimension (n×n); produces `n-1` barriers.
    pub n: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            n: 68,
        }
    }
}

fn at(m: Region, n: usize, r: usize, c: usize) -> tsim::Addr {
    m.at(r * n + c)
}

fn eliminate(ctx: &mut ThreadCtx, m: Region, n: usize, k: usize, r: usize) {
    let pivot = ctx.load_f64(at(m, n, k, k));
    let factor = ctx.load_f64(at(m, n, r, k)) / pivot;
    ctx.store_f64(at(m, n, r, k), factor); // store L entry in place
    for c in k + 1..n {
        let v = ctx.load_f64(at(m, n, r, c));
        let p = ctx.load_f64(at(m, n, k, c));
        ctx.store_f64(at(m, n, r, c), v - factor * p);
        ctx.work(42);
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let n = p.n;
    let threads = p.threads;
    let mut b = ProgramBuilder::new(threads);
    let m = b.global("matrix", ValKind::F64, n * n);
    let bar = b.barrier();

    b.setup(move |s| {
        for r in 0..n {
            for c in 0..n {
                // Diagonally dominant so no pivoting is needed.
                let v = if r == c {
                    n as f64 + 1.0 + unit_f64((r * n + c) as u64)
                } else {
                    unit_f64((r * n + c) as u64) - 0.5
                };
                s.store_f64(m.at(r * n + c), v);
            }
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            for k in 0..n - 1 {
                for r in k + 1..n {
                    if r % ctx.nthreads() == tid {
                        eliminate(ctx, m, n, k, r);
                    }
                }
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "lu",
        suite: "splash2",
        uses_fp: true,
        expected_class: DetClass::BitExact,
        expected_points: p.n, // (n-1) barriers + end
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 68 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params { threads: 4, n: 10 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{Addr, RunConfig, GLOBALS_BASE};

    fn read_matrix(out: &tsim::RunOutcome<tsim::NullMonitor>, n: usize) -> Vec<f64> {
        (0..n * n)
            .map(|i| out.final_f64(Addr(GLOBALS_BASE + i as u64)).unwrap())
            .collect()
    }

    #[test]
    fn factorization_is_schedule_independent() {
        let p = Params { threads: 4, n: 8 };
        let a = build(&p).run(&RunConfig::random(5)).unwrap();
        let b = build(&p).run(&RunConfig::random(55)).unwrap();
        let (ma, mb) = (read_matrix(&a, 8), read_matrix(&b, 8));
        assert_eq!(
            ma.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            mb.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lu_reconstructs_the_input() {
        let n = 6;
        let p = Params { threads: 2, n };
        let out = build(&p).run(&RunConfig::random(0)).unwrap();
        let f = read_matrix(&out, n);
        // Rebuild A = L*U from the in-place factors and compare to the
        // original input.
        for r in 0..n {
            for c in 0..n {
                let mut sum = 0.0;
                for k in 0..=r.min(c) {
                    let l = if k == r { 1.0 } else { f[r * n + k] };
                    let u = if k <= c { f[k * n + c] } else { 0.0 };
                    if k < r && k > c {
                        continue;
                    }
                    sum += l * u;
                }
                let orig = if r == c {
                    n as f64 + 1.0 + unit_f64((r * n + c) as u64)
                } else {
                    unit_f64((r * n + c) as u64) - 0.5
                };
                assert!(
                    (sum - orig).abs() < 1e-9,
                    "A[{r}][{c}] = {orig}, L*U = {sum}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
