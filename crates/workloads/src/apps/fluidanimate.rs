//! `fluidanimate` (PARSEC) — particle fluid simulation on a cell grid.
//!
//! Deterministic modulo FP precision: each thread owns a slab of cells,
//! but density and force contributions to the *border* cells between
//! slabs are accumulated by both neighboring threads under per-border
//! locks — so the border cells' last ulps depend on the accumulation
//! order. With FP round-off the kernel is deterministic. 8 timesteps ×
//! 5 phase barriers = 40 barriers + end = the 41 checking points of
//! Table 1.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads (one slab each).
    pub threads: usize,
    /// Cells per slab.
    pub cells_per_thread: usize,
    /// Timesteps (5 barriers each).
    pub timesteps: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            cells_per_thread: 16,
            timesteps: 8,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let chunk = p.cells_per_thread;
    let n = threads * chunk;
    let timesteps = p.timesteps;

    let mut b = ProgramBuilder::new(threads);
    let density = b.global("density", ValKind::F64, n);
    let force_g = b.global("force", ValKind::F64, n);
    let velocity = b.global("velocity", ValKind::F64, n);
    let position = b.global("position", ValKind::F64, n);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let kernel_table = b.global("kernel_table", ValKind::F64, 384);
    // One lock per slab border.
    let border_locks: Vec<_> = (0..threads).map(|_| b.mutex()).collect();
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..n {
            s.store_f64(position.at(i), unit_f64(i as u64) * 0.1 + i as f64);
            s.store_f64(velocity.at(i), 0.0);
        }
        for i in 0..384 {
            s.store_f64(kernel_table.at(i), unit_f64(i as u64 + 2_718));
        }
    });

    for tid in 0..threads {
        let locks = border_locks.clone();
        b.thread(move |ctx| {
            let lo = tid * chunk;
            let hi = lo + chunk;
            let left_border = lo; // shared with thread tid-1 (wraps)
            for ts in 0..timesteps {
                // Phase 1: rebuild grid (reset own densities/forces to
                // their per-cell base values; a nonzero base means the
                // border cells see three-term FP sums, whose rounding
                // depends on the association order).
                for i in lo..hi {
                    let x = ctx.load_f64(position.at(i));
                    ctx.store_f64(density.at(i), 1.0 + 0.01 * x.fract());
                    ctx.store_f64(force_g.at(i), 0.1 * x.fract());
                    ctx.work(14);
                }
                let _w = ctx.load_f64(kernel_table.at((ts * 11 + tid) % 384));
                ctx.barrier(bar);

                // Phase 2: densities. Interior cells are private; the
                // border cell is contributed to by both neighbors under
                // the border lock.
                for i in lo + 1..hi {
                    let x = ctx.load_f64(position.at(i));
                    let d = ctx.load_f64(density.at(i));
                    ctx.store_f64(density.at(i), d + 1.0 + 0.01 * x.fract());
                    ctx.work(56);
                }
                // Each border contribution is derived from this thread's
                // *own* interior, so the two neighbors contribute
                // different values to the shared cell.
                for &(cell, own, lock_idx) in &[
                    (left_border, lo + 1, tid),
                    (hi % n, hi - 1, (tid + 1) % threads),
                ] {
                    let x = ctx.load_f64(position.at(own));
                    ctx.lock(locks[lock_idx]);
                    let d = ctx.load_f64(density.at(cell));
                    ctx.store_f64(density.at(cell), d + 0.5 + 0.005 * x.fract());
                    ctx.unlock(locks[lock_idx]);
                    ctx.work(56);
                }
                ctx.barrier(bar);

                // Phase 3: forces (same sharing pattern as densities).
                for i in lo + 1..hi {
                    let d = ctx.load_f64(density.at(i));
                    let f = ctx.load_f64(force_g.at(i));
                    ctx.store_f64(force_g.at(i), f + 0.1 * (1.0 - d * 0.2));
                    ctx.work(56);
                }
                for &(cell, own, lock_idx) in &[
                    (left_border, lo + 1, tid),
                    (hi % n, hi - 1, (tid + 1) % threads),
                ] {
                    let d = ctx.load_f64(density.at(own));
                    ctx.lock(locks[lock_idx]);
                    let f = ctx.load_f64(force_g.at(cell));
                    ctx.store_f64(force_g.at(cell), f + 0.05 * (1.0 - d * 0.2));
                    ctx.unlock(locks[lock_idx]);
                    ctx.work(56);
                }
                ctx.barrier(bar);

                // Phase 4: collision handling (private).
                for i in lo..hi {
                    let f = ctx.load_f64(force_g.at(i));
                    ctx.store_f64(force_g.at(i), f.clamp(-1.0, 1.0));
                    ctx.work(21);
                }
                ctx.barrier(bar);

                // Phase 5: advance particles (private).
                for i in lo..hi {
                    let f = ctx.load_f64(force_g.at(i));
                    let v = ctx.load_f64(velocity.at(i)) * 0.99 + 0.01 * f;
                    ctx.store_f64(velocity.at(i), v);
                    let x = ctx.load_f64(position.at(i)) + 0.01 * v;
                    ctx.store_f64(position.at(i), x);
                    ctx.work(35);
                }
                let _ = ts;
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "fluidanimate",
        suite: "parsec",
        uses_fp: true,
        expected_class: DetClass::FpRounded,
        expected_points: p.timesteps * 5 + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 41 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        cells_per_thread: 4,
        timesteps: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::FpRound;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    #[test]
    fn fp_prec_class() {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let exact = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(8))
            .expect("valid config")
            .check(move || build())
            .unwrap();
        assert!(!exact.is_deterministic(), "border-cell ulp noise expected");

        let build = Arc::clone(&spec.build);
        let rounded = Checker::new(
            CheckerConfig::new(Scheme::HwInc)
                .with_runs(8)
                .with_rounding(FpRound::default()),
        )
        .expect("valid config")
        .check(move || build())
        .unwrap();
        assert!(rounded.is_deterministic());
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&tsim::RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
