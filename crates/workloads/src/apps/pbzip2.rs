//! `pbzip2` (open source) — producer/consumer parallel compression.
//!
//! Very high *internal* nondeterminism (consumers race for jobs created
//! by the producer) but externally deterministic — except for a single
//! dangling-pointer field: each consumer compresses through a scratch
//! buffer it allocates itself, records the buffer's address in the job's
//! result record, and frees the buffer. The freed memory leaves the
//! program state, but the **dangling pointer value remains** and is
//! schedule-dependent (which consumer allocated it, and when). Ignoring
//! that one word per record makes pbzip2 externally deterministic —
//! Table 1's "small-struct" class. The compressed output stream, hashed
//! at the `write()` boundary (§4.3), is deterministic.
//!
//! No barriers: the only checking point is the end of the program
//! (Table 1: 1 point).

use std::sync::Arc;

use instantcheck::{DetClass, IgnoreSpec};
use tsim::{Program, ProgramBuilder, TypeTag, ValKind};

use crate::util::mix64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Threads (thread 0 is the producer/writer, the rest consume).
    pub threads: usize,
    /// Number of compression jobs.
    pub jobs: usize,
    /// Input words per job.
    pub chunk: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            jobs: 24,
            chunk: 16,
        }
    }
}

/// Result record layout: `[digest, dangling scratch pointer]`.
const REC_WORDS: usize = 2;

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let jobs = p.jobs;
    let chunk = p.chunk;
    let n = jobs * chunk;

    let mut b = ProgramBuilder::new(threads);
    let input = b.global("input", ValKind::U64, n);
    let recs = b.global("rec_ptrs", ValKind::U64, jobs);
    let produced = b.global("produced", ValKind::U64, 1);
    let claimed = b.global("claimed", ValKind::U64, 1);
    let completed = b.global("completed", ValKind::U64, 1);
    let qlock = b.mutex();
    let qcond = b.condvar();
    let dlock = b.mutex();
    let dcond = b.condvar();

    b.setup(move |s| {
        for i in 0..n {
            s.store(input.at(i), mix64(i as u64));
        }
        // Result records are pre-allocated at fixed addresses so that
        // only the scratch-pointer *field* is nondeterministic (the
        // paper's pbzip2 analysis isolates exactly that field).
        for j in 0..jobs {
            // The record is a 2-word struct (digest, scratch pointer);
            // the explicit 2-word tag lets the ignore-spec address the
            // pointer *field*.
            let r = s.malloc(
                "result_rec",
                TypeTag::of(vec![ValKind::U64; REC_WORDS]),
                REC_WORDS,
            );
            s.store(recs.at(j), r.raw());
        }
    });

    // Producer (thread 0): publishes jobs, then writes the output stream
    // in job order once all jobs completed.
    b.thread(move |ctx| {
        for _ in 0..jobs {
            ctx.lock(qlock);
            let np = ctx.load(produced.at(0));
            ctx.store(produced.at(0), np + 1);
            ctx.cond_broadcast(qcond);
            ctx.unlock(qlock);
            ctx.work(140); // reading the next file chunk
        }
        // Wait for the consumers.
        ctx.lock(dlock);
        while ctx.load(completed.at(0)) < jobs as u64 {
            ctx.cond_wait(dcond, dlock);
        }
        ctx.unlock(dlock);
        // Ordered output: deterministic stream regardless of which
        // consumer compressed which job.
        for j in 0..jobs {
            let rec = tsim::Addr(ctx.load(recs.at(j)));
            let digest = ctx.load(rec);
            ctx.write_output(&digest.to_le_bytes());
        }
    });

    // Consumers.
    for _tid in 1..threads {
        b.thread(move |ctx| {
            loop {
                ctx.lock(qlock);
                loop {
                    let c = ctx.load(claimed.at(0));
                    if c >= jobs as u64 {
                        ctx.unlock(qlock);
                        return;
                    }
                    if c < ctx.load(produced.at(0)) {
                        ctx.store(claimed.at(0), c + 1);
                        if c + 1 == jobs as u64 {
                            // Wake consumers still waiting for work so
                            // they can observe that the queue is done.
                            ctx.cond_broadcast(qcond);
                        }
                        ctx.unlock(qlock);
                        // Compress job `c`.
                        let j = c as usize;
                        let scratch = ctx.malloc("scratch_buf", TypeTag::u64s(), chunk);
                        let mut digest = 0u64;
                        for i in 0..chunk {
                            let w = ctx.load(input.at(j * chunk + i));
                            let z = mix64(w ^ (i as u64)); // "compression"
                            ctx.store(scratch.offset(i as u64), z);
                            digest = mix64(digest ^ z);
                            ctx.work(175);
                        }
                        let rec = tsim::Addr(ctx.load(recs.at(j)));
                        ctx.store(rec, digest);
                        // The dangling pointer of the paper: recorded,
                        // then the buffer is freed.
                        ctx.store(rec.offset(1), scratch.raw());
                        ctx.free(scratch);
                        // Signal completion.
                        ctx.lock(dlock);
                        let done = ctx.load(completed.at(0)) + 1;
                        ctx.store(completed.at(0), done);
                        if done == jobs as u64 {
                            ctx.cond_broadcast(dcond);
                        }
                        ctx.unlock(dlock);
                        break;
                    }
                    ctx.cond_wait(qcond, qlock);
                }
            }
        });
    }
    b.build()
}

fn ignore_spec() -> IgnoreSpec {
    IgnoreSpec::new().ignore_site_offsets("result_rec", [1])
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "pbzip2",
        suite: "openSrc",
        uses_fp: false,
        expected_class: DetClass::IgnoringStructs,
        expected_points: 1,
        ignore: ignore_spec(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 1 checking point (end of program).
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        jobs: 8,
        chunk: 4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    fn campaign(runs: usize, ignore: bool) -> instantcheck::CheckReport {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let mut cfg = CheckerConfig::new(Scheme::HwInc).with_runs(runs);
        if ignore {
            cfg = cfg.with_ignore(spec.ignore.clone());
        }
        Checker::new(cfg)
            .expect("valid config")
            .check(move || build())
            .unwrap()
    }

    #[test]
    fn dangling_pointers_are_the_only_nondeterminism() {
        let raw = campaign(10, false);
        assert!(!raw.is_deterministic(), "dangling pointers expected");
        assert!(raw.output_deterministic, "the compressed stream is stable");
        let isolated = campaign(10, true);
        assert!(isolated.is_deterministic());
    }

    #[test]
    fn output_is_the_compression_of_the_input_in_order() {
        let p = Params {
            threads: 3,
            jobs: 4,
            chunk: 4,
        };
        let out = build(&p).run(&tsim::RunConfig::random(5)).unwrap();
        assert_eq!(out.output.len(), 4 * 8);
        // Recompute the expected digests.
        for j in 0..4usize {
            let mut digest = 0u64;
            for i in 0..4usize {
                let w = mix64((j * 4 + i) as u64);
                digest = mix64(digest ^ mix64(w ^ i as u64));
            }
            let got = u64::from_le_bytes(out.output[j * 8..(j + 1) * 8].try_into().unwrap());
            assert_eq!(got, digest, "job {j}");
        }
    }

    #[test]
    fn scratch_buffers_are_freed() {
        let p = Params {
            threads: 3,
            jobs: 4,
            chunk: 4,
        };
        let out = build(&p).run(&tsim::RunConfig::random(1)).unwrap();
        let view = out.final_state();
        assert_eq!(view.blocks_at_site("scratch_buf").count(), 0);
        assert_eq!(view.blocks_at_site("result_rec").count(), 4);
    }
}
