//! `ocean` (SPLASH-2) — red-black grid relaxation.
//!
//! Deterministic modulo FP precision: the grid sweeps write disjoint
//! row bands, but every sweep also accumulates a global residual under a
//! lock, whose last ulps depend on the accumulation order. 435
//! relaxation iterations × 2 barriers = 870 barriers + end = the 871
//! checking points of Table 1.
//!
//! Between two checkpoints only a small fraction of the state changes
//! (one band sweep + the residual) relative to the grid size, which is
//! why incremental hashing beats traversal hashing here (Figure 6).

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads (one row band each).
    pub threads: usize,
    /// Grid rows per thread.
    pub rows_per_thread: usize,
    /// Grid columns.
    pub cols: usize,
    /// Relaxation iterations (2 barriers each).
    pub iterations: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            rows_per_thread: 4,
            cols: 24,
            iterations: 435,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let rows = threads * p.rows_per_thread;
    let cols = p.cols;
    let band = p.rows_per_thread;
    let iterations = p.iterations;

    let mut b = ProgramBuilder::new(threads);
    let grid = b.global("grid", ValKind::F64, rows * cols);
    let residual = b.global("residual", ValKind::F64, 1);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let bathymetry = b.global("bathymetry", ValKind::F64, 512);
    let lock = b.mutex();
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..rows * cols {
            s.store_f64(grid.at(i), unit_f64(i as u64));
        }
        for i in 0..512 {
            s.store_f64(bathymetry.at(i), unit_f64(i as u64 + 7_777));
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let r0 = tid * band;
            for iter in 0..iterations {
                // Red sweep: update alternating cells of the band from
                // their neighbors (neighbor rows are stable during the
                // sweep because black cells are untouched).
                let mut local_res = 0.0;
                for r in r0..r0 + band {
                    for c in 0..cols {
                        if (r + c + iter) % 2 == 0 {
                            continue;
                        }
                        let i = r * cols + c;
                        let up = if r > 0 {
                            ctx.load_f64(grid.at(i - cols))
                        } else {
                            0.0
                        };
                        let down = if r + 1 < rows {
                            ctx.load_f64(grid.at(i + cols))
                        } else {
                            0.0
                        };
                        let left = if c > 0 {
                            ctx.load_f64(grid.at(i - 1))
                        } else {
                            0.0
                        };
                        let right = if c + 1 < cols {
                            ctx.load_f64(grid.at(i + 1))
                        } else {
                            0.0
                        };
                        let old = ctx.load_f64(grid.at(i));
                        let new = 0.2 * (old + up + down + left + right);
                        ctx.store_f64(grid.at(i), new);
                        local_res += (new - old).abs();
                        ctx.work(63);
                    }
                }
                let _depth = ctx.load_f64(bathymetry.at(iter % 512));
                ctx.barrier(bar);
                // Residual reduction: locked, order-dependent ulps.
                ctx.lock(lock);
                let r = ctx.load_f64(residual.at(0));
                ctx.store_f64(residual.at(0), r + local_res);
                ctx.unlock(lock);
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "ocean",
        suite: "splash2",
        uses_fp: true,
        expected_class: DetClass::FpRounded,
        expected_points: p.iterations * 2 + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 871 checking points.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        rows_per_thread: 2,
        cols: 8,
        iterations: 4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::FpRound;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    #[test]
    fn fp_prec_class() {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let exact = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(8))
            .expect("valid config")
            .check(move || build())
            .unwrap();
        assert!(!exact.is_deterministic(), "residual ulp noise expected");

        let build = Arc::clone(&spec.build);
        let rounded = Checker::new(
            CheckerConfig::new(Scheme::HwInc)
                .with_runs(8)
                .with_rounding(FpRound::default()),
        )
        .expect("valid config")
        .check(move || build())
        .unwrap();
        assert!(rounded.is_deterministic());
    }

    #[test]
    fn grid_itself_is_bitwise_deterministic() {
        // Only the residual carries ulp noise; the grid cells must be
        // bitwise identical across schedules.
        let p = Params {
            threads: 4,
            rows_per_thread: 2,
            cols: 8,
            iterations: 3,
        };
        let a = build(&p).run(&tsim::RunConfig::random(3)).unwrap();
        let b = build(&p).run(&tsim::RunConfig::random(17)).unwrap();
        for i in 0..64u64 {
            assert_eq!(
                a.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)),
                b.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)),
                "cell {i}"
            );
        }
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&tsim::RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
