//! `canneal` (PARSEC) — simulated annealing of a netlist.
//!
//! **Nondeterministic by algorithm**: threads repeatedly swap netlist
//! elements chosen by a *shared* random number generator (a word of
//! state mutated under a lock), so the sequence of random draws each
//! thread sees — and therefore the whole annealing trajectory — depends
//! on the schedule from the very first step. Every one of the 64
//! checking points (63 barriers + end) is nondeterministic in Table 1.
//! Contrast with `swaptions`, whose thread-local generators keep a Monte
//! Carlo simulation deterministic.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::mix64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Netlist elements.
    pub elements: usize,
    /// Annealing temperature steps (one barrier each).
    pub steps: usize,
    /// Swaps attempted per thread per step.
    pub swaps_per_step: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            elements: 64,
            steps: 63,
            swaps_per_step: 2,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let n = p.elements;
    let steps = p.steps;
    let swaps = p.swaps_per_step;

    let mut b = ProgramBuilder::new(threads);
    let netlist = b.global("netlist", ValKind::U64, n);
    let rng = b.global("shared_rng", ValKind::U64, 1);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let wire_costs = b.global("wire_costs", ValKind::U64, 384);
    let lock = b.mutex();
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..n {
            s.store(netlist.at(i), i as u64);
        }
        s.store(rng.at(0), 0x1234_5678_9abc_def0);
        for i in 0..384 {
            s.store(wire_costs.at(i), mix64(i as u64 + 99) >> 32);
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let mut probe = tid as u64;
            let _ = &mut probe;
            for _step in 0..steps {
                for _ in 0..swaps {
                    // Draw two positions from the shared RNG; the draw
                    // order across threads is schedule-dependent.
                    ctx.lock(lock);
                    let r1 = mix64(ctx.load(rng.at(0)));
                    let r2 = mix64(r1);
                    ctx.store(rng.at(0), r2);
                    // The swap positions mix in the drawing thread's id
                    // (each thread perturbs its own movable elements), so
                    // *which* thread drew matters, not just the order.
                    let i = (mix64(r1 ^ tid as u64) % n as u64) as usize;
                    let j = (mix64(r2 ^ tid as u64) % n as u64) as usize;
                    let a = ctx.load(netlist.at(i));
                    let c = ctx.load(netlist.at(j));
                    ctx.store(netlist.at(i), c);
                    ctx.store(netlist.at(j), a);
                    ctx.unlock(lock);
                    probe = probe.wrapping_add(1);
                    let _cost = ctx.load(wire_costs.at((probe % 384) as usize));
                    ctx.work(210); // routing-cost evaluation
                }
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "canneal",
        suite: "parsec",
        uses_fp: false,
        expected_class: DetClass::Nondeterministic,
        expected_points: p.steps + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 64 checking points, all nondeterministic.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        elements: 16,
        steps: 5,
        swaps_per_step: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    #[test]
    fn every_checkpoint_is_nondeterministic() {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let report = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(10))
            .expect("valid config")
            .check(move || build())
            .unwrap();
        assert!(!report.is_deterministic());
        assert_eq!(report.det_points, 0, "Table 1: canneal has 0 det points");
        assert!(!report.det_at_end);
        assert!(report.first_ndet_run.unwrap() <= 3);
    }

    #[test]
    fn netlist_stays_a_permutation() {
        let p = Params {
            threads: 4,
            elements: 16,
            steps: 3,
            swaps_per_step: 2,
        };
        let out = build(&p).run(&tsim::RunConfig::random(7)).unwrap();
        let mut seen: Vec<u64> = (0..16u64)
            .map(|i| out.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)).unwrap())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16u64).collect::<Vec<_>>());
    }
}
