//! `radiosity` (SPLASH-2) — hierarchical radiosity with task stealing.
//!
//! **Nondeterministic**: patches are claimed from a shared work counter,
//! and each patch records bookkeeping that depends on *which* thread
//! processed it (per-thread interaction budgets, visit counters) — a
//! faithful miniature of radiosity's schedule-dependent task structures.
//! All 19 checking points (18 barriers + end) are nondeterministic in
//! Table 1.

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::mix64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Patches per round.
    pub patches: usize,
    /// Task rounds (one barrier each).
    pub rounds: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            patches: 32,
            rounds: 18,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let patches = p.patches;
    let rounds = p.rounds;

    let mut b = ProgramBuilder::new(threads);
    // Per patch: [radiosity value, processed_by bookkeeping].
    let energy = b.global("patch_energy", ValKind::U64, patches);
    let owner = b.global("patch_owner", ValKind::U64, patches);
    let counter = b.global("work_counters", ValKind::U64, rounds);
    let done_by = b.global("tasks_done_by", ValKind::U64, threads);
    // Read-mostly model data: part of the state the traversal scheme
    // must hash at every checkpoint, but touched only rarely natively.
    let form_factors = b.global("form_factors", ValKind::U64, 384);
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..patches {
            s.store(energy.at(i), mix64(i as u64) >> 40);
        }
        for i in 0..384 {
            s.store(form_factors.at(i), mix64(i as u64 + 404) >> 24);
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            for round in 0..rounds {
                // Work stealing: claim patches until the round's budget
                // is exhausted; which thread gets which patch depends
                // on the schedule.
                loop {
                    let k = ctx.fetch_add(counter.at(round), 1);
                    if k >= patches as u64 {
                        break;
                    }
                    let i = k as usize;
                    let _ff = ctx.load(form_factors.at((i * 13) % 384));
                    let e = ctx.load(energy.at(i));
                    ctx.store(energy.at(i), (e * 3).div_ceil(2));
                    // Schedule-dependent bookkeeping: who did it, and
                    // each thread's running tally.
                    ctx.store(owner.at(i), tid as u64);
                    let t = ctx.load(done_by.at(tid));
                    ctx.store(done_by.at(tid), t + 1);
                    ctx.work(175);
                }
                ctx.barrier(bar);
            }
        });
    }
    b.build()
}

fn make_spec(p: Params) -> AppSpec {
    AppSpec {
        name: "radiosity",
        suite: "splash2",
        uses_fp: false,
        expected_class: DetClass::Nondeterministic,
        expected_points: p.rounds + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 19 checking points, all nondeterministic.
pub fn spec() -> AppSpec {
    make_spec(Params::default())
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(Params {
        threads: 4,
        patches: 12,
        rounds: 4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    #[test]
    fn all_points_nondeterministic_but_energies_converge() {
        let spec = spec_scaled();
        let build = Arc::clone(&spec.build);
        let report = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(10))
            .expect("valid config")
            .check(move || build())
            .unwrap();
        assert!(!report.is_deterministic());
        assert_eq!(report.det_points, 0, "Table 1: radiosity has 0 det points");
        assert!(!report.det_at_end);
    }

    #[test]
    fn every_patch_is_processed_every_round() {
        let p = Params {
            threads: 4,
            patches: 8,
            rounds: 2,
        };
        let a = build(&p).run(&tsim::RunConfig::random(3)).unwrap();
        let b = build(&p).run(&tsim::RunConfig::random(4)).unwrap();
        // The energy values themselves are schedule-independent (the
        // transform is applied exactly once per round per patch)…
        for i in 0..8u64 {
            assert_eq!(
                a.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)),
                b.final_word(tsim::Addr(tsim::GLOBALS_BASE + i)),
            );
        }
    }
}
