//! `radix` (SPLASH-2) — parallel LSD radix sort of integer keys.
//!
//! Bit-by-bit deterministic (no FP at all): each pass computes disjoint
//! per-thread histograms, thread 0 turns them into per-(digit, thread)
//! scatter offsets, and each thread scatters its chunk into destination
//! slots that are disjoint by construction. Four 4-bit passes over
//! 16-bit keys give 4×3−1 = 11 barriers + end = the 12 checking points
//! of Table 1.
//!
//! The `order_violation` variant seeds the Figure 7(c) bug: in the third
//! pass, thread 3 performs its scatter *before* the scan barrier — once
//! (`justOnce`) — racing with thread 0's offset computation. The scatter
//! destinations are taken modulo the array size so the bug corrupts data
//! instead of crashing (the paper makes the same arrangement).

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, Region, ThreadCtx, ValKind};

use crate::util::mix64;
use crate::{AppSpec, THREADS};

const DIGIT_BITS: u32 = 4;
const RADIX: usize = 1 << DIGIT_BITS;
const PASSES: usize = 4; // 16-bit keys

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Keys per thread.
    pub keys_per_thread: usize,
    /// Seed the Figure 7(c) order violation in thread 3, pass 3.
    pub seed_order_violation: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            threads: THREADS,
            keys_per_thread: 64,
            seed_order_violation: false,
        }
    }
}

struct Arrays {
    bufs: [Region; 2],
    hist: Region,    // [thread][digit]
    offsets: Region, // [digit][thread]
}

fn digit(key: u64, pass: usize) -> usize {
    ((key >> (pass as u32 * DIGIT_BITS)) & (RADIX as u64 - 1)) as usize
}

fn scatter_chunk(
    ctx: &mut ThreadCtx,
    a: &Arrays,
    pass: usize,
    tid: usize,
    lo: usize,
    hi: usize,
    n: usize,
) {
    let src = a.bufs[pass % 2];
    let dst = a.bufs[(pass + 1) % 2];
    let threads = ctx.nthreads();
    // Local cursors per digit, starting at this thread's offsets.
    let mut cursor = [0u64; RADIX];
    for (d, c) in cursor.iter_mut().enumerate() {
        *c = ctx.load(a.offsets.at(d * threads + tid));
    }
    for i in lo..hi {
        let key = ctx.load(src.at(i));
        let d = digit(key, pass);
        let pos = (cursor[d] as usize) % n; // clamp: the seeded bug may
                                            // read garbage offsets
        ctx.store(dst.at(pos), key);
        cursor[d] += 1;
        ctx.work(56);
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let n = threads * p.keys_per_thread;
    let chunk = p.keys_per_thread;
    let seed_bug = p.seed_order_violation;

    let mut b = ProgramBuilder::new(threads);
    let buf0 = b.global("keys0", ValKind::U64, n);
    let buf1 = b.global("keys1", ValKind::U64, n);
    let hist = b.global("hist", ValKind::U64, threads * RADIX);
    let offsets = b.global("offsets", ValKind::U64, RADIX * threads);
    let bar = b.barrier();

    b.setup(move |s| {
        for i in 0..n {
            s.store(buf0.at(i), mix64(i as u64) & 0xFFFF);
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            let a = Arrays {
                bufs: [buf0, buf1],
                hist,
                offsets,
            };
            let lo = tid * chunk;
            let hi = lo + chunk;
            let mut did_buggy_scatter = false;
            for pass in 0..PASSES {
                let src = a.bufs[pass % 2];
                // Phase 1: local histogram (disjoint rows).
                for d in 0..RADIX {
                    ctx.store(a.hist.at(tid * RADIX + d), 0);
                }
                for i in lo..hi {
                    let key = ctx.load(src.at(i));
                    let d = digit(key, pass);
                    let h = a.hist.at(tid * RADIX + d);
                    let v = ctx.load(h);
                    ctx.store(h, v + 1);
                    ctx.work(42);
                }
                ctx.barrier(bar);

                // Seeded order violation (Figure 7(c)): thread 3, pass 3,
                // exactly once — scatter *before* the scan barrier,
                // racing with thread 0's offset writes below.
                if seed_bug && tid == 3 && pass == 2 && !did_buggy_scatter {
                    did_buggy_scatter = true;
                    scatter_chunk(ctx, &a, pass, tid, lo, hi, n);
                }

                // Phase 2: thread 0 computes exclusive prefix offsets in
                // (digit, thread) order.
                if tid == 0 {
                    let mut running = 0u64;
                    for d in 0..RADIX {
                        for t in 0..ctx.nthreads() {
                            ctx.store(a.offsets.at(d * ctx.nthreads() + t), running);
                            running += ctx.load(a.hist.at(t * RADIX + d));
                            ctx.work(28);
                        }
                    }
                }
                ctx.barrier(bar);

                // Phase 3: scatter into disjoint destination slots.
                if !(seed_bug && tid == 3 && pass == 2) {
                    scatter_chunk(ctx, &a, pass, tid, lo, hi, n);
                }
                if pass != PASSES - 1 {
                    ctx.barrier(bar);
                }
            }
        });
    }
    b.build()
}

fn make_spec(p: Params, name: &'static str, class: DetClass) -> AppSpec {
    AppSpec {
        name,
        suite: "splash2",
        uses_fp: false,
        expected_class: class,
        expected_points: PASSES * 3, // 11 barriers + end
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale: 12 checking points, deterministic.
pub fn spec() -> AppSpec {
    make_spec(Params::default(), "radix", DetClass::BitExact)
}

/// Miniature for tests.
pub fn spec_scaled() -> AppSpec {
    make_spec(
        Params {
            threads: 4,
            keys_per_thread: 16,
            ..Params::default()
        },
        "radix",
        DetClass::BitExact,
    )
}

/// The Figure 7(c) seeded order violation (Table 2 row 3).
pub fn spec_order_violation() -> AppSpec {
    make_spec(
        Params {
            seed_order_violation: true,
            ..Params::default()
        },
        "radix+order-violation",
        DetClass::Nondeterministic,
    )
}

/// Miniature of the seeded variant.
pub fn spec_order_violation_scaled() -> AppSpec {
    make_spec(
        Params {
            threads: 4,
            keys_per_thread: 16,
            seed_order_violation: true,
        },
        "radix+order-violation",
        DetClass::Nondeterministic,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{Addr, RunConfig, GLOBALS_BASE};

    fn final_keys(out: &tsim::RunOutcome<tsim::NullMonitor>, n: usize) -> Vec<u64> {
        // PASSES is even, so the sorted output lands back in buf0.
        (0..n)
            .map(|i| out.final_word(Addr(GLOBALS_BASE + i as u64)).unwrap())
            .collect()
    }

    #[test]
    fn sorts_correctly_under_any_schedule() {
        let p = Params {
            threads: 4,
            keys_per_thread: 16,
            ..Params::default()
        };
        let n = 64;
        for seed in [0, 9, 42] {
            let out = build(&p).run(&RunConfig::random(seed)).unwrap();
            let keys = final_keys(&out, n);
            let mut expect: Vec<u64> = (0..n).map(|i| mix64(i as u64) & 0xFFFF).collect();
            expect.sort_unstable();
            assert_eq!(keys, expect, "seed {seed}");
        }
    }

    #[test]
    fn order_violation_corrupts_some_runs() {
        let p = Params {
            threads: 4,
            keys_per_thread: 16,
            seed_order_violation: true,
        };
        let n = 64;
        let mut expect: Vec<u64> = (0..n).map(|i| mix64(i as u64) & 0xFFFF).collect();
        expect.sort_unstable();
        let mut corrupted = 0;
        for seed in 0..12 {
            let out = build(&p).run(&RunConfig::random(seed)).unwrap();
            if final_keys(&out, n) != expect {
                corrupted += 1;
            }
        }
        assert!(
            corrupted > 0,
            "the race should corrupt at least one schedule"
        );
        assert!(
            corrupted < 12,
            "when thread 0 wins the race, output is correct"
        );
    }

    #[test]
    fn checkpoint_count_matches() {
        let spec = spec_scaled();
        let out = spec.build().run(&RunConfig::random(0)).unwrap();
        assert_eq!(out.checkpoints as usize, spec.expected_points);
    }
}
