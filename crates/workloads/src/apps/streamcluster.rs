//! `streamcluster` (PARSEC) — the paper's headline anecdote.
//!
//! The kernel runs a long sequence of barrier-delimited clustering
//! iterations. Fixed, it is bit-by-bit deterministic. The *buggy*
//! variant reproduces the real order-violation race InstantCheck found
//! in PARSEC 2.1 streamcluster: inside a window of iterations, the
//! coordinator thread publishes the updated center *after* the barrier
//! instead of before it, so worker reads of the center in the next
//! iteration race with the write. The corrupted scratch values are
//! rewritten deterministically once the window passes, so the
//! nondeterminism shows at exactly the window's barriers and is *masked
//! by the end of the run* — it is caught only because InstantCheck
//! checks at every dynamic barrier (74 of 13002 points in the paper).

use std::sync::Arc;

use instantcheck::DetClass;
use tsim::{Program, ProgramBuilder, ValKind};

use crate::util::unit_f64;
use crate::{AppSpec, THREADS};

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads (thread 0 is also the coordinator).
    pub threads: usize,
    /// Barrier-delimited iterations.
    pub iterations: usize,
    /// First buggy iteration (ignored unless `buggy`).
    pub bug_start: usize,
    /// Number of buggy iterations.
    pub bug_len: usize,
    /// Seed the order-violation race.
    pub buggy: bool,
    /// Size of the (read-mostly) point set. The large static state is
    /// what makes traversal hashing expensive here relative to the few
    /// writes between barriers (Figure 6).
    pub points: usize,
}

impl Default for Params {
    fn default() -> Self {
        // 13001 barriers + end = 13002 checking points; 74 buggy.
        Params {
            threads: THREADS,
            iterations: 13_001,
            bug_start: 3_000,
            bug_len: 74,
            buggy: true,
            points: 2000,
        }
    }
}

/// Builds the program.
pub fn build(p: &Params) -> Program {
    let threads = p.threads;
    let iterations = p.iterations;
    let bug = p.buggy.then_some((p.bug_start, p.bug_start + p.bug_len));

    let npoints = p.points;
    let mut b = ProgramBuilder::new(threads);
    // Double-buffered: iteration i reads center[i % 2] and the
    // coordinator publishes center[(i + 1) % 2], so correct code has no
    // read/write conflict within an iteration.
    let center = b.global("center", ValKind::F64, 2);
    let scratch = b.global("scratch", ValKind::F64, threads);
    let cost = b.global("cost", ValKind::F64, threads);
    let points = b.global("points", ValKind::F64, npoints);
    let bar = b.barrier();

    b.setup(move |s| {
        s.store_f64(center.at(0), 1.0);
        s.store_f64(center.at(1), 1.0);
        for i in 0..npoints {
            s.store_f64(points.at(i), unit_f64(i as u64 + 900_000));
        }
    });

    for tid in 0..threads {
        b.thread(move |ctx| {
            for i in 0..iterations {
                // Every worker evaluates the current center against its
                // slice of the points and records a per-thread cost.
                let c = ctx.load_f64(center.at(i % 2));
                let pt = ctx.load_f64(points.at((i * 7 + tid * 13) % npoints));
                let local = (c * 0.9 + pt + unit_f64((i * 31 + tid) as u64)).fract();
                ctx.store_f64(scratch.at(tid), local);
                // Overwritten every iteration: corruption in the bug
                // window does not persist past it.
                ctx.store_f64(cost.at(tid), local * 1.5);
                ctx.work(175);

                let in_bug_window = bug.is_some_and(|(lo, hi)| i >= lo && i < hi);
                // The coordinator publishes the next center. Correct
                // code publishes *before* the barrier so workers' reads
                // in iteration i+1 are ordered after the write.
                if tid == 0 && !in_bug_window {
                    ctx.store_f64(center.at((i + 1) % 2), unit_f64(i as u64) + 0.25);
                }
                ctx.barrier(bar);
                if tid == 0 && in_bug_window {
                    // ORDER VIOLATION: the publish slid past the
                    // barrier; workers already started iteration i+1 and
                    // race with this store.
                    ctx.store_f64(center.at((i + 1) % 2), unit_f64(i as u64) + 0.25);
                }
            }
        });
    }
    b.build()
}

fn make_spec(p: Params, name: &'static str, class: DetClass) -> AppSpec {
    AppSpec {
        name,
        suite: "parsec",
        uses_fp: true,
        expected_class: class,
        expected_points: p.iterations + 1,
        ignore: instantcheck::IgnoreSpec::new(),
        build: Arc::new(move || build(&p)),
    }
}

/// Paper scale, original buggy code (v2.1): 13002 checking points, 74 of
/// them nondeterministic, deterministic at the end. The paper's Table 1
/// groups this with the bit-by-bit deterministic applications (starred).
pub fn spec_buggy() -> AppSpec {
    make_spec(Params::default(), "streamcluster", DetClass::BitExact)
}

/// Paper scale, with the bug fixed: fully bit-by-bit deterministic.
pub fn spec_fixed() -> AppSpec {
    make_spec(
        Params {
            buggy: false,
            ..Params::default()
        },
        "streamcluster-fixed",
        DetClass::BitExact,
    )
}

/// Miniature buggy variant for tests.
pub fn spec_buggy_scaled() -> AppSpec {
    make_spec(
        Params {
            threads: 4,
            iterations: 60,
            bug_start: 20,
            bug_len: 6,
            buggy: true,
            points: 64,
        },
        "streamcluster",
        DetClass::BitExact,
    )
}

/// Miniature fixed variant for tests.
pub fn spec_fixed_scaled() -> AppSpec {
    make_spec(
        Params {
            threads: 4,
            iterations: 60,
            bug_start: 20,
            bug_len: 6,
            buggy: false,
            points: 64,
        },
        "streamcluster-fixed",
        DetClass::BitExact,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantcheck::{Checker, CheckerConfig, Scheme};

    fn campaign(spec: &AppSpec, runs: usize) -> instantcheck::CheckReport {
        let build = Arc::clone(&spec.build);
        Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(runs))
            .expect("valid config")
            .check(move || build())
            .unwrap()
    }

    #[test]
    fn fixed_variant_is_bit_exact_deterministic() {
        let report = campaign(&spec_fixed_scaled(), 8);
        assert!(report.is_deterministic());
        assert_eq!(report.aligned_checkpoints, 61);
    }

    #[test]
    fn buggy_variant_is_nondet_only_in_the_window_and_masked_at_end() {
        let report = campaign(&spec_buggy_scaled(), 10);
        assert!(!report.is_deterministic());
        assert!(report.det_at_end, "the bug is masked by the end of the run");
        // Nondeterministic barriers are exactly the window's barriers
        // (i+1 for each buggy iteration i in [20, 26)).
        let ndet: Vec<usize> = (0..report.aligned_checkpoints)
            .filter(|&i| !report.distributions[i].is_deterministic())
            .collect();
        assert!(!ndet.is_empty());
        assert!(
            ndet.iter().all(|&i| (21..=26).contains(&i)),
            "nondet checkpoints {ndet:?} escape the bug window"
        );
        assert!(
            ndet.len() >= 3,
            "most window barriers should catch it: {ndet:?}"
        );
    }

    #[test]
    fn bug_is_invisible_if_you_only_check_the_end() {
        // The paper's point: checking only at the end misses the bug.
        let report = campaign(&spec_buggy_scaled(), 10);
        let end = report.distributions.last().unwrap();
        assert!(end.is_deterministic());
    }
}
