//! `instantcheck` — checking external determinism of parallel programs
//! with on-the-fly incremental memory-state hashing.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Nistor, Marinov, Torrellas, *InstantCheck*, MICRO 2010). A parallel
//! program is **externally deterministic** if, for a fixed input, every
//! run ends in the same memory state — regardless of how the runs behave
//! *internally* (different interleavings, different intermediate values,
//! even benign races). InstantCheck checks this property during ordinary
//! multi-run testing by distilling the memory state into a 64-bit hash
//! and comparing the hashes of different runs at every barrier, at
//! programmer-chosen points, and at the end of the program.
//!
//! Three checking schemes are implemented (all producing identical
//! verdicts, at very different costs):
//!
//! * [`Scheme::HwInc`] — the hardware scheme: per-core MHM units
//!   (modeled by the [`mhm`] crate) maintain per-thread hashes on the
//!   fly; software merely sums them at checkpoints. Overhead ≈ the
//!   zero-filling of allocations.
//! * [`Scheme::SwInc`] — the same incremental hash maintained by
//!   software instrumentation of every store (≈ 5 instructions per
//!   hashed byte).
//! * [`Scheme::SwTr`] — non-incremental: traverse the entire live state
//!   (globals + allocation table) at every checkpoint.
//!
//! Sources of input nondeterminism are controlled as in the paper
//! (Section 5): allocator addresses are logged on the first run and
//! replayed afterwards (with allocations zero-filled), nondeterministic
//! library calls are record/replayed, FP values may be rounded before
//! hashing, and known-nondeterministic structures can be excluded from
//! the hash with an [`IgnoreSpec`].
//!
//! # Quickstart
//!
//! ```
//! use instantcheck::{Checker, CheckerConfig, Scheme};
//! use tsim::{ProgramBuilder, ValKind};
//!
//! // The paper's Figure 1: two threads do `G += L` under a lock. The
//! // interleaving varies, the final state does not.
//! let source = || {
//!     let mut b = ProgramBuilder::new(2);
//!     let g = b.global("G", ValKind::U64, 1);
//!     let lock = b.mutex();
//!     b.setup(move |s| s.store(g.at(0), 2));
//!     for local in [7u64, 3u64] {
//!         b.thread(move |ctx| {
//!             ctx.lock(lock);
//!             let v = ctx.load(g.at(0));
//!             ctx.store(g.at(0), v + local);
//!             ctx.unlock(lock);
//!         });
//!     }
//!     b.build()
//! };
//!
//! let report = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(10))
//!     .expect("valid config")
//!     .check(source)
//!     .expect("runs complete");
//! assert!(report.is_deterministic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod characterize;
mod checker;
mod ignore;
mod iohash;
mod localize;
mod overhead;
mod policy;
mod report;
mod scheme;
mod spec;

pub use cache::{
    fault_plan_token, CacheLease, CachedRun, MemoryRunCache, RunCache, RunKey, RUN_KEY_VERSION,
};
pub use characterize::{characterize, Characterization, DetClass, Subject};
pub use checker::{Checker, CheckerConfig, ConfigError, RunHashes};
pub use ignore::IgnoreSpec;
pub use iohash::OutputHasher;
pub use localize::{localize, DiffOrigin, DiffSite, Localization};
pub use overhead::{geometric_mean, measure_overhead, OverheadReport};
pub use policy::{retry_seed, FailurePolicy, RunFailure, RunOutcome};
pub use report::{CheckReport, CheckpointVerdict, Distribution};
pub use scheme::{CheckMonitor, CheckpointRecord, Scheme};
pub use spec::{
    parse_rounding, parse_switch, rounding_token, switch_token, CampaignSpec, SPEC_VERSION,
};
