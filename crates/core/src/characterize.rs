//! The Table 1 classification pipeline: bit-exact → FP-rounded →
//! small-structure isolation → nondeterministic.

use std::fmt;

use adhash::FpRound;
use tsim::{Program, SimError};

use crate::checker::{Checker, CheckerConfig};
use crate::ignore::IgnoreSpec;
use crate::report::CheckReport;

/// A program to characterize: a factory (one fresh copy per run) plus
/// the metadata the paper's methodology needs.
pub struct Subject {
    /// The application name (Table 1 column 2).
    pub name: &'static str,
    /// Whether the application performs FP operations (column 4).
    pub uses_fp: bool,
    /// The programmer-supplied spec of known-nondeterministic small
    /// structures (columns 9–10 machinery); empty if none.
    pub ignore: IgnoreSpec,
    /// Builds one fresh copy of the program.
    pub source: Box<dyn Fn() -> Program + Send + Sync>,
}

impl fmt::Debug for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subject")
            .field("name", &self.name)
            .field("uses_fp", &self.uses_fp)
            .finish_non_exhaustive()
    }
}

impl Subject {
    /// Creates a subject with no FP and no ignore spec.
    pub fn new(name: &'static str, source: impl Fn() -> Program + Send + Sync + 'static) -> Self {
        Subject {
            name,
            uses_fp: false,
            ignore: IgnoreSpec::new(),
            source: Box::new(source),
        }
    }

    /// Marks the subject as using FP operations.
    #[must_use]
    pub fn with_fp(mut self) -> Self {
        self.uses_fp = true;
        self
    }

    /// Attaches the small-structure ignore spec.
    #[must_use]
    pub fn with_ignore(mut self, ignore: IgnoreSpec) -> Self {
        self.ignore = ignore;
        self
    }
}

/// The determinism class of an application — the four groups Table 1
/// separates with horizontal lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetClass {
    /// Deterministic bit by bit, as is.
    BitExact,
    /// Deterministic modulo FP precision (after FP round-off).
    FpRounded,
    /// Deterministic after also ignoring known small nondeterministic
    /// structures.
    IgnoringStructs,
    /// Nondeterministic even then.
    Nondeterministic,
}

impl fmt::Display for DetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetClass::BitExact => "bit-by-bit",
            DetClass::FpRounded => "FP-prec",
            DetClass::IgnoringStructs => "small-struct",
            DetClass::Nondeterministic => "NDet",
        };
        write!(f, "{s}")
    }
}

/// The full Table 1 row for one application.
#[derive(Debug)]
pub struct Characterization {
    /// Application name.
    pub name: &'static str,
    /// Whether the application uses FP.
    pub uses_fp: bool,
    /// The determinism class reached by the pipeline.
    pub class: DetClass,
    /// The bit-exact campaign (columns 5–6).
    pub bit_exact: CheckReport,
    /// The FP-rounded campaign (columns 7–8), if run.
    pub fp_rounded: Option<CheckReport>,
    /// The campaign with small structures isolated (column 9), if run.
    pub isolated: Option<CheckReport>,
}

impl Characterization {
    /// The report that determined the final class.
    pub fn final_report(&self) -> &CheckReport {
        match self.class {
            DetClass::BitExact => &self.bit_exact,
            DetClass::FpRounded => self.fp_rounded.as_ref().unwrap_or(&self.bit_exact),
            DetClass::IgnoringStructs | DetClass::Nondeterministic => self
                .isolated
                .as_ref()
                .or(self.fp_rounded.as_ref())
                .unwrap_or(&self.bit_exact),
        }
    }

    /// Column 5: deterministic as is?
    pub fn det_as_is(&self) -> bool {
        self.bit_exact.is_deterministic()
    }

    /// Column 6: first run detecting bit-by-bit nondeterminism.
    pub fn first_ndet_run(&self) -> Option<usize> {
        self.bit_exact.first_ndet_run
    }

    /// Column 8: first nondeterministic run after FP rounding.
    pub fn first_ndet_run_after_fp(&self) -> Option<usize> {
        self.fp_rounded.as_ref().and_then(|r| r.first_ndet_run)
    }

    /// Columns 10–11: deterministic / nondeterministic dynamic checking
    /// points under the final configuration.
    pub fn dyn_points(&self) -> (usize, usize) {
        let r = self.final_report();
        (r.det_points, r.ndet_points)
    }

    /// Column 12: deterministic at the end of the program (under the
    /// final configuration)?
    pub fn det_at_end(&self) -> bool {
        self.final_report().det_at_end
    }

    /// The failed runs the final stage's campaign absorbed (always
    /// empty under the default [`FailurePolicy::Abort`](crate::FailurePolicy),
    /// which surfaces the error from [`characterize`] instead).
    pub fn failures(&self) -> &[crate::RunFailure] {
        &self.final_report().failures
    }
}

/// Runs the Table 1 pipeline for one subject: check bit-exact; if
/// nondeterministic and the app uses FP, re-check with FP rounding; if
/// still nondeterministic and an ignore spec exists, re-check with the
/// small structures isolated.
///
/// `template` supplies the scheme, number of runs, seeds, switch
/// policy, and [`FailurePolicy`](crate::FailurePolicy); its
/// `rounding`/`ignore` fields are overridden per stage.
///
/// # Errors
///
/// Propagates any [`SimError`] from the underlying runs that the
/// template's failure policy does not absorb (under the default abort
/// policy, that is every error).
///
/// # Panics
///
/// When the template is invalid (`runs == 0`) — validate it with
/// [`Checker::new`] first if it comes from untrusted input.
pub fn characterize(
    subject: &Subject,
    template: &CheckerConfig,
) -> Result<Characterization, SimError> {
    let stage = |rounding: Option<FpRound>, ignore: IgnoreSpec| {
        let mut cfg = template.clone();
        cfg.rounding = rounding;
        cfg.ignore = ignore;
        Checker::new(cfg)
            .expect("characterize template must be a valid config")
            .check(&subject.source)
    };

    let bit_exact = stage(None, IgnoreSpec::new())?;

    let mut fp_rounded = None;
    let mut isolated = None;
    let class = if bit_exact.is_deterministic() {
        DetClass::BitExact
    } else {
        let rounding = subject.uses_fp.then(FpRound::default);
        let after_fp = if subject.uses_fp {
            let r = stage(rounding, IgnoreSpec::new())?;
            fp_rounded = Some(r);
            fp_rounded.as_ref().unwrap()
        } else {
            &bit_exact
        };
        if after_fp.is_deterministic() {
            DetClass::FpRounded
        } else if !subject.ignore.is_empty() {
            let r = stage(rounding, subject.ignore.clone())?;
            let det = r.is_deterministic();
            isolated = Some(r);
            if det {
                DetClass::IgnoringStructs
            } else {
                DetClass::Nondeterministic
            }
        } else {
            DetClass::Nondeterministic
        }
    };

    Ok(Characterization {
        name: subject.name,
        uses_fp: subject.uses_fp,
        class,
        bit_exact,
        fp_rounded,
        isolated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use tsim::{ProgramBuilder, ValKind};

    fn cfg() -> CheckerConfig {
        CheckerConfig::new(Scheme::HwInc).with_runs(8)
    }

    #[test]
    fn bit_exact_class() {
        let subject = Subject::new("sum", || {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("G", ValKind::U64, 1);
            let lock = b.mutex();
            for t in 0..2u64 {
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + t + 1);
                    ctx.unlock(lock);
                });
            }
            b.build()
        });
        let c = characterize(&subject, &cfg()).unwrap();
        assert_eq!(c.class, DetClass::BitExact);
        assert!(c.det_as_is());
        assert_eq!(c.first_ndet_run(), None);
        assert!(c.det_at_end());
        assert_eq!(c.class.to_string(), "bit-by-bit");
    }

    #[test]
    fn fp_rounded_class() {
        // FP sum: order-dependent last ulps, deterministic after
        // rounding.
        let subject = Subject::new("fpsum", || {
            let mut b = ProgramBuilder::new(3);
            let g = b.global("G", ValKind::F64, 1);
            let lock = b.mutex();
            for t in 0..3 {
                let term = [0.1f64, 0.2, 0.3][t];
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    let v = ctx.load_f64(g.at(0));
                    ctx.store_f64(g.at(0), v + term);
                    ctx.unlock(lock);
                });
            }
            b.build()
        })
        .with_fp();
        let c = characterize(&subject, &cfg()).unwrap();
        assert_eq!(c.class, DetClass::FpRounded);
        assert!(!c.det_as_is());
        assert!(c.first_ndet_run().is_some());
        assert_eq!(c.first_ndet_run_after_fp(), None);
    }

    #[test]
    fn ignoring_structs_class() {
        // Deterministic result + a schedule-dependent scratch word.
        let subject = Subject::new("scratchy", || {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("result", ValKind::U64, 1);
            let scratch = b.global("scratch", ValKind::U64, 1);
            let lock = b.mutex();
            for t in 0..2u64 {
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + t + 1);
                    ctx.store(scratch.at(0), t); // last writer wins
                    ctx.unlock(lock);
                });
            }
            b.build()
        })
        .with_ignore(IgnoreSpec::new().ignore_global("scratch"));
        let c = characterize(&subject, &cfg()).unwrap();
        assert_eq!(c.class, DetClass::IgnoringStructs);
        assert!(c.isolated.is_some());
        let (det, ndet) = c.dyn_points();
        assert!(ndet == 0 && det > 0);
    }

    #[test]
    fn skip_policy_rides_through_the_pipeline() {
        use crate::policy::FailurePolicy;
        use tsim::{FaultKind, FaultPlan, Trigger};

        let subject = Subject::new("faulty-sum", || {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("G", ValKind::U64, 1);
            let lock = b.mutex();
            for t in 0..2u64 {
                b.thread(move |ctx| {
                    let p = ctx.malloc("tmp", tsim::TypeTag::u64s(), 1);
                    ctx.store(p, t);
                    ctx.lock(lock);
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + t + 1);
                    ctx.unlock(lock);
                    ctx.free(p);
                });
            }
            b.build()
        });
        let plan = FaultPlan::new(11).with(FaultKind::AllocFail, Trigger::Nth(0));
        let template = cfg()
            .with_policy(FailurePolicy::Skip { max_failures: 2 })
            .with_fault_in_run(3, plan);
        let c = characterize(&subject, &template).unwrap();
        assert_eq!(c.class, DetClass::BitExact);
        assert_eq!(c.failures().len(), 1);
        assert_eq!(c.failures()[0].run_index, 3);
    }

    #[test]
    fn nondeterministic_class() {
        let subject = Subject::new("lastwriter", || {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("G", ValKind::U64, 1);
            let lock = b.mutex();
            for t in 0..2u64 {
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    ctx.store(g.at(0), t + 1);
                    ctx.unlock(lock);
                });
            }
            b.build()
        });
        let c = characterize(&subject, &cfg()).unwrap();
        assert_eq!(c.class, DetClass::Nondeterministic);
        assert!(!c.det_at_end());
        let (_, ndet) = c.dyn_points();
        assert!(ndet > 0);
    }
}
