//! Failure policies and per-run outcomes for checking campaigns.
//!
//! A 30-run campaign is long enough that *something* can go wrong in the
//! middle: a scheduler seed that happens to deadlock the program, a
//! workload assertion that fires under one interleaving, an injected
//! fault from the [`tsim::FaultPlan`] harness. Historically the checker
//! aborted on the first such error and threw away the other 29 runs.
//! [`FailurePolicy`] makes that behavior configurable:
//!
//! * [`FailurePolicy::Abort`] — the default, and exactly the historical
//!   semantics: the first [`SimError`] aborts the campaign.
//! * [`FailurePolicy::Skip`] — a failed run is recorded as a
//!   [`RunFailure`] and its slot is skipped; the campaign completes with
//!   a partial (but still multi-run) [`CheckReport`](crate::CheckReport)
//!   unless more than `max_failures` runs fail.
//! * [`FailurePolicy::Retry`] — a failed run is retried in place, up to
//!   `max_retries` extra attempts, optionally with a fresh scheduler
//!   seed ([`reseed`](FailurePolicy::Retry::reseed)). Every failed
//!   attempt is still recorded.
//!
//! Crucially, a failure that is *schedule-dependent* (deadlock,
//! livelock, watchdog timeout — see [`SimError::is_schedule_dependent`])
//! is not mere infrastructure trouble: deadlocking under one seed while
//! completing under another is itself a determinism finding, and the
//! report classifies it as one (see
//! [`CheckReport::schedule_divergence`](crate::CheckReport::schedule_divergence)).

use std::fmt;

use detrand::splitmix64;
use tsim::SimError;

use crate::checker::RunHashes;

/// What a checking campaign does when one of its runs fails.
///
/// ```
/// use instantcheck::{Checker, CheckerConfig, FailurePolicy, Scheme};
/// use tsim::{FaultKind, FaultPlan, ProgramBuilder, TypeTag, Trigger, ValKind};
///
/// let source = || {
///     let mut b = ProgramBuilder::new(2);
///     let g = b.global("sum", ValKind::U64, 1);
///     let lock = b.mutex();
///     for t in 0..2u64 {
///         b.thread(move |ctx| {
///             let p = ctx.malloc("scratch", TypeTag::u64s(), 1);
///             ctx.store(p, t);
///             ctx.lock(lock);
///             let v = ctx.load(g.at(0));
///             ctx.store(g.at(0), v + t + 1);
///             ctx.unlock(lock);
///             ctx.free(p);
///         });
///     }
///     b.build()
/// };
/// // Inject an allocation failure into run slot 2; under `Skip` the
/// // campaign still completes, with the failure on the record.
/// let plan = FaultPlan::new(7).with(FaultKind::AllocFail, Trigger::Nth(0));
/// let cfg = CheckerConfig::new(Scheme::HwInc)
///     .with_runs(6)
///     .with_policy(FailurePolicy::Skip { max_failures: 2 })
///     .with_fault_in_run(2, plan);
/// let report = Checker::new(cfg).expect("valid config").check(source).unwrap();
/// assert_eq!(report.runs, 5, "five of six runs completed");
/// assert_eq!(report.failures.len(), 1);
/// assert!(report.is_deterministic(), "an alloc fault is not a determinism bug");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the whole campaign on the first failed run (the historical
    /// behavior, and the default).
    #[default]
    Abort,
    /// Record the failure and move on to the next run slot.
    Skip {
        /// Abort anyway once more than this many runs have failed — a
        /// backstop so a systematically broken campaign does not
        /// silently degrade into a one-run "comparison".
        max_failures: usize,
    },
    /// Re-attempt the failed run slot in place.
    Retry {
        /// Extra attempts per run slot beyond the first, after which
        /// the campaign aborts with the last error.
        max_retries: usize,
        /// If `true`, each retry derives a fresh scheduler seed (see
        /// [`retry_seed`]); if `false`, the retry replays the exact
        /// same seed — useful only against wall-clock failures such as
        /// [`SimError::Deadline`], since everything else in a run is a
        /// deterministic function of the seed.
        reseed: bool,
    },
}

/// The deterministic seed for retry attempt `attempt` (1-based; attempt
/// 0 is the original run) of run slot `run_index` in a campaign whose
/// first-attempt seed stream starts at `base_seed`.
///
/// The derivation is a pure function of the three inputs, so a retried
/// campaign is as reproducible as an untouched one. The salt keeps the
/// retry stream disjoint from the `base_seed + i` first-attempt stream.
#[must_use]
pub fn retry_seed(base_seed: u64, run_index: usize, attempt: usize) -> u64 {
    const RESEED_SALT: u64 = 0x5eed_a6a1_4e77_2a1b;
    splitmix64(splitmix64(base_seed ^ RESEED_SALT) ^ ((run_index as u64) << 32) ^ attempt as u64)
}

/// One failed run attempt, as recorded in a
/// [`CheckReport`](crate::CheckReport)'s failure section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFailure {
    /// The campaign run slot (0-based) the attempt belonged to.
    pub run_index: usize,
    /// The scheduler seed of the failing attempt.
    pub seed: u64,
    /// The error that ended the attempt.
    pub error: SimError,
    /// Which attempt of the slot this was: 0 for the first try, `n` for
    /// the `n`th retry.
    pub attempt: usize,
    /// `true` if a later attempt of the same slot completed (only
    /// possible under [`FailurePolicy::Retry`]).
    pub recovered: bool,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run {} (seed {}, attempt {}): {}{}",
            self.run_index + 1,
            self.seed,
            self.attempt,
            self.error,
            if self.recovered { " [recovered]" } else { "" }
        )
    }
}

/// The outcome of one run attempt of a campaign: the hashes it
/// produced, or a structured failure.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The attempt completed and produced a hash sequence.
    Completed {
        /// The scheduler seed the attempt ran under.
        seed: u64,
        /// The campaign run slot (0-based) the attempt filled.
        run_index: usize,
        /// The hashes the run produced.
        hashes: RunHashes,
    },
    /// The attempt failed.
    Failed(RunFailure),
}

impl RunOutcome {
    /// The completed hashes, if the attempt completed.
    #[must_use]
    pub fn hashes(&self) -> Option<&RunHashes> {
        match self {
            RunOutcome::Completed { hashes, .. } => Some(hashes),
            RunOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if the attempt failed.
    #[must_use]
    pub fn failure(&self) -> Option<&RunFailure> {
        match self {
            RunOutcome::Completed { .. } => None,
            RunOutcome::Failed(f) => Some(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_abort() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::Abort);
    }

    #[test]
    fn retry_seeds_are_deterministic_and_spread_out() {
        let a = retry_seed(1, 3, 1);
        assert_eq!(a, retry_seed(1, 3, 1), "pure function of its inputs");
        assert_ne!(a, retry_seed(1, 3, 2), "attempts differ");
        assert_ne!(a, retry_seed(1, 4, 1), "slots differ");
        assert_ne!(a, retry_seed(2, 3, 1), "campaigns differ");
        // The retry stream must not collide with the base_seed + i
        // first-attempt stream for small campaigns.
        for i in 0..64u64 {
            assert_ne!(a, 1 + i);
        }
    }

    #[test]
    fn failure_display_names_the_run_and_seed() {
        let f = RunFailure {
            run_index: 4,
            seed: 77,
            error: SimError::StepLimit { limit: 10 },
            attempt: 2,
            recovered: true,
        };
        let s = f.to_string();
        assert!(s.contains("run 5"), "{s}");
        assert!(s.contains("seed 77"), "{s}");
        assert!(s.contains("attempt 2"), "{s}");
        assert!(s.contains("[recovered]"), "{s}");
    }
}
