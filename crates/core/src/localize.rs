//! The bug-localization helper of Section 2.3.
//!
//! When InstantCheck reports nondeterminism at a checkpoint, this tool
//! re-executes the two differing runs, stores the *entire* memory state
//! at that checkpoint (not just the hash), diffs the two states, and maps
//! each differing address back to its allocation site (or global region)
//! and its offset within the allocation — the information the programmer
//! uses to decide where to put breakpoints or watchpoints.

use std::collections::BTreeMap;

use adhash::FpRound;
use tsim::{Addr, CheckpointInfo, Monitor, Program, RunConfig, SimError, StateView, ValKind};

/// Where a differing address came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOrigin {
    /// A word of a named global region.
    Global {
        /// The region name.
        name: &'static str,
        /// Word offset inside the region.
        offset: usize,
    },
    /// A word of a heap block.
    Heap {
        /// The allocation-site label (the paper's "source code line that
        /// allocated the address").
        site: &'static str,
        /// Word offset from the start of the block (the paper's "array
        /// index or struct field").
        offset: usize,
        /// Which thread allocated the block.
        alloc_tid: usize,
        /// The thread-local allocation sequence number.
        alloc_seq: u64,
    },
    /// The address is live in only one of the two runs (structural
    /// allocation difference).
    OneSided,
}

impl std::fmt::Display for DiffOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffOrigin::Global { name, offset } => write!(f, "global {name}[{offset}]"),
            DiffOrigin::Heap {
                site,
                offset,
                alloc_tid,
                alloc_seq,
            } => {
                write!(
                    f,
                    "heap {site}+{offset} (alloc #{alloc_seq} by t{alloc_tid})"
                )
            }
            DiffOrigin::OneSided => write!(f, "live in one run only"),
        }
    }
}

/// One address at which the two runs' states differ.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffSite {
    /// The differing address.
    pub addr: Addr,
    /// The value in run A (`None` if not live there).
    pub value_a: Option<u64>,
    /// The value in run B (`None` if not live there).
    pub value_b: Option<u64>,
    /// The declared kind of the word.
    pub kind: ValKind,
    /// Mapping back to source-level structure.
    pub origin: DiffOrigin,
}

/// The localization result: every address at which the two runs differ
/// at the chosen checkpoint.
#[derive(Debug, Clone)]
pub struct Localization {
    /// The checkpoint (sequence number) that was compared.
    pub checkpoint_seq: u64,
    /// The differing addresses, in address order.
    pub diffs: Vec<DiffSite>,
}

impl Localization {
    /// Returns `true` if the states were identical.
    pub fn is_empty(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Groups the diffs by origin description — the report the tool
    /// finally shows the programmer.
    pub fn summary(&self) -> Vec<(String, usize)> {
        let mut groups: BTreeMap<String, usize> = BTreeMap::new();
        for d in &self.diffs {
            let key = match &d.origin {
                DiffOrigin::Global { name, .. } => format!("global {name}"),
                DiffOrigin::Heap { site, offset, .. } => {
                    format!("heap site {site} offset {offset}")
                }
                DiffOrigin::OneSided => "one-sided allocation".to_owned(),
            };
            *groups.entry(key).or_insert(0) += 1;
        }
        let mut v: Vec<(String, usize)> = groups.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[derive(Debug, Clone)]
struct CapturedWord {
    value: u64,
    kind: ValKind,
    origin: DiffOrigin,
}

/// A monitor that snapshots the full live state at one checkpoint.
#[derive(Debug, Default)]
struct StateCapture {
    target_seq: u64,
    snapshot: Option<BTreeMap<u64, CapturedWord>>,
}

impl Monitor for StateCapture {
    fn on_checkpoint(&mut self, info: &CheckpointInfo, view: &StateView<'_>) {
        if info.seq != self.target_seq || self.snapshot.is_some() {
            return;
        }
        let mut snap = BTreeMap::new();
        for g in view.globals() {
            for i in 0..g.region.len {
                let a = g.region.at(i);
                snap.insert(
                    a.raw(),
                    CapturedWord {
                        value: view.read(a).unwrap_or(0),
                        kind: g.region.kind,
                        origin: DiffOrigin::Global {
                            name: g.name,
                            offset: i,
                        },
                    },
                );
            }
        }
        for b in view.blocks() {
            for i in 0..b.len {
                let a = b.base.offset(i as u64);
                snap.insert(
                    a.raw(),
                    CapturedWord {
                        value: view.read(a).unwrap_or(0),
                        kind: b.kind_at(i),
                        origin: DiffOrigin::Heap {
                            site: b.site,
                            offset: i,
                            alloc_tid: b.tid,
                            alloc_seq: b.seq,
                        },
                    },
                );
            }
        }
        self.snapshot = Some(snap);
    }
}

/// Re-executes the two differing runs (`seed_a` logged its allocations;
/// `seed_b` replays them so addresses align), snapshots the full state at
/// `checkpoint_seq` in each, and returns the diff mapped back to
/// allocation sites.
///
/// `rounding`, when set, suppresses FP-noise-only differences, so the
/// report shows only the differences the checker would have reported
/// under the same rounding.
///
/// # Errors
///
/// Propagates any [`SimError`] from the two runs.
pub fn localize<F: Fn() -> Program>(
    source: F,
    seed_a: u64,
    seed_b: u64,
    checkpoint_seq: u64,
    lib_seed: u64,
    rounding: Option<FpRound>,
) -> Result<Localization, SimError> {
    let cfg_a = RunConfig::random(seed_a).with_lib_seed(lib_seed);
    let out_a = source().run_with(
        &cfg_a,
        StateCapture {
            target_seq: checkpoint_seq,
            snapshot: None,
        },
    )?;
    let cfg_b = RunConfig::random(seed_b)
        .with_lib_seed(lib_seed)
        .with_alloc_replay(out_a.alloc_log.clone());
    let out_b = source().run_with(
        &cfg_b,
        StateCapture {
            target_seq: checkpoint_seq,
            snapshot: None,
        },
    )?;

    let a = out_a.monitor.snapshot.unwrap_or_default();
    let b = out_b.monitor.snapshot.unwrap_or_default();

    let round = |w: &CapturedWord| match (w.kind, rounding) {
        (ValKind::F64, Some(r)) => r.apply_bits(w.value),
        _ => w.value,
    };

    let mut diffs = Vec::new();
    let addrs: std::collections::BTreeSet<u64> = a.keys().chain(b.keys()).copied().collect();
    for addr in addrs {
        match (a.get(&addr), b.get(&addr)) {
            (Some(wa), Some(wb)) => {
                if round(wa) != round(wb) {
                    diffs.push(DiffSite {
                        addr: Addr(addr),
                        value_a: Some(wa.value),
                        value_b: Some(wb.value),
                        kind: wa.kind,
                        origin: wa.origin.clone(),
                    });
                }
            }
            (Some(wa), None) => diffs.push(DiffSite {
                addr: Addr(addr),
                value_a: Some(wa.value),
                value_b: None,
                kind: wa.kind,
                origin: DiffOrigin::OneSided,
            }),
            (None, Some(wb)) => diffs.push(DiffSite {
                addr: Addr(addr),
                value_a: None,
                value_b: Some(wb.value),
                kind: wb.kind,
                origin: DiffOrigin::OneSided,
            }),
            (None, None) => unreachable!("address came from one of the maps"),
        }
    }
    Ok(Localization {
        checkpoint_seq,
        diffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, TypeTag};

    /// A program whose `winner` global records the last thread to grab
    /// the lock, and whose heap record's word 1 does the same.
    fn racy() -> Program {
        let mut b = ProgramBuilder::new(2);
        let winner = b.global("winner", ValKind::U64, 1);
        let sum = b.global("sum", ValKind::U64, 1);
        let rec = b.global("rec_ptr", ValKind::U64, 1);
        let lock = b.mutex();
        b.setup(move |s| {
            let p = s.malloc("record", TypeTag::u64s(), 2);
            s.store(rec.at(0), p.raw());
        });
        for t in 0..2u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                ctx.store(winner.at(0), t + 1);
                let v = ctx.load(sum.at(0));
                ctx.store(sum.at(0), v + 10);
                let p = Addr(ctx.load(rec.at(0)));
                ctx.store(p.offset(1), t + 100);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    fn seeds_that_differ() -> (u64, u64) {
        // Find two seeds whose lock orders differ.
        for s in 1..50 {
            let a = racy().run(&RunConfig::random(0)).unwrap();
            let b = racy().run(&RunConfig::random(s)).unwrap();
            let w = |o: &tsim::RunOutcome<tsim::NullMonitor>| {
                o.final_word(Addr(tsim::GLOBALS_BASE)).unwrap()
            };
            if w(&a) != w(&b) {
                return (0, s);
            }
        }
        panic!("no differing seeds found");
    }

    #[test]
    fn localizes_differing_words_to_their_sites() {
        let (sa, sb) = seeds_that_differ();
        // Checkpoint 0 is the End checkpoint (no barriers in this
        // program).
        let loc = localize(racy, sa, sb, 0, 7, None).unwrap();
        assert!(!loc.is_empty());
        // The differing words: global `winner` and heap record offset 1.
        // `sum` must NOT be reported (commutative).
        let origins: Vec<String> = loc.diffs.iter().map(|d| d.origin.to_string()).collect();
        assert!(origins.iter().any(|o| o.contains("winner")), "{origins:?}");
        assert!(
            origins.iter().any(|o| o.contains("record+1")),
            "{origins:?}"
        );
        assert!(!origins.iter().any(|o| o.contains("sum")), "{origins:?}");
        let summary = loc.summary();
        assert_eq!(summary.len(), 2);
    }

    #[test]
    fn identical_runs_produce_empty_diff() {
        let loc = localize(racy, 3, 3, 0, 7, None).unwrap();
        assert!(loc.is_empty());
        assert!(loc.summary().is_empty());
    }

    #[test]
    fn fp_rounding_suppresses_noise_only_diffs() {
        let fp_noise = || {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("acc", ValKind::F64, 1);
            let lock = b.mutex();
            for term in [0.1f64, 0.2] {
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    let v = ctx.load_f64(g.at(0));
                    ctx.store_f64(g.at(0), (v + term) * 1.0000001);
                    ctx.unlock(lock);
                });
            }
            b.build()
        };
        // Find seeds with different orders.
        let mut pair = None;
        for s in 1..50 {
            let a = localize(fp_noise, 0, s, 0, 7, None).unwrap();
            if !a.is_empty() {
                pair = Some(s);
                break;
            }
        }
        let s = pair.expect("some seed must flip the FP order");
        let rounded = localize(fp_noise, 0, s, 0, 7, Some(FpRound::default())).unwrap();
        assert!(rounded.is_empty(), "rounding should absorb the ulp noise");
    }
}
