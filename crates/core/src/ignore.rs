//! Explicit exclusion of nondeterministic structures from the state hash.
//!
//! Some structures are auxiliary: a free-list's link order, a dangling
//! pointer field in a result record. The programmer can *explicitly*
//! exclude them (the paper warns against doing this silently) and
//! InstantCheck then checks determinism of everything else. Exclusion is
//! expressed against program-level names — global regions and heap
//! allocation sites — and resolved against the live state at each
//! checkpoint.

use tsim::{Addr, StateView, ValKind};

/// Which memory words to exclude from the state hash.
///
/// # Example
///
/// ```
/// use instantcheck::IgnoreSpec;
///
/// // cholesky: ignore the per-thread free-task lists;
/// // pbzip2: ignore word 2 (a dangling pointer) of every result record.
/// let spec = IgnoreSpec::new()
///     .ignore_site("free_task_list")
///     .ignore_site_offsets("result_record", [2]);
/// assert!(!spec.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IgnoreSpec {
    pub(crate) globals: Vec<(String, Option<(usize, usize)>)>,
    pub(crate) sites: Vec<(String, Option<Vec<usize>>)>,
}

impl IgnoreSpec {
    /// An empty spec (nothing excluded).
    pub fn new() -> Self {
        IgnoreSpec::default()
    }

    /// Returns `true` if nothing is excluded.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty() && self.sites.is_empty()
    }

    /// Excludes an entire named global region.
    #[must_use]
    pub fn ignore_global(mut self, name: impl Into<String>) -> Self {
        self.globals.push((name.into(), None));
        self
    }

    /// Excludes words `start..end` of a named global region.
    #[must_use]
    pub fn ignore_global_range(
        mut self,
        name: impl Into<String>,
        start: usize,
        end: usize,
    ) -> Self {
        self.globals.push((name.into(), Some((start, end))));
        self
    }

    /// Excludes every live block allocated at `site`, entirely.
    #[must_use]
    pub fn ignore_site(mut self, site: impl Into<String>) -> Self {
        self.sites.push((site.into(), None));
        self
    }

    /// Excludes the given word offsets (mod the block's type-tag stride —
    /// i.e. per struct element) of every live block allocated at `site`.
    #[must_use]
    pub fn ignore_site_offsets(
        mut self,
        site: impl Into<String>,
        offsets: impl IntoIterator<Item = usize>,
    ) -> Self {
        self.sites
            .push((site.into(), Some(offsets.into_iter().collect())));
        self
    }

    /// A stable 64-bit token of the spec's contents, for run-cache keys
    /// ([`RunKey::ignore_token`](crate::RunKey)). Equal specs produce
    /// equal tokens; the token covers every name, range, and offset
    /// list, in insertion order (the order [`PartialEq`] compares by).
    pub fn cache_token(&self) -> u64 {
        use crate::cache::{mix_bytes, mix_u64};
        let mut h = 0x19_6e_04_e5u64;
        for (name, range) in &self.globals {
            h = mix_bytes(h, name.as_bytes());
            match range {
                None => h = mix_u64(h, 0),
                Some((start, end)) => {
                    h = mix_u64(h, 1);
                    h = mix_u64(h, *start as u64);
                    h = mix_u64(h, *end as u64);
                }
            }
        }
        // Section separator: a global named "x" and a site named "x"
        // must not produce the same token.
        h = mix_u64(h, 0x5e_c7_10_4e);
        for (site, offsets) in &self.sites {
            h = mix_bytes(h, site.as_bytes());
            match offsets {
                None => h = mix_u64(h, 0),
                Some(offs) => {
                    h = mix_u64(h, 1 + offs.len() as u64);
                    for &o in offs {
                        h = mix_u64(h, o as u64);
                    }
                }
            }
        }
        h
    }

    /// Resolves the spec against a live state: every excluded word, with
    /// its declared kind.
    pub fn resolve(&self, view: &StateView<'_>) -> Vec<(Addr, ValKind)> {
        let mut out = Vec::new();
        for (name, range) in &self.globals {
            if let Some(g) = view.global(name) {
                let (start, end) = match *range {
                    Some((s, e)) => (s, e.min(g.region.len)),
                    None => (0, g.region.len),
                };
                for i in start..end {
                    out.push((g.region.at(i), g.region.kind));
                }
            }
        }
        for (site, offsets) in &self.sites {
            for block in view.blocks_at_site(site) {
                match offsets {
                    None => {
                        for i in 0..block.len {
                            out.push((block.base.offset(i as u64), block.kind_at(i)));
                        }
                    }
                    Some(offs) => {
                        let stride = block.tag.stride();
                        for i in 0..block.len {
                            if offs.contains(&(i % stride)) {
                                out.push((block.base.offset(i as u64), block.kind_at(i)));
                            }
                        }
                    }
                }
            }
        }
        out.sort_unstable_by_key(|&(a, _)| a);
        out.dedup_by_key(|&mut (a, _)| a);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, RunConfig, TypeTag};

    #[test]
    fn resolve_globals_and_sites() {
        let mut b = ProgramBuilder::new(1);
        let g = b.global("noise", ValKind::U64, 4);
        let _h = b.global("clean", ValKind::F64, 2);
        b.thread(|ctx| {
            let _keep = ctx.malloc("records", TypeTag::of(vec![ValKind::U64; 3]), 6);
            let _other = ctx.malloc("data", TypeTag::f64s(), 2);
        });
        let out = b.build().run(&RunConfig::random(0)).unwrap();
        let view = out.final_state();

        let spec = IgnoreSpec::new()
            .ignore_global_range("noise", 1, 3)
            .ignore_site_offsets("records", [2]);
        let resolved = spec.resolve(&view);
        // noise[1..3] = 2 words; records has 6 words with stride 3 →
        // offsets 2 and 5 = 2 words.
        assert_eq!(resolved.len(), 4);
        assert!(resolved.contains(&(g.at(1), ValKind::U64)));
        assert!(resolved.contains(&(g.at(2), ValKind::U64)));

        let all_records = IgnoreSpec::new().ignore_site("records");
        assert_eq!(all_records.resolve(&view).len(), 6);

        let whole_global = IgnoreSpec::new().ignore_global("noise");
        assert_eq!(whole_global.resolve(&view).len(), 4);

        // Unknown names resolve to nothing rather than erroring.
        let unknown = IgnoreSpec::new().ignore_global("nope").ignore_site("nada");
        assert!(unknown.resolve(&view).is_empty());
        assert!(!unknown.is_empty());
        assert!(IgnoreSpec::new().is_empty());
    }

    #[test]
    fn overlapping_specs_dedup() {
        let mut b = ProgramBuilder::new(1);
        let _g = b.global("x", ValKind::U64, 2);
        b.thread(|_| {});
        let out = b.build().run(&RunConfig::random(0)).unwrap();
        let view = out.final_state();
        let spec = IgnoreSpec::new()
            .ignore_global("x")
            .ignore_global_range("x", 0, 1);
        assert_eq!(spec.resolve(&view).len(), 2);
    }

    #[test]
    fn range_clamps_to_region() {
        let mut b = ProgramBuilder::new(1);
        let _g = b.global("x", ValKind::U64, 2);
        b.thread(|_| {});
        let out = b.build().run(&RunConfig::random(0)).unwrap();
        let view = out.final_state();
        let spec = IgnoreSpec::new().ignore_global_range("x", 1, 99);
        assert_eq!(spec.resolve(&view).len(), 1);
    }
}
