//! The three checking schemes and the monitor that implements them.

use std::collections::HashSet;

use adhash::{hash_full_state, FpRound, HashSum, LocationHasher, Mix64Hasher};
use mhm::{CacheStats, L1Cache, MhmCore};
use tsim::{
    Addr, BlockInfo, CheckpointInfo, CheckpointKind, EngineHashes, FastPathSpec, Monitor,
    StateView, ThreadId, ValKind,
};

use crate::checker::RunHashes;
use crate::ignore::IgnoreSpec;
use crate::iohash::OutputHasher;

/// Software hashing cost: 5 instructions per hashed byte (the paper's
/// Jenkins-derived figure), and one location hash covers 16 bytes
/// (8-byte address + 8-byte value).
const SW_INSTR_PER_BYTE: u64 = 5;
const SW_INSTR_PER_LOCATION_HASH: u64 = 16 * SW_INSTR_PER_BYTE;
/// SW incremental instrumentation hashes (addr, old) and (addr, new) per
/// store.
const SW_INC_INSTR_PER_STORE: u64 = 2 * SW_INSTR_PER_LOCATION_HASH;
/// SW traversal hashes each live 8-byte word.
const SW_TR_INSTR_PER_WORD: u64 = 8 * SW_INSTR_PER_BYTE;
/// HW exclusion loop: load the word and issue `minus_hash`/`plus_hash`.
const HW_INSTR_PER_EXCLUDED_WORD: u64 = 3;
/// SW exclusion loop: load the word and hash two locations.
const SW_INSTR_PER_EXCLUDED_WORD: u64 = 1 + 2 * SW_INSTR_PER_LOCATION_HASH;

/// Modeled per-thread L1 geometry (32 KiB: 64 sets × 8 ways × 64 B),
/// used when the optional cache model is enabled to check §3.1's
/// write-allocate claim on real campaign store streams.
const L1_SETS: usize = 64;
const L1_ASSOC: usize = 8;
const L1_LINE_BYTES: u64 = 64;

/// Which InstantCheck scheme computes the state hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No checking at all (the paper's *Native* baseline).
    Native,
    /// `HW-InstantCheck_Inc`: per-core MHM hardware maintains the
    /// per-thread hashes on the fly; software sums them at checkpoints.
    HwInc,
    /// `SW-InstantCheck_Inc`: the same incremental hash maintained by
    /// software instrumentation of every store.
    ///
    /// Our implementation — like the paper's own prototype — obtains the
    /// old/new value pair atomically because the test driver serializes
    /// execution; a non-serialized implementation would either pay for
    /// atomicity or risk hashing a stale old value under write-write
    /// races (see `stale_old_value_corrupts_the_hash` in this module's
    /// tests for the failure mode).
    SwInc,
    /// `SW-InstantCheck_Tr`: traverse the entire live state (static data
    /// + allocation table) at every checkpoint.
    SwTr,
}

impl Scheme {
    /// Returns `true` if the scheme computes hashes incrementally as the
    /// program writes.
    pub fn is_incremental(self) -> bool {
        matches!(self, Scheme::HwInc | Scheme::SwInc)
    }

    /// Returns `true` if the scheme performs any checking.
    pub fn is_checking(self) -> bool {
        !matches!(self, Scheme::Native)
    }

    /// Stable name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Native => "Native",
            Scheme::HwInc => "HwInc",
            Scheme::SwInc => "SwInc",
            Scheme::SwTr => "SwTr",
        }
    }

    /// The inverse of [`name`](Scheme::name), for deserializing persisted
    /// records.
    pub fn from_name(name: &str) -> Option<Scheme> {
        match name {
            "Native" => Some(Scheme::Native),
            "HwInc" => Some(Scheme::HwInc),
            "SwInc" => Some(Scheme::SwInc),
            "SwTr" => Some(Scheme::SwTr),
            _ => None,
        }
    }

    /// Lenient variant of [`from_name`](Scheme::from_name) for
    /// command-line flags: case-insensitive, accepting separators
    /// (`hw-inc`, `sw_tr`). Persisted records should use the strict
    /// [`from_name`](Scheme::from_name).
    pub fn parse(text: &str) -> Option<Scheme> {
        let folded: String = text
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match folded.as_str() {
            "native" => Some(Scheme::Native),
            "hwinc" => Some(Scheme::HwInc),
            "swinc" => Some(Scheme::SwInc),
            "swtr" => Some(Scheme::SwTr),
            _ => None,
        }
    }
}

/// One checkpoint's recorded state hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Why the checkpoint fired.
    pub kind: CheckpointKind,
    /// The state hash at the checkpoint.
    pub hash: HashSum,
}

/// The [`Monitor`] that implements the checking schemes.
///
/// One instance observes one run; [`CheckMonitor::into_hashes`] then
/// yields the run's checkpoint hash sequence for cross-run comparison.
/// The monitor also tracks the extra instructions its scheme would
/// execute on a real machine (the Figure 6 cost model).
#[derive(Debug)]
pub struct CheckMonitor {
    scheme: Scheme,
    rounding: Option<FpRound>,
    ignore: IgnoreSpec,
    /// Per-thread MHM units (HwInc), or the software emulation of the
    /// same per-thread incremental hashes (SwInc).
    cores: Vec<MhmCore>,
    hasher: Mix64Hasher,
    output: OutputHasher,
    records: Vec<CheckpointRecord>,
    extra_instr: u64,
    stores_seen: u64,
    /// Location-hash operations performed (two per incremental store,
    /// one per traversed word, two per freed/ignored word).
    hash_updates: u64,
    /// Per-thread L1 models, when the cache model is enabled.
    caches: Option<Vec<L1Cache>>,
    /// Engine fast-path counters already folded into this monitor's
    /// accounting (see [`CheckMonitor::apply_engine_deltas`]).
    engine_stores_applied: u64,
    engine_freed_applied: u64,
}

impl CheckMonitor {
    /// Creates a monitor for `scheme`.
    ///
    /// `rounding` of `None` compares FP values bit by bit; `Some(r)`
    /// rounds FP stores (incremental schemes) or FP-typed words
    /// (traversal) with `r` before hashing.
    pub fn new(scheme: Scheme, rounding: Option<FpRound>, ignore: IgnoreSpec) -> Self {
        CheckMonitor {
            scheme,
            rounding,
            ignore,
            cores: Vec::new(),
            hasher: Mix64Hasher::default(),
            output: OutputHasher::new(),
            records: Vec::new(),
            extra_instr: 0,
            stores_seen: 0,
            hash_updates: 0,
            caches: None,
            engine_stores_applied: 0,
            engine_freed_applied: 0,
        }
    }

    /// Enables the per-thread write-allocate L1 model, so the run's
    /// [`RunHashes`] carry demand and MHM old-value hit/miss counters
    /// (the §3.1 "old value is already in the cache" claim, measured on
    /// the campaign's own store stream).
    #[must_use]
    pub fn with_cache_model(mut self) -> Self {
        self.caches = Some(Vec::new());
        self
    }

    /// The scheme this monitor implements.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of stores observed so far.
    pub fn stores_seen(&self) -> u64 {
        self.stores_seen
    }

    /// The checkpoint records so far.
    pub fn records(&self) -> &[CheckpointRecord] {
        &self.records
    }

    /// The per-thread L1 model, if enabled (byte addressing: one
    /// simulated word is 8 bytes).
    fn l1(&mut self, tid: ThreadId) -> Option<&mut L1Cache> {
        let caches = self.caches.as_mut()?;
        if caches.len() <= tid {
            caches.resize(tid + 1, L1Cache::new(L1_SETS, L1_ASSOC, L1_LINE_BYTES));
        }
        Some(&mut caches[tid])
    }

    /// The merged cache counters across threads, if the model is on.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.caches.as_ref().map(|caches| {
            let mut total = CacheStats::default();
            for c in caches {
                total.merge(c.stats());
            }
            total
        })
    }

    fn core(&mut self, tid: ThreadId) -> &mut MhmCore {
        if self.cores.len() <= tid {
            let mut fresh = MhmCore::new();
            if let Some(r) = self.rounding {
                fresh.set_rounding(r);
                fresh.start_fp_rounding();
            }
            self.cores.resize(tid + 1, fresh);
        }
        &mut self.cores[tid]
    }

    fn round(&self, value: u64, kind: ValKind) -> u64 {
        match (kind, self.rounding) {
            (ValKind::F64, Some(r)) => r.apply_bits(value),
            _ => value,
        }
    }

    /// Folds the engine fast path's cumulative counters into this
    /// monitor's per-store accounting, by differencing against what was
    /// already applied at the previous checkpoint.
    ///
    /// When the engine handles the store datapath (see
    /// [`Monitor::fast_path`]), `on_store`/`on_free` never fire for
    /// simulated-thread accesses; this reconstructs exactly what those
    /// callbacks would have accumulated — store counts, hash-update
    /// counts, and the Figure 6 instruction charges — so the run's
    /// [`RunHashes`] are byte-identical either way.
    fn apply_engine_deltas(&mut self, eh: &EngineHashes<'_>) {
        let d_stores = eh.stores - self.engine_stores_applied;
        let d_freed = eh.freed_words - self.engine_freed_applied;
        self.engine_stores_applied = eh.stores;
        self.engine_freed_applied = eh.freed_words;
        self.stores_seen += d_stores;
        if self.scheme.is_incremental() {
            self.hash_updates += 2 * d_stores + 2 * d_freed;
            if self.scheme == Scheme::SwInc {
                self.extra_instr += SW_INC_INSTR_PER_STORE * d_stores;
            }
            let per_word = match self.scheme {
                Scheme::HwInc => HW_INSTR_PER_EXCLUDED_WORD,
                _ => SW_INSTR_PER_EXCLUDED_WORD,
            };
            self.extra_instr += per_word * d_freed;
        }
    }

    /// The incremental schemes' checkpoint hash: the modular sum of the
    /// per-thread hashes, with the ignore-set's current contributions
    /// cancelled (computed fresh per checkpoint, without mutating the
    /// thread hashes).
    ///
    /// Under the engine fast path the per-thread sums are split between
    /// `cores` (setup-phase stores, delivered via `on_store`) and the
    /// engine's own accumulators; commutativity makes their union the
    /// same state hash regardless of the split.
    fn incremental_hash(&mut self, view: &StateView<'_>) -> HashSum {
        let mut sum: HashSum = self.cores.iter().map(MhmCore::th).sum();
        // Combining the THs is a rare software loop; one "unit" per
        // per-thread hash register, matching the dyn path's lazily grown
        // core set.
        let mut units = self.cores.len() as u64;
        if let Some(eh) = view.engine_hashes() {
            sum = sum.combine(eh.sums.iter().copied().sum());
            units = units.max(eh.sums.len() as u64);
        }
        self.extra_instr += units;
        if !self.ignore.is_empty() {
            let ignored = self.ignore.resolve(view);
            let per_word = match self.scheme {
                Scheme::HwInc => HW_INSTR_PER_EXCLUDED_WORD,
                _ => SW_INSTR_PER_EXCLUDED_WORD,
            };
            self.extra_instr += per_word * ignored.len() as u64;
            self.hash_updates += 2 * ignored.len() as u64;
            for (addr, kind) in ignored {
                let cur = self.round(view.read(addr).unwrap_or(0), kind);
                // SH ⊕ h(a, initial) ⊖ h(a, current); allocations are
                // zero-filled, so the initial value is always 0.
                sum = sum
                    .combine(self.hasher.hash_location(addr.raw(), 0))
                    .cancel(self.hasher.hash_location(addr.raw(), cur));
            }
        }
        sum
    }

    /// The traversal scheme's checkpoint hash: hash every live word
    /// (globals + allocation table), rounding FP-typed words, skipping
    /// the ignore set.
    fn traversal_hash(&mut self, view: &StateView<'_>) -> HashSum {
        let ignored: HashSet<Addr> = self
            .ignore
            .resolve(view)
            .into_iter()
            .map(|(a, _)| a)
            .collect();
        let mut words = 0u64;
        let rounding = self.rounding;
        let hash = hash_full_state(
            &self.hasher,
            view.live_words()
                .filter(|(a, _, _)| !ignored.contains(a))
                .map(|(a, v, kind)| {
                    words += 1;
                    let v = match (kind, rounding) {
                        (ValKind::F64, Some(r)) => r.apply_bits(v),
                        _ => v,
                    };
                    (a.raw(), v)
                }),
        );
        self.extra_instr += words * SW_TR_INSTR_PER_WORD;
        self.hash_updates += words;
        hash
    }

    /// Consumes the monitor, yielding the run's hash sequence.
    pub fn into_hashes(self) -> RunHashes {
        let cache = self.cache_stats();
        RunHashes {
            checkpoints: self.records,
            output_digest: self.output.digest(),
            extra_instr: self.extra_instr,
            stores: self.stores_seen,
            hash_updates: self.hash_updates,
            cache,
        }
    }
}

impl Monitor for CheckMonitor {
    fn on_store(&mut self, tid: ThreadId, addr: Addr, old: u64, new: u64, kind: ValKind) {
        let scheme = self.scheme;
        if let Some(l1) = self.l1(tid) {
            // Word addresses are byte-scaled (8 B/word) for line mapping.
            l1.store(addr.raw() * 8);
            if scheme == Scheme::HwInc {
                l1.mhm_read_old(addr.raw() * 8);
            }
        }
        match scheme {
            Scheme::Native | Scheme::SwTr => {}
            Scheme::HwInc | Scheme::SwInc => {
                if scheme == Scheme::SwInc {
                    self.extra_instr += SW_INC_INSTR_PER_STORE;
                }
                self.hash_updates += 2; // minus old, plus new
                self.core(tid)
                    .on_store(addr.raw(), old, new, kind == ValKind::F64);
            }
        }
        self.stores_seen += 1;
    }

    fn on_load(&mut self, tid: ThreadId, addr: Addr, _value: u64, _kind: ValKind) {
        if let Some(l1) = self.l1(tid) {
            l1.load(addr.raw() * 8);
        }
    }

    fn on_free(&mut self, tid: ThreadId, block: &BlockInfo, contents: &[u64]) {
        // Freed memory leaves the program state: cancel each word's
        // contribution back to the zero baseline so the incremental hash
        // matches the live state. (The traversal scheme simply stops
        // seeing the block.)
        if !self.scheme.is_incremental() {
            return;
        }
        let per_word = match self.scheme {
            Scheme::HwInc => HW_INSTR_PER_EXCLUDED_WORD,
            _ => SW_INSTR_PER_EXCLUDED_WORD,
        };
        self.extra_instr += per_word * contents.len() as u64;
        self.hash_updates += 2 * contents.len() as u64;
        let rounding = self.rounding;
        let core = self.core(tid);
        for (i, &value) in contents.iter().enumerate() {
            let kind = block.kind_at(i);
            let is_fp = kind == ValKind::F64 && rounding.is_some();
            let addr = block.base.offset(i as u64).raw();
            core.free_word(addr, value, is_fp);
        }
    }

    fn on_output(&mut self, _tid: ThreadId, bytes: &[u8]) {
        if self.scheme.is_checking() {
            // Hashing the written bytes before `write()` returns (§4.3).
            self.extra_instr += bytes.len() as u64 * SW_INSTR_PER_BYTE;
            self.output.update(bytes);
        }
    }

    fn on_checkpoint(&mut self, info: &CheckpointInfo, view: &StateView<'_>) {
        if let Some(eh) = view.engine_hashes() {
            // Checkpoints (including the guaranteed final `End`) are the
            // reconciliation points for the engine fast path.
            self.apply_engine_deltas(&eh);
        }
        let hash = match self.scheme {
            Scheme::Native => HashSum::ZERO,
            Scheme::HwInc | Scheme::SwInc => self.incremental_hash(view),
            Scheme::SwTr => self.traversal_hash(view),
        };
        self.records.push(CheckpointRecord {
            kind: info.kind,
            hash,
        });
    }

    fn extra_instructions(&self) -> u64 {
        self.extra_instr
    }

    fn fast_path(&self) -> Option<FastPathSpec> {
        if self.caches.is_some() {
            // The L1/MHM cache model needs every access callback.
            return None;
        }
        Some(FastPathSpec {
            hashing: self.scheme.is_incremental(),
            rounding: self.rounding,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::IncHasher;

    #[test]
    fn scheme_predicates() {
        assert!(Scheme::HwInc.is_incremental());
        assert!(Scheme::SwInc.is_incremental());
        assert!(!Scheme::SwTr.is_incremental());
        assert!(!Scheme::Native.is_incremental());
        assert!(Scheme::SwTr.is_checking());
        assert!(!Scheme::Native.is_checking());
    }

    #[test]
    fn native_records_zero_hashes_and_no_extra_cost() {
        let mut m = CheckMonitor::new(Scheme::Native, None, IgnoreSpec::new());
        m.on_store(0, Addr(0x1000), 0, 5, ValKind::U64);
        assert_eq!(m.extra_instructions(), 0);
        assert_eq!(m.stores_seen(), 1);
    }

    #[test]
    fn sw_inc_charges_per_store_and_hw_does_not() {
        let mut hw = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
        let mut sw = CheckMonitor::new(Scheme::SwInc, None, IgnoreSpec::new());
        for i in 0..10 {
            hw.on_store(0, Addr(0x1000 + i), 0, i, ValKind::U64);
            sw.on_store(0, Addr(0x1000 + i), 0, i, ValKind::U64);
        }
        assert_eq!(hw.extra_instructions(), 0);
        assert_eq!(sw.extra_instructions(), 10 * SW_INC_INSTR_PER_STORE);
    }

    /// The Section 4.1 caveat, demonstrated at the hash level: if the
    /// instrumentation reads a stale old value (a write-write race slips
    /// a store between the instrumented read and the store), the
    /// telescoping breaks and the hash no longer matches the state.
    #[test]
    fn stale_old_value_corrupts_the_hash() {
        let a = 0x10u64;
        // True history: 0 → 5 (thread 1) → 9 (thread 2).
        let mut correct = IncHasher::new(Mix64Hasher::default());
        correct.on_write(a, 0, 5);
        correct.on_write(a, 5, 9);

        // Racy instrumentation: thread 2 read "0" as the old value
        // (before thread 1's store landed) but its store still wrote 9
        // over 5.
        let mut stale = IncHasher::new(Mix64Hasher::default());
        stale.on_write(a, 0, 5);
        stale.on_write(a, 0, 9); // stale old!

        assert_ne!(correct.sum(), stale.sum());
    }

    #[test]
    fn rounding_configures_cores_lazily() {
        let mut m = CheckMonitor::new(Scheme::HwInc, Some(FpRound::default()), IgnoreSpec::new());
        let noisy: f64 = 0.1 + 0.2 + 0.3;
        let clean: f64 = 0.6;
        m.on_store(3, Addr(0x8), 0, noisy.to_bits(), ValKind::F64);
        let mut n = CheckMonitor::new(Scheme::HwInc, Some(FpRound::default()), IgnoreSpec::new());
        n.on_store(3, Addr(0x8), 0, clean.to_bits(), ValKind::F64);
        assert_eq!(m.cores[3].th(), n.cores[3].th());
        // Cores 0..2 exist but are untouched.
        assert_eq!(m.cores.len(), 4);
    }

    #[test]
    fn records_accessor() {
        let m = CheckMonitor::new(Scheme::SwTr, None, IgnoreSpec::new());
        assert!(m.records().is_empty());
        assert_eq!(m.scheme(), Scheme::SwTr);
    }
}
