//! The unified campaign description: one serializable value that pins
//! everything a checking campaign does.
//!
//! Historically every entry point re-collected the same knobs by hand —
//! the harness binaries each parsed scheme/seed/policy flags into a
//! [`CheckerConfig`], and the checker re-collected the same fields again
//! to build cache keys. A [`CampaignSpec`] is the single canonical
//! bundle: workload identity, [`Scheme`], seeds, [`SwitchPolicy`],
//! [`FpRound`], [`IgnoreSpec`], [`FailurePolicy`], worker count, and
//! fault plans. It serializes to one line of deterministic JSON (the
//! same hand-rolled codec style as the corpus baselines: a hand-written
//! writer over [`obs::json`]), so a spec can be submitted over a wire,
//! stored next to a corpus, and diffed byte-for-byte.
//!
//! [`CheckerConfig::from_spec`] and [`Checker::from_spec`] are the
//! canonical entry points, and the checker's cache keys are derived
//! from the spec ([`CampaignSpec::run_key`]) instead of re-collecting
//! the fields by hand.
//!
//! # Example
//!
//! ```
//! use instantcheck::{CampaignSpec, Checker, Scheme};
//! use tsim::{ProgramBuilder, ValKind};
//!
//! let spec = CampaignSpec::new("g-plus-t:full", Scheme::HwInc).with_runs(4);
//! // The JSON round-trip is lossless and one line long.
//! let line = spec.to_json();
//! assert!(!line.contains('\n'));
//! assert_eq!(CampaignSpec::from_json(&line).unwrap(), spec);
//!
//! let source = || {
//!     let mut b = ProgramBuilder::new(2);
//!     let g = b.global("G", ValKind::U64, 1);
//!     let lock = b.mutex();
//!     for t in 0..2u64 {
//!         b.thread(move |ctx| {
//!             ctx.lock(lock);
//!             let v = ctx.load(g.at(0));
//!             ctx.store(g.at(0), v + t + 1);
//!             ctx.unlock(lock);
//!         });
//!     }
//!     b.build()
//! };
//! let report = Checker::from_spec(&spec).unwrap().check(source).unwrap();
//! assert!(report.is_deterministic());
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use adhash::FpRound;
use obs::json::{self, write_str, Value};
use tsim::{FaultKind, FaultPlan, SwitchPolicy, Trigger, FAULT_KINDS};

use crate::cache::{fault_plan_token, RunKey};
use crate::ignore::IgnoreSpec;
use crate::policy::FailurePolicy;
use crate::scheme::Scheme;

/// Version of the spec encoding, serialized as the `version` field so
/// incompatible readers fail loudly instead of misreading.
pub const SPEC_VERSION: u32 = 1;

/// Everything one checking campaign does, as one serializable value.
///
/// Fields mirror [`CheckerConfig`](crate::CheckerConfig) minus the
/// runtime resources (sinks, registries, caches are attached when the
/// spec is instantiated, not serialized). The deliberate split in
/// [`run_key`](CampaignSpec::run_key) applies: `runs`, `policy`,
/// `deadline_ms`, and `jobs` shape the campaign but never a single
/// run's hashes, so they are excluded from cache keys.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Workload identity: program name plus every construction
    /// parameter (the [`RunKey::workload`] contract — equal ids must
    /// build equal programs).
    pub workload: String,
    /// Which scheme computes the hashes.
    pub scheme: Scheme,
    /// Runs to compare (the paper uses 30). Must be nonzero to build a
    /// [`Checker`](crate::Checker).
    pub runs: usize,
    /// Scheduler seed of the first run; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Library-call input seed.
    pub lib_seed: u64,
    /// Preemption policy for all runs.
    pub switch: SwitchPolicy,
    /// FP round-off before hashing (`None` = bit-exact).
    pub rounding: Option<FpRound>,
    /// Structures excluded from the hash.
    pub ignore: IgnoreSpec,
    /// What the campaign does when a run fails.
    pub policy: FailurePolicy,
    /// Wall-clock watchdog per run, in milliseconds (`None` = none).
    pub deadline_ms: Option<u64>,
    /// Step limit per run.
    pub max_steps: u64,
    /// Worker threads for the campaign (`None` = machine default; the
    /// report is byte-identical at any value).
    pub jobs: Option<usize>,
    /// Whether the per-thread L1/MHM cache model runs.
    pub cache_model: bool,
    /// Fault-injection plans applied to specific run slots.
    pub fault_plans: Vec<(usize, FaultPlan)>,
    /// Corpus directory the campaign was recorded against (`None` =
    /// unspecified). Shape-only: storage placement never enters a
    /// [`run_key`](CampaignSpec::run_key).
    pub corpus_dir: Option<String>,
    /// Target segment size of that corpus, in bytes (shape-only).
    pub corpus_segment_bytes: Option<u64>,
    /// Size bound of that corpus, in bytes (shape-only).
    pub corpus_max_bytes: Option<u64>,
    /// Memo-cache slots layered over that corpus (shape-only).
    pub corpus_cache_slots: Option<u64>,
}

/// Stable token for a [`SwitchPolicy`] — shared by spec JSON,
/// [`RunKey::tokens`], and command-line flags.
pub fn switch_token(switch: SwitchPolicy) -> String {
    match switch {
        SwitchPolicy::SyncOnly => "sync-only".to_owned(),
        SwitchPolicy::EveryAccess => "every-access".to_owned(),
        SwitchPolicy::EveryNth(n) => format!("every-nth:{n}"),
    }
}

/// Parses a [`switch_token`] back.
///
/// # Errors
///
/// A description of the malformed token.
pub fn parse_switch(token: &str) -> Result<SwitchPolicy, String> {
    match token {
        "sync-only" => Ok(SwitchPolicy::SyncOnly),
        "every-access" => Ok(SwitchPolicy::EveryAccess),
        other => match other.strip_prefix("every-nth:") {
            Some(n) => n
                .parse()
                .map(SwitchPolicy::EveryNth)
                .map_err(|_| format!("bad switch policy {other:?}")),
            None => Err(format!("bad switch policy {other:?}")),
        },
    }
}

/// Stable token for an optional [`FpRound`] — shared by spec JSON,
/// [`RunKey::tokens`], and command-line flags.
pub fn rounding_token(rounding: Option<FpRound>) -> String {
    match rounding {
        None => "none".to_owned(),
        Some(FpRound::BitExact) => "bit-exact".to_owned(),
        Some(FpRound::MaskMantissa { bits }) => format!("mask-mantissa:{bits}"),
        Some(FpRound::FloorDecimal { digits }) => format!("floor-decimal:{digits}"),
        Some(FpRound::NearestDecimal { digits }) => format!("nearest-decimal:{digits}"),
    }
}

/// Parses a [`rounding_token`] back.
///
/// # Errors
///
/// A description of the malformed token.
pub fn parse_rounding(token: &str) -> Result<Option<FpRound>, String> {
    let num = |s: &str| {
        s.parse::<u32>()
            .map_err(|_| format!("bad rounding {token:?}"))
    };
    if token == "none" {
        return Ok(None);
    }
    if token == "bit-exact" {
        return Ok(Some(FpRound::BitExact));
    }
    if let Some(bits) = token.strip_prefix("mask-mantissa:") {
        return Ok(Some(FpRound::MaskMantissa { bits: num(bits)? }));
    }
    if let Some(digits) = token.strip_prefix("floor-decimal:") {
        return Ok(Some(FpRound::FloorDecimal {
            digits: num(digits)?,
        }));
    }
    if let Some(digits) = token.strip_prefix("nearest-decimal:") {
        return Ok(Some(FpRound::NearestDecimal {
            digits: num(digits)?,
        }));
    }
    Err(format!("bad rounding {token:?}"))
}

/// Stable token for a [`FailurePolicy`].
fn policy_token(policy: FailurePolicy) -> String {
    match policy {
        FailurePolicy::Abort => "abort".to_owned(),
        FailurePolicy::Skip { max_failures } => format!("skip:{max_failures}"),
        FailurePolicy::Retry {
            max_retries,
            reseed,
        } => format!(
            "retry:{max_retries}:{}",
            if reseed { "reseed" } else { "same" }
        ),
    }
}

fn parse_policy(token: &str) -> Result<FailurePolicy, String> {
    if token == "abort" {
        return Ok(FailurePolicy::Abort);
    }
    if let Some(n) = token.strip_prefix("skip:") {
        let max_failures = n.parse().map_err(|_| format!("bad policy {token:?}"))?;
        return Ok(FailurePolicy::Skip { max_failures });
    }
    if let Some(rest) = token.strip_prefix("retry:") {
        let (n, mode) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad policy {token:?}"))?;
        let max_retries = n.parse().map_err(|_| format!("bad policy {token:?}"))?;
        let reseed = match mode {
            "reseed" => true,
            "same" => false,
            _ => return Err(format!("bad policy {token:?}")),
        };
        return Ok(FailurePolicy::Retry {
            max_retries,
            reseed,
        });
    }
    Err(format!("bad policy {token:?}"))
}

fn trigger_token(trigger: Trigger) -> String {
    match trigger {
        Trigger::Never => "never".to_owned(),
        Trigger::Nth(n) => format!("nth:{n}"),
        Trigger::Rate { num, denom } => format!("rate:{num}/{denom}"),
    }
}

fn parse_trigger(token: &str) -> Result<Trigger, String> {
    if token == "never" {
        return Ok(Trigger::Never);
    }
    if let Some(n) = token.strip_prefix("nth:") {
        return n
            .parse()
            .map(Trigger::Nth)
            .map_err(|_| format!("bad trigger {token:?}"));
    }
    if let Some(rate) = token.strip_prefix("rate:") {
        if let Some((num, denom)) = rate.split_once('/') {
            let num = num.parse().map_err(|_| format!("bad trigger {token:?}"))?;
            let denom: u64 = denom
                .parse()
                .map_err(|_| format!("bad trigger {token:?}"))?;
            if denom == 0 {
                return Err(format!("bad trigger {token:?}: zero denominator"));
            }
            return Ok(Trigger::Rate { num, denom });
        }
    }
    Err(format!("bad trigger {token:?}"))
}

fn parse_fault_kind(label: &str) -> Result<FaultKind, String> {
    FAULT_KINDS
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| format!("unknown fault kind {label:?}"))
}

impl CampaignSpec {
    /// A default campaign over `workload`: 30 runs, base seed 1,
    /// sync-only switching, bit-exact hashing, nothing ignored, abort
    /// on the first failed run — the same defaults as
    /// [`CheckerConfig::new`](crate::CheckerConfig::new).
    pub fn new(workload: impl Into<String>, scheme: Scheme) -> Self {
        CampaignSpec {
            workload: workload.into(),
            scheme,
            runs: 30,
            base_seed: 1,
            lib_seed: 0xfeed,
            switch: SwitchPolicy::SyncOnly,
            rounding: None,
            ignore: IgnoreSpec::new(),
            policy: FailurePolicy::Abort,
            deadline_ms: None,
            max_steps: 20_000_000,
            jobs: None,
            cache_model: false,
            fault_plans: Vec::new(),
            corpus_dir: None,
            corpus_segment_bytes: None,
            corpus_max_bytes: None,
            corpus_cache_slots: None,
        }
    }

    /// Sets the number of runs.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the first run's scheduler seed.
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the failure policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the campaign's worker-thread count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// The per-run deadline as a [`Duration`], when one is set.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }

    /// The cache key of one run attempt of this campaign: slot `slot`
    /// running under scheduler seed `seed`, with allocator-replay
    /// provenance `alloc_seed` (see [`RunKey::alloc_seed`]).
    ///
    /// This is the *only* place run keys are assembled — the checker
    /// derives its keys from the spec, so a spec stored next to a
    /// corpus provably addresses the same entries the campaign used.
    /// `runs`, `policy`, `deadline_ms`, and `jobs` never enter the key:
    /// they decide which attempts run and how fast, not what an attempt
    /// computes.
    #[must_use]
    pub fn run_key(&self, slot: usize, seed: u64, alloc_seed: Option<u64>) -> RunKey {
        let fault_token = self
            .fault_plans
            .iter()
            .find(|(s, _)| *s == slot)
            .map_or(0, |(_, plan)| fault_plan_token(plan));
        RunKey {
            workload: self.workload.clone(),
            scheme: self.scheme,
            seed,
            lib_seed: self.lib_seed,
            switch: self.switch,
            max_steps: self.max_steps,
            rounding: self.rounding,
            ignore_token: self.ignore.cache_token(),
            fault_token,
            cache_model: self.cache_model,
            alloc_seed,
        }
    }

    /// Serializes the spec as one line of deterministic JSON — equal
    /// specs produce byte-equal lines, so specs can be diffed, hashed,
    /// and submitted over line-oriented transports (the `icd`
    /// orchestrator reads one spec per line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":");
        let _ = write!(out, "{SPEC_VERSION}");
        out.push_str(",\"workload\":");
        write_str(&mut out, &self.workload);
        out.push_str(",\"scheme\":");
        write_str(&mut out, self.scheme.name());
        let _ = write!(out, ",\"runs\":{}", self.runs);
        let _ = write!(out, ",\"base_seed\":{}", self.base_seed);
        let _ = write!(out, ",\"lib_seed\":{}", self.lib_seed);
        out.push_str(",\"switch\":");
        write_str(&mut out, &switch_token(self.switch));
        out.push_str(",\"rounding\":");
        write_str(&mut out, &rounding_token(self.rounding));
        out.push_str(",\"policy\":");
        write_str(&mut out, &policy_token(self.policy));
        match self.deadline_ms {
            Some(ms) => {
                let _ = write!(out, ",\"deadline_ms\":{ms}");
            }
            None => out.push_str(",\"deadline_ms\":null"),
        }
        let _ = write!(out, ",\"max_steps\":{}", self.max_steps);
        match self.jobs {
            Some(jobs) => {
                let _ = write!(out, ",\"jobs\":{jobs}");
            }
            None => out.push_str(",\"jobs\":null"),
        }
        let _ = write!(out, ",\"cache_model\":{}", self.cache_model);
        out.push_str(",\"ignore\":{\"globals\":[");
        for (i, (name, range)) in self.ignore.globals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            write_str(&mut out, name);
            match range {
                None => out.push_str(",null"),
                Some((start, end)) => {
                    let _ = write!(out, ",[{start},{end}]");
                }
            }
            out.push(']');
        }
        out.push_str("],\"sites\":[");
        for (i, (site, offsets)) in self.ignore.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            write_str(&mut out, site);
            match offsets {
                None => out.push_str(",null"),
                Some(offs) => {
                    out.push_str(",[");
                    for (j, o) in offs.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{o}");
                    }
                    out.push(']');
                }
            }
            out.push(']');
        }
        out.push_str("]},\"faults\":[");
        for (i, (slot, plan)) in self.fault_plans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"slot\":{slot},\"seed\":{},", plan.seed);
            out.push_str("\"triggers\":[");
            let mut first = true;
            for kind in FAULT_KINDS {
                let trigger = plan.trigger(kind);
                if trigger == Trigger::Never {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('[');
                write_str(&mut out, kind.label());
                out.push(',');
                write_str(&mut out, &trigger_token(trigger));
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push(']');
        // Shape-only corpus placement fields are emitted only when set,
        // so specs written before they existed keep serializing to the
        // exact bytes they were committed with.
        if let Some(dir) = &self.corpus_dir {
            out.push_str(",\"corpus_dir\":");
            write_str(&mut out, dir);
        }
        if let Some(n) = self.corpus_segment_bytes {
            let _ = write!(out, ",\"corpus_segment_bytes\":{n}");
        }
        if let Some(n) = self.corpus_max_bytes {
            let _ = write!(out, ",\"corpus_max_bytes\":{n}");
        }
        if let Some(n) = self.corpus_cache_slots {
            let _ = write!(out, ",\"corpus_cache_slots\":{n}");
        }
        out.push('}');
        out
    }

    /// Parses a spec back from its [`to_json`](Self::to_json) form.
    ///
    /// # Errors
    ///
    /// A description of the first missing, mistyped, or unparsable
    /// field, including a version mismatch.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let v = json::parse(text)?;
        Self::from_value(&v)
    }

    /// Parses a spec from an already-parsed JSON value (used by callers
    /// that wrap specs in larger envelopes, e.g. `icd` submissions).
    ///
    /// # Errors
    ///
    /// As for [`from_json`](Self::from_json).
    pub fn from_value(v: &Value) -> Result<CampaignSpec, String> {
        let str_field = |name: &str| -> Result<&str, String> {
            v.get(name)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        let opt_u64_field = |name: &str| -> Result<Option<u64>, String> {
            match v.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(val) => val
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("bad numeric field {name:?}")),
            }
        };
        let opt_str_field = |name: &str| -> Result<Option<String>, String> {
            match v.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(val) => val
                    .as_str()
                    .map(|s| Some(s.to_owned()))
                    .ok_or_else(|| format!("bad string field {name:?}")),
            }
        };
        let version = u64_field("version")?;
        if version != u64::from(SPEC_VERSION) {
            return Err(format!(
                "spec version {version} unsupported (expected {SPEC_VERSION})"
            ));
        }
        let scheme_name = str_field("scheme")?;
        // Lenient on read ("hw-inc" and "HwInc" both work), canonical
        // on write (`Scheme::name`), so round-trips stay byte-stable.
        let scheme =
            Scheme::parse(scheme_name).ok_or_else(|| format!("unknown scheme {scheme_name:?}"))?;
        let cache_model = match v.get("cache_model") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("missing boolean field \"cache_model\"".to_owned()),
        };

        let mut ignore = IgnoreSpec::new();
        let ignore_obj = v
            .get("ignore")
            .ok_or_else(|| "missing object field \"ignore\"".to_owned())?;
        let section = |name: &str| -> Result<&[Value], String> {
            match ignore_obj.get(name) {
                Some(Value::Arr(items)) => Ok(items),
                _ => Err(format!("missing array field \"ignore\".{name:?}")),
            }
        };
        for entry in section("globals")? {
            let Value::Arr(pair) = entry else {
                return Err("bad ignore.globals entry".to_owned());
            };
            let name = pair
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| "bad ignore.globals entry".to_owned())?;
            ignore = match pair.get(1) {
                Some(Value::Null) | None => ignore.ignore_global(name),
                Some(Value::Arr(range)) if range.len() == 2 => {
                    let bound = |i: usize| {
                        range[i]
                            .as_u64()
                            .map(|n| n as usize)
                            .ok_or_else(|| "bad ignore.globals range".to_owned())
                    };
                    ignore.ignore_global_range(name, bound(0)?, bound(1)?)
                }
                _ => return Err("bad ignore.globals entry".to_owned()),
            };
        }
        for entry in section("sites")? {
            let Value::Arr(pair) = entry else {
                return Err("bad ignore.sites entry".to_owned());
            };
            let site = pair
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| "bad ignore.sites entry".to_owned())?;
            ignore = match pair.get(1) {
                Some(Value::Null) | None => ignore.ignore_site(site),
                Some(Value::Arr(offsets)) => {
                    let offs: Result<Vec<usize>, String> = offsets
                        .iter()
                        .map(|o| {
                            o.as_u64()
                                .map(|n| n as usize)
                                .ok_or_else(|| "bad ignore.sites offset".to_owned())
                        })
                        .collect();
                    ignore.ignore_site_offsets(site, offs?)
                }
                _ => return Err("bad ignore.sites entry".to_owned()),
            };
        }

        let mut fault_plans = Vec::new();
        match v.get("faults") {
            Some(Value::Arr(items)) => {
                for item in items {
                    let slot = item
                        .get("slot")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "bad faults entry: missing slot".to_owned())?;
                    let seed = item
                        .get("seed")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "bad faults entry: missing seed".to_owned())?;
                    let mut plan = FaultPlan::new(seed);
                    match item.get("triggers") {
                        Some(Value::Arr(triggers)) => {
                            for t in triggers {
                                let Value::Arr(pair) = t else {
                                    return Err("bad faults trigger entry".to_owned());
                                };
                                let label = pair
                                    .first()
                                    .and_then(Value::as_str)
                                    .ok_or_else(|| "bad faults trigger entry".to_owned())?;
                                let token = pair
                                    .get(1)
                                    .and_then(Value::as_str)
                                    .ok_or_else(|| "bad faults trigger entry".to_owned())?;
                                plan = plan.with(parse_fault_kind(label)?, parse_trigger(token)?);
                            }
                        }
                        _ => return Err("bad faults entry: missing triggers".to_owned()),
                    }
                    fault_plans.push((slot as usize, plan));
                }
            }
            _ => return Err("missing array field \"faults\"".to_owned()),
        }

        Ok(CampaignSpec {
            workload: str_field("workload")?.to_owned(),
            scheme,
            runs: u64_field("runs")? as usize,
            base_seed: u64_field("base_seed")?,
            lib_seed: u64_field("lib_seed")?,
            switch: parse_switch(str_field("switch")?)?,
            rounding: parse_rounding(str_field("rounding")?)?,
            ignore,
            policy: parse_policy(str_field("policy")?)?,
            deadline_ms: opt_u64_field("deadline_ms")?,
            max_steps: u64_field("max_steps")?,
            jobs: opt_u64_field("jobs")?.map(|n| n as usize),
            cache_model,
            fault_plans,
            corpus_dir: opt_str_field("corpus_dir")?,
            corpus_segment_bytes: opt_u64_field("corpus_segment_bytes")?,
            corpus_max_bytes: opt_u64_field("corpus_max_bytes")?,
            corpus_cache_slots: opt_u64_field("corpus_cache_slots")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> CampaignSpec {
        CampaignSpec {
            workload: "canneal:scaled".into(),
            scheme: Scheme::SwTr,
            runs: 8,
            base_seed: 9,
            lib_seed: 3,
            switch: SwitchPolicy::EveryNth(5),
            rounding: Some(FpRound::NearestDecimal { digits: 3 }),
            ignore: IgnoreSpec::new()
                .ignore_global("noise")
                .ignore_global_range("g", 1, 3)
                .ignore_site("free_list")
                .ignore_site_offsets("records", [2, 5]),
            policy: FailurePolicy::Retry {
                max_retries: 2,
                reseed: true,
            },
            deadline_ms: Some(5000),
            max_steps: 1_000_000,
            jobs: Some(4),
            cache_model: true,
            fault_plans: vec![(
                2,
                FaultPlan::new(7)
                    .with(FaultKind::AllocFail, Trigger::Nth(0))
                    .with(FaultKind::BitFlip, Trigger::Rate { num: 1, denom: 50 }),
            )],
            corpus_dir: Some("results/corpus".into()),
            corpus_segment_bytes: Some(1 << 23),
            corpus_max_bytes: Some(1 << 30),
            corpus_cache_slots: Some(1 << 14),
        }
    }

    #[test]
    fn defaults_match_checker_config() {
        let spec = CampaignSpec::new("w", Scheme::HwInc);
        let cfg = crate::CheckerConfig::new(Scheme::HwInc);
        assert_eq!(spec.runs, cfg.runs);
        assert_eq!(spec.base_seed, cfg.base_seed);
        assert_eq!(spec.lib_seed, cfg.lib_seed);
        assert_eq!(spec.switch, cfg.switch);
        assert_eq!(spec.rounding, cfg.rounding);
        assert_eq!(spec.max_steps, cfg.max_steps);
        assert_eq!(spec.policy, cfg.policy);
        assert_eq!(spec.deadline(), cfg.deadline);
        assert_eq!(spec.jobs, cfg.jobs);
        assert_eq!(spec.cache_model, cfg.cache_model);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        for spec in [
            CampaignSpec::new("w:full", Scheme::HwInc),
            full_spec(),
            CampaignSpec::new("weird \"name\" \t %", Scheme::Native),
        ] {
            let line = spec.to_json();
            assert!(!line.contains('\n'), "one line: {line}");
            let back = CampaignSpec::from_json(&line).expect("parses");
            assert_eq!(spec, back);
            assert_eq!(back.to_json(), line, "re-serialization is stable");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let line = full_spec()
            .to_json()
            .replace("\"version\":1", "\"version\":99");
        let err = CampaignSpec::from_json(&line).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn malformed_fields_are_rejected_with_a_field_name() {
        let good = full_spec().to_json();
        for (needle, replacement, expect) in [
            ("\"scheme\":\"SwTr\"", "\"scheme\":\"Quantum\"", "scheme"),
            (
                "\"switch\":\"every-nth:5\"",
                "\"switch\":\"often\"",
                "switch",
            ),
            (
                "\"policy\":\"retry:2:reseed\"",
                "\"policy\":\"pray\"",
                "policy",
            ),
            (
                "\"rounding\":\"nearest-decimal:3\"",
                "\"rounding\":\"fuzzy\"",
                "rounding",
            ),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "replacement {needle:?} must apply");
            let err = CampaignSpec::from_json(&bad).unwrap_err();
            assert!(err.contains(expect), "{expect}: {err}");
        }
    }

    #[test]
    fn run_key_comes_from_the_spec() {
        let spec = full_spec();
        let key = spec.run_key(2, spec.base_seed + 2, Some(9));
        assert_eq!(key.workload, "canneal:scaled");
        assert_eq!(key.scheme, Scheme::SwTr);
        assert_eq!(key.seed, 11);
        assert_eq!(key.alloc_seed, Some(9));
        assert_ne!(key.fault_token, 0, "slot 2 has a fault plan");
        let unfaulted = spec.run_key(1, spec.base_seed + 1, Some(9));
        assert_eq!(unfaulted.fault_token, 0, "slot 1 has none");
        assert_eq!(key.ignore_token, spec.ignore.cache_token());
    }

    #[test]
    fn campaign_shape_fields_do_not_enter_the_run_key() {
        // runs/policy/deadline/jobs decide which attempts run, not what
        // an attempt computes — changing them must keep keys (and thus
        // corpus entries) valid.
        let base = full_spec();
        let key = base.run_key(0, 1, None).canonical();
        let mut reshaped = base.clone();
        reshaped.runs = 30;
        reshaped.policy = FailurePolicy::Abort;
        reshaped.deadline_ms = None;
        reshaped.jobs = None;
        reshaped.corpus_dir = None;
        reshaped.corpus_segment_bytes = None;
        reshaped.corpus_max_bytes = None;
        reshaped.corpus_cache_slots = None;
        assert_eq!(reshaped.run_key(0, 1, None).canonical(), key);
    }

    #[test]
    fn specs_without_corpus_fields_serialize_as_before_them() {
        // Committed spec files predate the corpus placement fields;
        // an all-`None` spec must keep producing the exact bytes those
        // files hold, and parsing them must keep working.
        let spec = CampaignSpec::new("w", Scheme::HwInc);
        let line = spec.to_json();
        assert!(!line.contains("corpus"), "{line}");
        assert_eq!(CampaignSpec::from_json(&line).expect("parses"), spec);
    }

    #[test]
    fn trigger_tokens_round_trip() {
        for t in [
            Trigger::Never,
            Trigger::Nth(0),
            Trigger::Nth(17),
            Trigger::Rate { num: 1, denom: 3 },
        ] {
            assert_eq!(parse_trigger(&trigger_token(t)).unwrap(), t);
        }
        assert!(parse_trigger("rate:1/0").is_err());
        assert!(parse_trigger("sometimes").is_err());
    }
}
