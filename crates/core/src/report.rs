//! Cross-run comparison reports: per-checkpoint verdicts, nondeterminism
//! distributions (Figures 5 and 8), and the summary counters of Tables 1
//! and 2.

use std::collections::BTreeMap;
use std::fmt;

use mhm::CacheStats;
use tsim::{CheckpointKind, SimErrorKind};

use crate::checker::RunHashes;
use crate::policy::RunFailure;

/// How many of the compared runs produced each distinct state at one
/// checkpoint, sorted descending — the paper's "distribution of
/// nondeterminism points" (e.g. `16-11-3` in Figure 5(c)).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Distribution(Vec<usize>);

impl Distribution {
    /// Builds a distribution from the hash each run produced.
    pub fn from_hashes<I: IntoIterator<Item = u64>>(hashes: I) -> Self {
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for h in hashes {
            *counts.entry(h).or_insert(0) += 1;
        }
        let mut v: Vec<usize> = counts.into_values().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        Distribution(v)
    }

    /// The per-state run counts, largest first.
    pub fn counts(&self) -> &[usize] {
        &self.0
    }

    /// Number of distinct states observed.
    pub fn distinct_states(&self) -> usize {
        self.0.len()
    }

    /// `true` if every run produced the same state.
    pub fn is_deterministic(&self) -> bool {
        self.0.len() <= 1
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "-");
        }
        let parts: Vec<String> = self.0.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join("-"))
    }
}

/// The verdict for one dynamic checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointVerdict {
    /// All runs produced the same state hash here.
    Deterministic,
    /// At least two runs produced different state hashes here.
    Nondeterministic,
}

/// The outcome of comparing `runs` executions of one program.
///
/// Reports compare equal field for field — two campaigns that differ
/// only in how their runs were scheduled across worker threads (see
/// [`CheckerConfig::jobs`](crate::CheckerConfig::jobs)) produce equal
/// reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// How many runs were compared.
    pub runs: usize,
    /// Checkpoints compared (the minimum checkpoint count over runs).
    pub aligned_checkpoints: usize,
    /// `true` if the runs disagreed on the *number or kind* of
    /// checkpoints — control-flow-level nondeterminism.
    pub structural_divergence: bool,
    /// Dynamic checking points at which all runs agreed.
    pub det_points: usize,
    /// Dynamic checking points at which some runs disagreed.
    pub ndet_points: usize,
    /// The first run (1-based) whose hashes differ from run 1's, i.e.
    /// how quickly a tester learns the program is nondeterministic
    /// (column 6 / 8 of Table 1). `None` if never.
    pub first_ndet_run: Option<usize>,
    /// Whether the final (end-of-program) states agree across runs.
    pub det_at_end: bool,
    /// Whether the output streams agree across runs (§4.3).
    pub output_deterministic: bool,
    /// Per-checkpoint distributions, aligned by checkpoint index.
    pub distributions: Vec<Distribution>,
    /// Kind of each aligned checkpoint (from run 1).
    pub kinds: Vec<CheckpointKind>,
    /// Failed run attempts the campaign's
    /// [`FailurePolicy`](crate::FailurePolicy) absorbed (empty under
    /// the default abort policy, which surfaces the error instead).
    pub failures: Vec<RunFailure>,
    /// Campaign-wide L1/MHM cache counters (merged over the completed
    /// runs), when the cache model was enabled.
    pub cache: Option<CacheStats>,
}

impl CheckReport {
    /// Builds a report by aligning and comparing the runs' hash
    /// sequences.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn from_runs(runs: &[RunHashes]) -> Self {
        assert!(!runs.is_empty(), "need at least one run to report on");
        Self::from_outcomes(runs, Vec::new())
    }

    /// Builds a report from the completed runs of a campaign plus the
    /// failures its policy absorbed. Unlike [`from_runs`], tolerates an
    /// empty `runs` slice (a campaign whose every run failed under a
    /// generous skip budget): the comparison counters are all zero and
    /// only the failure section carries information.
    ///
    /// [`from_runs`]: CheckReport::from_runs
    pub fn from_outcomes(runs: &[RunHashes], failures: Vec<RunFailure>) -> Self {
        let n = runs.len();
        let min_cp = runs.iter().map(|r| r.checkpoints.len()).min().unwrap_or(0);
        let structural_divergence = runs.iter().any(|r| {
            r.checkpoints.len() != runs[0].checkpoints.len()
                || r.checkpoints
                    .iter()
                    .zip(&runs[0].checkpoints)
                    .any(|(a, b)| a.kind != b.kind)
        });

        let mut det_points = 0;
        let mut ndet_points = 0;
        let mut distributions = Vec::with_capacity(min_cp);
        let mut kinds = Vec::with_capacity(min_cp);
        for cp in 0..min_cp {
            let dist =
                Distribution::from_hashes(runs.iter().map(|r| r.checkpoints[cp].hash.as_raw()));
            if dist.is_deterministic() {
                det_points += 1;
            } else {
                ndet_points += 1;
            }
            kinds.push(runs[0].checkpoints[cp].kind);
            distributions.push(dist);
        }
        // Checkpoints beyond the shortest run exist in some runs only —
        // control-flow-level nondeterminism, reported through
        // `structural_divergence` rather than the point counters.

        let det_at_end = !structural_divergence
            && min_cp > 0
            && distributions
                .last()
                .is_some_and(Distribution::is_deterministic);

        let output_deterministic = runs
            .iter()
            .all(|r| r.output_digest == runs[0].output_digest);

        let first_ndet_run = (1..n)
            .find(|&r| runs[r].differs_from(&runs[0]))
            .map(|r| r + 1); // 1-based run number

        let mut cache: Option<CacheStats> = None;
        for r in runs {
            if let Some(c) = r.cache {
                cache.get_or_insert_with(CacheStats::default).merge(c);
            }
        }

        CheckReport {
            runs: n,
            aligned_checkpoints: min_cp,
            structural_divergence,
            det_points,
            ndet_points,
            first_ndet_run,
            det_at_end,
            output_deterministic,
            distributions,
            kinds,
            failures,
            cache,
        }
    }

    /// `true` if the program is externally deterministic within this
    /// test's coverage: every checkpoint, the end state, and the output
    /// agree across all runs, and no run's very *completion* depended on
    /// the schedule (see [`schedule_divergence`]).
    ///
    /// [`schedule_divergence`]: CheckReport::schedule_divergence
    pub fn is_deterministic(&self) -> bool {
        self.ndet_points == 0
            && !self.structural_divergence
            && self.output_deterministic
            && !self.schedule_divergence()
    }

    /// `true` if some runs completed while others failed in a
    /// schedule-dependent way (deadlock, livelock, watchdog timeout —
    /// see [`SimError::is_schedule_dependent`](tsim::SimError)). Whether
    /// the program *finishes* then depends on the interleaving, which is
    /// an external-determinism finding in its own right, not
    /// infrastructure noise.
    pub fn schedule_divergence(&self) -> bool {
        self.runs > 0
            && self
                .failures
                .iter()
                .any(|f| f.error.is_schedule_dependent())
    }

    /// The absorbed failures bucketed by [`SimErrorKind`], most common
    /// kind first — the report's per-run failure section.
    pub fn failure_buckets(&self) -> Vec<(SimErrorKind, usize)> {
        let mut buckets: BTreeMap<SimErrorKind, usize> = BTreeMap::new();
        for f in &self.failures {
            *buckets.entry(f.error.kind()).or_insert(0) += 1;
        }
        let mut v: Vec<(SimErrorKind, usize)> = buckets.into_iter().collect();
        v.sort_by_key(|&(kind, count)| (std::cmp::Reverse(count), kind));
        v
    }

    /// The absorbed failures grouped by run slot, in slot order; each
    /// bucket holds the slot's failed attempts in attempt order. A
    /// slot recovering under [`FailurePolicy::Retry`](crate::FailurePolicy)
    /// marks only its *own* bucket recovered — failures never move
    /// between buckets, whatever order the campaign ran the slots in.
    pub fn failures_by_slot(&self) -> Vec<(usize, Vec<&RunFailure>)> {
        let mut buckets: BTreeMap<usize, Vec<&RunFailure>> = BTreeMap::new();
        for f in &self.failures {
            buckets.entry(f.run_index).or_default().push(f);
        }
        buckets.into_iter().collect()
    }

    /// The failures whose slots never completed (under
    /// [`FailurePolicy::Retry`](crate::FailurePolicy) a slot can fail
    /// and then recover; those attempts are excluded here).
    pub fn unrecovered_failures(&self) -> impl Iterator<Item = &RunFailure> {
        self.failures.iter().filter(|f| !f.recovered)
    }

    /// The verdict at one aligned checkpoint.
    pub fn verdict(&self, checkpoint: usize) -> CheckpointVerdict {
        if self.distributions[checkpoint].is_deterministic() {
            CheckpointVerdict::Deterministic
        } else {
            CheckpointVerdict::Nondeterministic
        }
    }

    /// Groups the checkpoints by their distribution, most common first —
    /// the Figure 5/8 presentation ("156 checking points behaved
    /// 16-11-3").
    pub fn grouped_distributions(&self) -> Vec<(Distribution, usize)> {
        let mut groups: BTreeMap<Distribution, usize> = BTreeMap::new();
        for d in &self.distributions {
            *groups.entry(d.clone()).or_insert(0) += 1;
        }
        let mut v: Vec<(Distribution, usize)> = groups.into_iter().collect();
        v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        v
    }

    /// The distributions of only the nondeterministic checkpoints.
    pub fn ndet_distributions(&self) -> Vec<(Distribution, usize)> {
        self.grouped_distributions()
            .into_iter()
            .filter(|(d, _)| !d.is_deterministic())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::CheckpointRecord;
    use adhash::HashSum;
    use tsim::CheckpointKind;

    fn hashes(seq: &[u64]) -> RunHashes {
        RunHashes {
            checkpoints: seq
                .iter()
                .map(|&h| CheckpointRecord {
                    kind: CheckpointKind::End,
                    hash: HashSum::from_raw(h),
                })
                .collect(),
            output_digest: 0,
            extra_instr: 0,
            stores: 0,
            hash_updates: 0,
            cache: None,
        }
    }

    #[test]
    fn distribution_sorting_and_display() {
        let d = Distribution::from_hashes([1, 2, 1, 1, 3, 2]);
        assert_eq!(d.counts(), &[3, 2, 1]);
        assert_eq!(d.distinct_states(), 3);
        assert!(!d.is_deterministic());
        assert_eq!(d.to_string(), "3-2-1");
        let det = Distribution::from_hashes([7, 7, 7]);
        assert!(det.is_deterministic());
        assert_eq!(det.to_string(), "3");
        assert_eq!(Distribution::from_hashes([]).to_string(), "-");
    }

    #[test]
    fn deterministic_report() {
        let runs = vec![hashes(&[1, 2, 3]); 5];
        let r = CheckReport::from_runs(&runs);
        assert!(r.is_deterministic());
        assert_eq!(r.det_points, 3);
        assert_eq!(r.ndet_points, 0);
        assert_eq!(r.first_ndet_run, None);
        assert!(r.det_at_end);
        assert!(!r.structural_divergence);
        assert_eq!(r.verdict(0), CheckpointVerdict::Deterministic);
    }

    #[test]
    fn nondeterminism_at_one_point() {
        let runs = vec![hashes(&[1, 2, 3]), hashes(&[1, 9, 3]), hashes(&[1, 2, 3])];
        let r = CheckReport::from_runs(&runs);
        assert!(!r.is_deterministic());
        assert_eq!(r.det_points, 2);
        assert_eq!(r.ndet_points, 1);
        assert_eq!(r.first_ndet_run, Some(2));
        assert!(r.det_at_end, "masked by the end of the run");
        assert_eq!(r.verdict(1), CheckpointVerdict::Nondeterministic);
        let ndet = r.ndet_distributions();
        assert_eq!(ndet.len(), 1);
        assert_eq!(ndet[0].0.counts(), &[2, 1]);
    }

    #[test]
    fn first_ndet_run_counts_runs_not_indices() {
        let runs = vec![hashes(&[1]), hashes(&[1]), hashes(&[2])];
        let r = CheckReport::from_runs(&runs);
        assert_eq!(r.first_ndet_run, Some(3));
        assert!(!r.det_at_end);
    }

    #[test]
    fn structural_divergence_detected() {
        let runs = vec![hashes(&[1, 2]), hashes(&[1])];
        let r = CheckReport::from_runs(&runs);
        assert!(r.structural_divergence);
        assert!(!r.is_deterministic());
        assert!(!r.det_at_end);
        assert_eq!(r.aligned_checkpoints, 1);
        assert_eq!(r.first_ndet_run, Some(2));
    }

    #[test]
    fn output_divergence_detected() {
        let mut a = hashes(&[1]);
        let mut b = hashes(&[1]);
        a.output_digest = 10;
        b.output_digest = 20;
        let r = CheckReport::from_runs(&[a, b]);
        assert!(!r.output_deterministic);
        assert!(!r.is_deterministic());
        assert_eq!(r.first_ndet_run, Some(2));
        assert_eq!(r.ndet_points, 0, "memory states agreed");
    }

    #[test]
    fn grouped_distributions_count_checkpoints() {
        let runs = vec![hashes(&[1, 2, 3, 4]), hashes(&[1, 9, 3, 4])];
        let r = CheckReport::from_runs(&runs);
        let groups = r.grouped_distributions();
        // Three checkpoints behaved "2", one behaved "1-1".
        assert_eq!(groups[0].1, 3);
        assert_eq!(groups[1].1, 1);
        assert_eq!(groups[1].0.counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_runs_rejected() {
        let _ = CheckReport::from_runs(&[]);
    }

    fn failure(error: SimError, recovered: bool) -> RunFailure {
        RunFailure {
            run_index: 0,
            seed: 1,
            error,
            attempt: 0,
            recovered,
        }
    }

    use tsim::SimError;

    #[test]
    fn all_failed_campaign_reports_without_panicking() {
        let r =
            CheckReport::from_outcomes(&[], vec![failure(SimError::StepLimit { limit: 9 }, false)]);
        assert_eq!(r.runs, 0);
        assert_eq!(r.aligned_checkpoints, 0);
        assert!(!r.det_at_end);
        assert!(!r.schedule_divergence(), "no completed run to diverge from");
        assert_eq!(r.failure_buckets(), vec![(SimErrorKind::StepLimit, 1)]);
    }

    #[test]
    fn schedule_dependent_failure_is_a_determinism_signal() {
        let runs = vec![hashes(&[1, 2]); 4];
        let clean = CheckReport::from_outcomes(&runs, Vec::new());
        assert!(clean.is_deterministic());
        let with_deadlock = CheckReport::from_outcomes(
            &runs,
            vec![failure(
                SimError::Deadlock {
                    detail: "t0<->t1".into(),
                },
                false,
            )],
        );
        assert!(with_deadlock.schedule_divergence());
        assert!(!with_deadlock.is_deterministic());
        // A non-schedule failure (resource exhaustion) is noise, not a
        // verdict: determinism of the surviving runs stands.
        let with_alloc = CheckReport::from_outcomes(
            &runs,
            vec![failure(SimError::AllocFailed { tid: 0, site: "s" }, false)],
        );
        assert!(!with_alloc.schedule_divergence());
        assert!(with_alloc.is_deterministic());
    }

    #[test]
    fn failure_buckets_sort_by_count_then_kind() {
        let runs = vec![hashes(&[1]); 2];
        let r = CheckReport::from_outcomes(
            &runs,
            vec![
                failure(SimError::StepLimit { limit: 1 }, false),
                failure(
                    SimError::Deadlock {
                        detail: String::new(),
                    },
                    true,
                ),
                failure(
                    SimError::Deadlock {
                        detail: String::new(),
                    },
                    false,
                ),
            ],
        );
        assert_eq!(
            r.failure_buckets(),
            vec![(SimErrorKind::Deadlock, 2), (SimErrorKind::StepLimit, 1)]
        );
        assert_eq!(r.unrecovered_failures().count(), 2);
    }
}
