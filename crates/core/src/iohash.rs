//! Hashing of the program's output stream (Section 4.3).
//!
//! Memory-state hashing covers the state left in memory; for programs
//! whose result is what they *write out* (pbzip2's compressed stream),
//! InstantCheck additionally hashes the output bytes at the `write()`
//! boundary. Unlike the memory-state hash, the stream hash is
//! **order-sensitive**: reordered output is different output.

use std::fmt;

/// An incremental, order-sensitive hash over an output byte stream.
///
/// # Example
///
/// ```
/// use instantcheck::OutputHasher;
///
/// let mut a = OutputHasher::new();
/// a.update(b"hello ");
/// a.update(b"world");
/// let mut b = OutputHasher::new();
/// b.update(b"hello world");
/// assert_eq!(a.digest(), b.digest()); // chunking is irrelevant…
///
/// let mut c = OutputHasher::new();
/// c.update(b"world hello ");
/// assert_ne!(a.digest(), c.digest()); // …but order matters
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutputHasher {
    state: u64,
    len: u64,
}

impl Default for OutputHasher {
    fn default() -> Self {
        OutputHasher::new()
    }
}

impl OutputHasher {
    /// Creates a hasher for an empty stream.
    pub fn new() -> Self {
        OutputHasher {
            state: 0x6a09_e667_f3bc_c908,
            len: 0,
        }
    }

    /// Absorbs the next chunk of the stream.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let mut x = self.state ^ (u64::from(b).wrapping_add(0x9e37_79b9));
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            self.state = x ^ (x >> 31);
            self.len += 1;
        }
    }

    /// Total bytes absorbed.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if no bytes were absorbed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 64-bit digest of the stream so far (includes the length).
    pub fn digest(&self) -> u64 {
        let mut x = self.state ^ self.len.rotate_left(32);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^ (x >> 31)
    }
}

impl fmt::Display for OutputHasher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_streams_agree() {
        assert_eq!(
            OutputHasher::new().digest(),
            OutputHasher::default().digest()
        );
        assert!(OutputHasher::new().is_empty());
    }

    #[test]
    fn chunking_is_invisible() {
        let mut a = OutputHasher::new();
        for b in b"determinism" {
            a.update(&[*b]);
        }
        let mut b = OutputHasher::new();
        b.update(b"determinism");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.len(), 11);
    }

    #[test]
    fn order_and_content_matter() {
        let digest = |s: &[u8]| {
            let mut h = OutputHasher::new();
            h.update(s);
            h.digest()
        };
        assert_ne!(digest(b"ab"), digest(b"ba"));
        assert_ne!(digest(b"ab"), digest(b"abc"));
        assert_ne!(digest(b"a"), digest(b"a\0"));
        // Length is part of the digest: a stream of N zeros differs from
        // a stream of N+1 zeros even though each zero hashes alike.
        assert_ne!(digest(&[0; 4]), digest(&[0; 5]));
    }

    #[test]
    fn display_is_hex() {
        let mut h = OutputHasher::new();
        h.update(b"x");
        assert_eq!(format!("{h}").len(), 16);
    }
}
