//! The multi-run determinism-checking harness.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use adhash::FpRound;
use mhm::CacheStats;
use obs::{BufferSink, Event, EventSink, MemorySink, Registry, Telemetry, CONTROL_TRACK};
use tsim::{AllocLog, FaultPlan, Program, RunConfig, SimError, SwitchPolicy};

use crate::cache::{CacheLease, CachedRun, RunCache, RunKey};
use crate::ignore::IgnoreSpec;
use crate::policy::{retry_seed, FailurePolicy, RunFailure, RunOutcome};
use crate::report::CheckReport;
use crate::scheme::{CheckMonitor, CheckpointRecord, Scheme};
use crate::spec::CampaignSpec;

/// A configuration the checker refuses to run.
///
/// Raised by [`Checker::new`] so misconfiguration surfaces at
/// construction, as a typed error, instead of as a panic deep inside
/// `check()`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `runs == 0`: a campaign must compare at least one run.
    ZeroRuns,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroRuns => {
                write!(f, "campaign must have at least one run (runs == 0)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The hash sequence one run produced: one state hash per checkpoint,
/// plus the output-stream digest.
#[derive(Debug, Clone)]
pub struct RunHashes {
    /// Per-checkpoint records, in firing order.
    pub checkpoints: Vec<CheckpointRecord>,
    /// Digest of the program's output stream.
    pub output_digest: u64,
    /// Extra instructions the scheme would execute (cost model).
    pub extra_instr: u64,
    /// Stores observed during the run.
    pub stores: u64,
    /// Location-hash operations the scheme performed.
    pub hash_updates: u64,
    /// L1/MHM cache counters, when the cache model was enabled.
    pub cache: Option<CacheStats>,
}

impl RunHashes {
    /// `true` if this run's observable behavior (output digest plus the
    /// checkpoint sequence) differs from `other`'s.
    pub(crate) fn differs_from(&self, other: &RunHashes) -> bool {
        self.output_digest != other.output_digest
            || self.checkpoints.len() != other.checkpoints.len()
            || self
                .checkpoints
                .iter()
                .zip(&other.checkpoints)
                .any(|(x, y)| x.kind != y.kind || x.hash != y.hash)
    }

    /// The sequence number of the first checkpoint at which this run
    /// diverges from `other` (differing kind or hash, or one sequence
    /// ending before the other). `None` when the checkpoint sequences
    /// agree — the runs may still differ in their output digests.
    pub fn first_divergent_checkpoint(&self, other: &RunHashes) -> Option<u64> {
        let n = self.checkpoints.len().min(other.checkpoints.len());
        for i in 0..n {
            let (x, y) = (&self.checkpoints[i], &other.checkpoints[i]);
            if x.kind != y.kind || x.hash != y.hash {
                return Some(i as u64);
            }
        }
        if self.checkpoints.len() != other.checkpoints.len() {
            Some(n as u64)
        } else {
            None
        }
    }
}

/// Configuration of a determinism-checking campaign.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Which scheme computes the hashes.
    pub scheme: Scheme,
    /// How many runs to compare (the paper uses 30).
    pub runs: usize,
    /// Scheduler seed of the first run; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// FP round-off before hashing (`None` = bit-exact comparison).
    pub rounding: Option<FpRound>,
    /// Structures excluded from the hash.
    pub ignore: IgnoreSpec,
    /// Preemption policy for all runs.
    pub switch: SwitchPolicy,
    /// Library-call seed: fixed across the campaign's runs (the calls
    /// are *input*), but can be varied between campaigns for coverage.
    pub lib_seed: u64,
    /// Step limit per run.
    pub max_steps: u64,
    /// What to do when a run fails (default: abort the campaign).
    pub policy: FailurePolicy,
    /// Wall-clock watchdog per run (`None` = no deadline). A run that
    /// exceeds it fails with [`SimError::Deadline`](tsim::SimError).
    pub deadline: Option<Duration>,
    /// Fault-injection plans applied to specific run slots (every
    /// attempt of that slot, including retries, gets the plan). Used to
    /// exercise the failure policies deterministically.
    pub fault_plans: Vec<(usize, FaultPlan)>,
    /// Event-trace sink for the campaign. The checker wraps each run in
    /// a span on the control track and forwards the sink to the
    /// simulator for scheduler/checkpoint/fault events. `None` (the
    /// default) records nothing and costs nothing.
    pub sink: Option<Arc<dyn EventSink>>,
    /// Metrics registry the campaign accumulates counters into
    /// (`checker.*`, `mhm.l1.*`). `None` records nothing.
    pub registry: Option<Arc<Registry>>,
    /// Enables the per-thread L1 cache model in the monitor, so runs
    /// report demand and MHM old-value hit rates.
    pub cache_model: bool,
    /// Worker threads for the campaign's run slots (`None` = the
    /// machine's available parallelism). `1` executes the slots in
    /// order on the calling thread, exactly as the checker always has;
    /// higher values fan the slots out across a scoped worker pool and
    /// reduce the results back in slot order, so the report, metrics,
    /// and trace are byte-identical regardless of the worker count.
    pub jobs: Option<usize>,
    /// Optional run-result cache: completed runs are looked up in, and
    /// stored to, the cache keyed by everything that determines their
    /// hashes (see [`RunKey`]). Only consulted when
    /// [`workload`](CheckerConfig::workload) is also set — the key
    /// needs a workload identity the checker cannot derive from the
    /// program closure. A warm campaign replays cached outcomes through
    /// the same reduction path a cold one takes, so its report, trace,
    /// and metrics are byte-identical to the cold campaign's.
    pub cache: Option<Arc<dyn RunCache>>,
    /// Caller-declared workload identity for cache keys. The contract:
    /// equal strings must mean the `source` closure builds equal
    /// programs (same structure *and* parameters); the checker trusts
    /// the caller on this.
    pub workload: Option<String>,
    /// Wall-clock telemetry side-channel: per-worker busy/idle span
    /// attribution for the parallel executor. Strictly observational —
    /// it never alters slot dispatch, events, outcomes, or anything
    /// else on the deterministic artifact path. `None` records nothing.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl CheckerConfig {
    /// The canonical entry point: a config carrying everything a
    /// [`CampaignSpec`] pins. Runtime resources (sink, registry, cache)
    /// are not part of a spec — attach them afterwards with the usual
    /// builders; [`with_run_cache`](CheckerConfig::with_run_cache)
    /// conventionally reuses the spec's workload id.
    ///
    /// [`workload`](CheckerConfig::workload) is set from the spec when
    /// the spec names one (non-empty), so cache keys derive from the
    /// same identity the spec serializes.
    pub fn from_spec(spec: &CampaignSpec) -> Self {
        let mut cfg = CheckerConfig::new(spec.scheme);
        cfg.runs = spec.runs;
        cfg.base_seed = spec.base_seed;
        cfg.rounding = spec.rounding;
        cfg.ignore = spec.ignore.clone();
        cfg.switch = spec.switch;
        cfg.lib_seed = spec.lib_seed;
        cfg.max_steps = spec.max_steps;
        cfg.policy = spec.policy;
        cfg.deadline = spec.deadline();
        cfg.fault_plans = spec.fault_plans.clone();
        cfg.jobs = spec.jobs;
        cfg.cache_model = spec.cache_model;
        if !spec.workload.is_empty() {
            cfg.workload = Some(spec.workload.clone());
        }
        cfg
    }

    /// The inverse of [`from_spec`](CheckerConfig::from_spec): the spec
    /// this config instantiates. Runtime resources (sink, registry,
    /// cache) are dropped — they are attachments, not campaign
    /// identity. Returns `None` when the config has no
    /// [`workload`](CheckerConfig::workload) identity, or when its
    /// deadline does not survive millisecond precision — a spec must
    /// name both faithfully or not exist.
    pub fn to_spec(&self) -> Option<CampaignSpec> {
        let workload = self.workload.clone()?;
        let deadline_ms = match self.deadline {
            None => None,
            Some(d) => {
                let ms = u64::try_from(d.as_millis()).ok()?;
                if Duration::from_millis(ms) != d {
                    return None;
                }
                Some(ms)
            }
        };
        Some(CampaignSpec {
            workload,
            scheme: self.scheme,
            runs: self.runs,
            base_seed: self.base_seed,
            lib_seed: self.lib_seed,
            switch: self.switch,
            rounding: self.rounding,
            ignore: self.ignore.clone(),
            policy: self.policy,
            deadline_ms,
            max_steps: self.max_steps,
            jobs: self.jobs,
            cache_model: self.cache_model,
            fault_plans: self.fault_plans.clone(),
            corpus_dir: None,
            corpus_segment_bytes: None,
            corpus_max_bytes: None,
            corpus_cache_slots: None,
        })
    }

    /// A default campaign: 30 runs, sync-only switching, bit-exact
    /// hashing, nothing ignored, abort on the first failed run.
    pub fn new(scheme: Scheme) -> Self {
        CheckerConfig {
            scheme,
            runs: 30,
            base_seed: 1,
            rounding: None,
            ignore: IgnoreSpec::new(),
            switch: SwitchPolicy::SyncOnly,
            lib_seed: 0xfeed,
            max_steps: 20_000_000,
            policy: FailurePolicy::Abort,
            deadline: None,
            fault_plans: Vec::new(),
            sink: None,
            registry: None,
            cache_model: false,
            jobs: None,
            cache: None,
            workload: None,
            telemetry: None,
        }
    }

    /// Sets the number of runs.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the first run's scheduler seed.
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Enables FP round-off before hashing.
    #[must_use]
    pub fn with_rounding(mut self, rounding: FpRound) -> Self {
        self.rounding = Some(rounding);
        self
    }

    /// Sets the ignore spec.
    #[must_use]
    pub fn with_ignore(mut self, ignore: IgnoreSpec) -> Self {
        self.ignore = ignore;
        self
    }

    /// Sets the preemption policy.
    #[must_use]
    pub fn with_switch(mut self, switch: SwitchPolicy) -> Self {
        self.switch = switch;
        self
    }

    /// Sets the library-call input seed.
    #[must_use]
    pub fn with_lib_seed(mut self, seed: u64) -> Self {
        self.lib_seed = seed;
        self
    }

    /// Sets the failure policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-run wall-clock watchdog.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Injects a fault plan into one run slot of the campaign.
    #[must_use]
    pub fn with_fault_in_run(mut self, run_index: usize, plan: FaultPlan) -> Self {
        self.fault_plans.push((run_index, plan));
        self
    }

    /// Attaches an event-trace sink to the campaign.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a metrics registry to the campaign.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a wall-clock telemetry plane. Parallel campaign workers
    /// record per-slot busy spans (lane `chk.w<i>`, detail = slot
    /// index) and busy/idle histograms (`checker.slot.busy`,
    /// `checker.slot.idle`) into it; nothing recorded here reaches the
    /// deterministic report, trace, or metrics.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Enables the per-thread L1 cache model for all runs.
    #[must_use]
    pub fn with_cache_model(mut self) -> Self {
        self.cache_model = true;
        self
    }

    /// Sets the campaign's worker-thread count.
    ///
    /// `0` is accepted and clamped to `1` by
    /// [`effective_jobs`](CheckerConfig::effective_jobs) — documented
    /// behavior, so scripted sweeps (`--jobs $N` with `N=0`) degrade to
    /// the serial executor instead of erroring.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Attaches a run-result cache, with the workload identity used in
    /// its keys (see [`CheckerConfig::workload`] for the contract).
    #[must_use]
    pub fn with_run_cache(mut self, cache: Arc<dyn RunCache>, workload: impl Into<String>) -> Self {
        self.cache = Some(cache);
        self.workload = Some(workload.into());
        self
    }

    /// The worker count a campaign will actually use: the configured
    /// [`jobs`](CheckerConfig::jobs), defaulting to the machine's
    /// available parallelism, and clamped to never be less than one —
    /// `with_jobs(0)` runs the serial executor, it does not error.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        self.jobs
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }
}

/// One attempt's outcome plus the simulator counters the metrics
/// registry folds in per completed run (zero for failed attempts).
struct SlotAttempt {
    outcome: RunOutcome,
    steps: u64,
    native_instr: u64,
}

/// Everything one run slot produced, in attempt order.
struct SlotRun {
    attempts: Vec<SlotAttempt>,
    /// Allocator log of the completed attempt, if one completed.
    alloc_log: Option<Arc<AllocLog>>,
    /// Whether the completed attempt's hashes differ from the
    /// reference run the slot was compared against.
    diverged: bool,
    /// `true` if the slot gave up between retry attempts because a
    /// lower slot had already decided the campaign (parallel path
    /// only). An abandoned slot is never part of the reduced result.
    abandoned: bool,
}

impl SlotRun {
    /// Scheduler seed of the slot's completed attempt, if one completed
    /// — the provenance recorded in cache keys for runs that replay
    /// this slot's allocator log.
    fn completed_seed(&self) -> Option<u64> {
        self.attempts.iter().find_map(|a| match &a.outcome {
            RunOutcome::Completed { seed, .. } => Some(*seed),
            RunOutcome::Failed(_) => None,
        })
    }

    fn terminal_failure(&self) -> bool {
        matches!(
            self.attempts.last(),
            Some(SlotAttempt {
                outcome: RunOutcome::Failed(_),
                ..
            })
        )
    }
}

/// RAII resolution of an in-flight cache claim ([`RunCache::begin`]
/// returned `Compute { claimed: true }`): unless released after a
/// successful publish, dropping the guard abandons the claim. Because
/// the drop runs on *every* exit from the attempt — failure, retry
/// with a fresh key, early break, or panic unwind — a worker can never
/// leave other workers waiting on a claim nobody will resolve.
struct ClaimGuard<'a> {
    held: Option<(&'a dyn RunCache, &'a RunKey)>,
}

impl<'a> ClaimGuard<'a> {
    /// No claim to resolve.
    fn none() -> Self {
        ClaimGuard { held: None }
    }

    /// Guards a claim on `key` issued by `cache`.
    fn held(cache: &'a dyn RunCache, key: &'a RunKey) -> Self {
        ClaimGuard {
            held: Some((cache, key)),
        }
    }

    /// Disarms the guard after the claim was resolved by a `store`.
    fn release(&mut self) {
        self.held = None;
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if let Some((cache, key)) = self.held.take() {
            cache.abandon(key);
        }
    }
}

/// Cross-worker cancellation: a flag plus the lowest slot index whose
/// result decides the campaign (a divergence under `stop_early`, or a
/// failure the policy gives up on). Workers stop taking new slots once
/// the flag is set, and abandon mid-slot retries only for slots
/// *above* the decisive one — every slot at or below it always runs to
/// completion, which is what lets the slot-order reduction reproduce
/// the serial campaign exactly.
struct CancelCtl {
    cancelled: AtomicBool,
    decisive: AtomicUsize,
}

impl CancelCtl {
    fn new() -> Self {
        CancelCtl {
            cancelled: AtomicBool::new(false),
            decisive: AtomicUsize::new(usize::MAX),
        }
    }

    fn cancel_at(&self, slot: usize) {
        self.decisive.fetch_min(slot, Ordering::SeqCst);
        self.cancelled.store(true, Ordering::SeqCst);
    }

    fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Whether `slot` may stop retrying: only once it cannot be part
    /// of the result because a lower slot already decided the campaign.
    fn abandons(&self, slot: usize) -> bool {
        slot > self.decisive.load(Ordering::SeqCst)
    }
}

/// What absorbing one slot's results did to the campaign.
enum SlotVerdict {
    /// Keep going.
    Continue,
    /// A completed run diverged under `stop_early`.
    Stop,
    /// The failure policy gave up with this error.
    Fail(SimError),
}

/// The serial view of a campaign: outcomes in slot order plus the
/// accounting the failure policy and the metrics registry need. Both
/// executors funnel every slot through [`CampaignState::absorb`] — the
/// serial one as it runs them, the parallel one during the slot-order
/// reduction — so they produce identical reports by construction.
struct CampaignState<'a> {
    policy: FailurePolicy,
    registry: Option<&'a Registry>,
    stop_early: bool,
    outcomes: Vec<RunOutcome>,
    first_hashes: Option<RunHashes>,
    failed_slots: usize,
}

impl CampaignState<'_> {
    fn absorb(&mut self, slot_run: SlotRun) -> SlotVerdict {
        debug_assert!(!slot_run.abandoned, "abandoned slots are never absorbed");
        for attempt in slot_run.attempts {
            match attempt.outcome {
                RunOutcome::Failed(f) => {
                    if let Some(reg) = self.registry {
                        reg.add("checker.runs_failed", 1);
                    }
                    let error = f.error.clone();
                    let attempt_no = f.attempt;
                    self.outcomes.push(RunOutcome::Failed(f));
                    match self.policy {
                        FailurePolicy::Abort => return SlotVerdict::Fail(error),
                        FailurePolicy::Skip { max_failures } => {
                            self.failed_slots += 1;
                            if self.failed_slots > max_failures {
                                return SlotVerdict::Fail(error);
                            }
                        }
                        FailurePolicy::Retry { max_retries, .. } => {
                            if attempt_no >= max_retries {
                                return SlotVerdict::Fail(error);
                            }
                        }
                    }
                }
                RunOutcome::Completed {
                    seed,
                    run_index,
                    hashes,
                } => {
                    if let Some(reg) = self.registry {
                        reg.add("checker.runs_completed", 1);
                        reg.add("checker.steps", attempt.steps);
                        reg.add("checker.native_instr", attempt.native_instr);
                        reg.add("checker.hash_instr", hashes.extra_instr);
                        reg.add("checker.stores", hashes.stores);
                        reg.add("checker.hash_updates", hashes.hash_updates);
                        reg.add("checker.checkpoints", hashes.checkpoints.len() as u64);
                        reg.histogram("checker.run_steps").record(attempt.steps);
                        if let Some(c) = hashes.cache {
                            c.export(reg, "mhm.l1");
                        }
                    }
                    let differs = self
                        .first_hashes
                        .as_ref()
                        .is_some_and(|first| hashes.differs_from(first));
                    if differs {
                        if let Some(reg) = self.registry {
                            reg.add("checker.divergences", 1);
                        }
                    }
                    if self.first_hashes.is_none() {
                        self.first_hashes = Some(hashes.clone());
                    }
                    self.outcomes.push(RunOutcome::Completed {
                        seed,
                        run_index,
                        hashes,
                    });
                    if self.stop_early && differs {
                        return SlotVerdict::Stop;
                    }
                }
            }
        }
        SlotVerdict::Continue
    }
}

/// A fanned-out slot's result cell: the slot run plus the events it
/// buffered, filled in by whichever worker drew the slot.
type SlotCell = Mutex<Option<(SlotRun, Option<Arc<BufferSink>>)>>;

/// The determinism checker: runs a program many times under different
/// schedules (controlling the other nondeterminism sources) and compares
/// the per-checkpoint state hashes.
///
/// ```
/// use instantcheck::{Checker, CheckerConfig, Scheme};
/// use tsim::{ProgramBuilder, ValKind};
///
/// // Two threads add disjoint amounts under a lock: the sum commutes,
/// // so every schedule reaches the same final state.
/// let source = || {
///     let mut b = ProgramBuilder::new(2);
///     let g = b.global("sum", ValKind::U64, 1);
///     let lock = b.mutex();
///     for t in 0..2u64 {
///         b.thread(move |ctx| {
///             ctx.lock(lock);
///             let v = ctx.load(g.at(0));
///             ctx.store(g.at(0), v + t + 1);
///             ctx.unlock(lock);
///         });
///     }
///     b.build()
/// };
/// let cfg = CheckerConfig::new(Scheme::HwInc).with_runs(4);
/// let report = Checker::new(cfg).unwrap().check(source).unwrap();
/// assert!(report.is_deterministic());
/// assert_eq!(report.runs, 4);
/// ```
#[derive(Debug, Clone)]
pub struct Checker {
    config: CheckerConfig,
}

impl Checker {
    /// Creates a checker, validating the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroRuns`] when `config.runs == 0` — rejected
    /// here, with a typed error, instead of panicking deep in
    /// [`check`](Checker::check).
    pub fn new(config: CheckerConfig) -> Result<Self, ConfigError> {
        if config.runs == 0 {
            return Err(ConfigError::ZeroRuns);
        }
        Ok(Checker { config })
    }

    /// The canonical spec entry point: a checker configured exactly as
    /// the [`CampaignSpec`] describes
    /// (via [`CheckerConfig::from_spec`]).
    ///
    /// # Errors
    ///
    /// As for [`new`](Checker::new).
    pub fn from_spec(spec: &CampaignSpec) -> Result<Self, ConfigError> {
        Checker::new(CheckerConfig::from_spec(spec))
    }

    /// The configuration in use.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// The [`RunConfig`] for one attempt: the given scheduler seed, the
    /// campaign-wide nondeterminism controls, and the slot's fault plan
    /// if one is configured.
    fn run_config(
        &self,
        seed: u64,
        run_index: usize,
        alloc_log: Option<&Arc<AllocLog>>,
        sink: Option<&Arc<dyn EventSink>>,
    ) -> RunConfig {
        let cfg = &self.config;
        let mut rc = RunConfig::random(seed)
            .with_switch(cfg.switch)
            .with_lib_seed(cfg.lib_seed)
            .with_max_steps(cfg.max_steps);
        if cfg.scheme.is_checking() {
            rc = rc.with_zero_fill_charged();
        }
        // Allocator addresses are input: log them on the first
        // successful run, replay them afterwards (§5).
        if let Some(log) = alloc_log {
            rc = rc.with_alloc_replay(Arc::clone(log));
        }
        if let Some(deadline) = cfg.deadline {
            rc = rc.with_deadline(deadline);
        }
        if let Some((_, plan)) = cfg.fault_plans.iter().find(|(slot, _)| *slot == run_index) {
            rc = rc.with_faults(plan.clone());
        }
        if let Some(sink) = sink {
            rc = rc.with_sink(Arc::clone(sink));
        }
        rc
    }

    /// The cache key for one attempt, when a cache is configured (both
    /// [`CheckerConfig::cache`] and [`CheckerConfig::workload`] set).
    /// Derived from the config's [`CampaignSpec`] rendering
    /// ([`CheckerConfig::to_spec`] → [`CampaignSpec::run_key`]) so the
    /// checker and a serialized spec provably address the same corpus
    /// entries.
    fn run_key(&self, slot: usize, seed: u64, alloc_seed: Option<u64>) -> Option<RunKey> {
        self.config.cache.as_ref()?;
        let spec = self.config.to_spec()?;
        Some(spec.run_key(slot, seed, alloc_seed))
    }

    /// Shared tail of a completed attempt, live or cache-satisfied:
    /// emits the run-end event (and the divergence instant when the
    /// hashes differ from `reference`), marks the slot's earlier failed
    /// attempts as recovered transients, and records the attempt. Both
    /// paths funnel through here, which is what makes a warm campaign's
    /// control events and outcomes identical to a cold one's.
    #[allow(clippy::too_many_arguments)]
    fn complete_attempt(
        &self,
        slot: usize,
        seed: u64,
        hashes: RunHashes,
        steps: u64,
        native_instr: u64,
        zero_fill_instr: u64,
        reference: Option<&RunHashes>,
        sink: Option<&Arc<dyn EventSink>>,
        attempts: &mut Vec<SlotAttempt>,
        diverged: &mut bool,
    ) {
        if let Some(sink) = sink {
            let mut ev = Event::end(steps, CONTROL_TRACK, "run")
                .with_arg("ok", true)
                .with_arg("steps", steps)
                .with_arg("native_instr", native_instr)
                .with_arg("hash_instr", hashes.extra_instr)
                .with_arg("zero_fill_instr", zero_fill_instr)
                .with_arg("stores", hashes.stores)
                .with_arg("hash_updates", hashes.hash_updates)
                .with_arg("checkpoints", hashes.checkpoints.len());
            if let Some(c) = hashes.cache {
                ev = ev
                    .with_arg("l1_hits", c.hits)
                    .with_arg("l1_misses", c.misses)
                    .with_arg("mhm_reads", c.mhm_reads)
                    .with_arg("mhm_read_misses", c.mhm_read_misses);
            }
            sink.record(ev);
        }
        // Every earlier failed attempt of this slot was a transient the
        // slot recovered from. Bucketing the attempts per slot makes it
        // impossible for this fixup to touch another slot's failures.
        for a in attempts.iter_mut() {
            if let RunOutcome::Failed(f) = &mut a.outcome {
                f.recovered = true;
            }
        }
        if let Some(first) = reference {
            if hashes.differs_from(first) {
                *diverged = true;
                if let Some(sink) = sink {
                    let mut ev =
                        Event::instant(0, CONTROL_TRACK, "divergence").with_arg("run", slot);
                    match hashes.first_divergent_checkpoint(first) {
                        Some(cp) => ev = ev.with_arg("checkpoint", cp),
                        None => ev = ev.with_arg("output", true),
                    }
                    sink.record(ev);
                }
            }
        }
        attempts.push(SlotAttempt {
            outcome: RunOutcome::Completed {
                seed,
                run_index: slot,
                hashes,
            },
            steps,
            native_instr,
        });
    }

    /// Runs one campaign slot to its conclusion: the first attempt plus
    /// however many retries the [`FailurePolicy`] allows, recording
    /// every attempt. Control-track events (run spans, the divergence
    /// instant against `reference`) and simulator events go to `sink` —
    /// the campaign's own sink on the serial path, a per-slot
    /// [`BufferSink`] on the parallel one.
    fn run_slot<F: Fn() -> Program>(
        &self,
        source: &F,
        slot: usize,
        alloc: Option<(&Arc<AllocLog>, u64)>,
        reference: Option<&RunHashes>,
        sink: Option<&Arc<dyn EventSink>>,
        cancel: Option<&CancelCtl>,
    ) -> SlotRun {
        let cfg = &self.config;
        let (alloc_log, alloc_seed) = match alloc {
            Some((log, seed)) => (Some(log), Some(seed)),
            None => (None, None),
        };
        let mut attempts: Vec<SlotAttempt> = Vec::new();
        let mut slot_alloc_log: Option<Arc<AllocLog>> = None;
        let mut diverged = false;
        let mut abandoned = false;
        let mut attempt = 0usize;
        loop {
            let seed = match (attempt, cfg.policy) {
                (0, _) => cfg.base_seed + slot as u64,
                (a, FailurePolicy::Retry { reseed: true, .. }) => {
                    retry_seed(cfg.base_seed, slot, a)
                }
                _ => cfg.base_seed + slot as u64,
            };
            let key = self.run_key(slot, seed, alloc_seed);
            // Claim-aware lookup: a hit replays; a claimed miss makes
            // this attempt the key's single computer (concurrent
            // attempts on the same key wait for the publication instead
            // of re-simulating). The guard abandons the claim on every
            // non-publishing exit — failure, retry, or unwind — so
            // waiters can never deadlock on a vanished claimant.
            let mut claim = ClaimGuard::none();
            if let (Some(k), Some(cache)) = (&key, cfg.cache.as_deref()) {
                match cache.begin(k) {
                    // A tracing campaign can only use an entry that
                    // recorded its simulator events — replaying a
                    // traceless entry would drop part of the trace, so
                    // such an entry counts as a miss and the attempt
                    // recomputes (and re-stores, now with its trace).
                    CacheLease::Hit(hit) if sink.is_none() || hit.sim_trace.is_some() => {
                        if let Some(sink) = sink {
                            sink.record(
                                Event::begin(0, CONTROL_TRACK, "run")
                                    .with_arg("run", slot)
                                    .with_arg("seed", seed)
                                    .with_arg("attempt", attempt)
                                    .with_arg("scheme", cfg.scheme.name()),
                            );
                            for ev in hit.sim_trace.iter().flatten() {
                                sink.record(ev.clone());
                            }
                        }
                        slot_alloc_log = hit.alloc_log.clone();
                        self.complete_attempt(
                            slot,
                            seed,
                            hit.hashes.clone(),
                            hit.steps,
                            hit.native_instr,
                            hit.zero_fill_instr,
                            reference,
                            sink,
                            &mut attempts,
                            &mut diverged,
                        );
                        break;
                    }
                    CacheLease::Hit(_) => {}
                    CacheLease::Compute { claimed } => {
                        if claimed {
                            claim = ClaimGuard::held(cache, k);
                        }
                    }
                }
            }
            // Cold attempt. When both a cache and a sink are active,
            // the simulator's events are captured so the stored entry
            // can replay them later; they are forwarded to the real
            // sink after the run, which preserves the live ordering
            // (the run span brackets them either way).
            let capture = match (&key, sink) {
                (Some(_), Some(_)) => Some(Arc::new(MemorySink::new())),
                _ => None,
            };
            let sim_sink: Option<Arc<dyn EventSink>> = match &capture {
                Some(c) => Some(Arc::clone(c) as Arc<dyn EventSink>),
                None => sink.cloned(),
            };
            let rc = self.run_config(seed, slot, alloc_log, sim_sink.as_ref());
            let mut monitor = CheckMonitor::new(cfg.scheme, cfg.rounding, cfg.ignore.clone());
            if cfg.cache_model {
                monitor = monitor.with_cache_model();
            }
            if let Some(sink) = sink {
                sink.record(
                    Event::begin(0, CONTROL_TRACK, "run")
                        .with_arg("run", slot)
                        .with_arg("seed", seed)
                        .with_arg("attempt", attempt)
                        .with_arg("scheme", cfg.scheme.name()),
                );
            }
            match source().run_with(&rc, monitor) {
                Ok(out) => {
                    let steps = out.steps;
                    let native_instr = out.total_instructions();
                    let zero_fill_instr = out.zero_fill_instr;
                    slot_alloc_log = Some(out.alloc_log.clone());
                    let hashes = out.monitor.into_hashes();
                    let sim_trace = capture.map(|c| {
                        let events = c.events();
                        if let Some(sink) = sink {
                            for ev in &events {
                                sink.record(ev.clone());
                            }
                        }
                        events
                    });
                    if let (Some(k), Some(cache)) = (&key, cfg.cache.as_deref()) {
                        cache.store(
                            k,
                            &Arc::new(CachedRun {
                                hashes: hashes.clone(),
                                steps,
                                native_instr,
                                zero_fill_instr,
                                // Only the run that logged its own
                                // allocator addresses carries the log;
                                // replay runs are reproducible from the
                                // producer's entry.
                                alloc_log: if k.alloc_seed.is_none() {
                                    Some(out.alloc_log.clone())
                                } else {
                                    None
                                },
                                sim_trace,
                            }),
                        );
                        // The store published the claim; the guard's
                        // abandon would now be a no-op, but release it
                        // anyway so the invariant (exactly one of
                        // store/abandon resolves a claim) holds by
                        // construction, not by state-machine accident.
                        claim.release();
                    }
                    self.complete_attempt(
                        slot,
                        seed,
                        hashes,
                        steps,
                        native_instr,
                        zero_fill_instr,
                        reference,
                        sink,
                        &mut attempts,
                        &mut diverged,
                    );
                    break;
                }
                Err(error) => {
                    if let (Some(c), Some(sink)) = (&capture, sink) {
                        for ev in c.events() {
                            sink.record(ev);
                        }
                    }
                    if let Some(sink) = sink {
                        sink.record(
                            Event::end(0, CONTROL_TRACK, "run")
                                .with_arg("ok", false)
                                .with_arg("error", format!("{:?}", error.kind())),
                        );
                    }
                    attempts.push(SlotAttempt {
                        outcome: RunOutcome::Failed(RunFailure {
                            run_index: slot,
                            seed,
                            error,
                            attempt,
                            recovered: false,
                        }),
                        steps: 0,
                        native_instr: 0,
                    });
                    let give_up = match cfg.policy {
                        FailurePolicy::Abort | FailurePolicy::Skip { .. } => true,
                        FailurePolicy::Retry { max_retries, .. } => attempt >= max_retries,
                    };
                    if give_up {
                        break;
                    }
                    attempt += 1;
                    if let Some(ctl) = cancel {
                        if ctl.abandons(slot) {
                            abandoned = true;
                            break;
                        }
                    }
                }
            }
        }
        SlotRun {
            attempts,
            alloc_log: slot_alloc_log,
            diverged,
            abandoned,
        }
    }

    /// Worker-side check of whether `slot`'s result decides the
    /// campaign under the serial semantics — if so, higher slots are
    /// wasted work and the pool is cancelled. Purely a shutdown signal:
    /// the reduction re-derives the authoritative stop point in slot
    /// order.
    fn flag_decisive(
        &self,
        ctl: &CancelCtl,
        failed_slots: &AtomicUsize,
        slot: usize,
        slot_run: &SlotRun,
        stop_early: bool,
    ) {
        if slot_run.abandoned {
            return;
        }
        if slot_run.terminal_failure() {
            match self.config.policy {
                // Abort gives up on any failure; a terminal Retry
                // failure means the slot exhausted its attempts.
                FailurePolicy::Abort | FailurePolicy::Retry { .. } => ctl.cancel_at(slot),
                FailurePolicy::Skip { max_failures } => {
                    if failed_slots.fetch_add(1, Ordering::SeqCst) + 1 > max_failures {
                        ctl.cancel_at(slot);
                    }
                }
            }
        } else if stop_early && slot_run.diverged {
            ctl.cancel_at(slot);
        }
    }

    /// The campaign supervisor: executes the run slots, applying the
    /// configured [`FailurePolicy`] to failed attempts.
    ///
    /// With one worker ([`CheckerConfig::effective_jobs`]) the slots
    /// run in order on the calling thread. With more, a sequential
    /// prefix runs until the first completed run has pinned the
    /// allocator log and the reference hashes, the remaining slots fan
    /// out across a scoped worker pool, and the per-slot results are
    /// reduced back in slot order — outcomes, registry counters, trace
    /// events, and the early-stop/abort point are identical to the
    /// serial campaign's regardless of worker count.
    ///
    /// With `stop_early`, the campaign halts as soon as a completed
    /// run's hashes differ from the first completed run's.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the policy gives up: immediately
    /// under [`FailurePolicy::Abort`], after more than `max_failures`
    /// failed slots under [`FailurePolicy::Skip`], and after a slot
    /// exhausts `max_retries` under [`FailurePolicy::Retry`].
    fn run_campaign<F: Fn() -> Program + Sync>(
        &self,
        source: &F,
        stop_early: bool,
    ) -> Result<Vec<RunOutcome>, SimError> {
        let cfg = &self.config;
        let runs = cfg.runs;
        let jobs = cfg.effective_jobs();
        let sink = cfg.sink.as_ref().filter(|s| s.enabled());
        if let Some(sink) = sink {
            sink.record(
                Event::instant(0, CONTROL_TRACK, "campaign")
                    .with_arg("scheme", cfg.scheme.name())
                    .with_arg("runs", cfg.runs)
                    .with_arg("base_seed", cfg.base_seed),
            );
        }
        let mut state = CampaignState {
            policy: cfg.policy,
            registry: cfg.registry.as_deref(),
            stop_early,
            outcomes: Vec::with_capacity(runs),
            first_hashes: None,
            failed_slots: 0,
        };
        // The pinned allocator log plus its provenance: the scheduler
        // seed of the completed run that recorded it (part of the cache
        // key of every run that replays the log).
        let mut alloc: Option<(Arc<AllocLog>, u64)> = None;

        // Sequential prefix: every slot when there is one worker; with
        // more, just up to the first completed run, which pins the
        // allocator log and the reference hashes the fanned-out slots
        // compare against. Events stream straight to the sink here.
        let mut next_slot = 0usize;
        while next_slot < runs && (jobs == 1 || state.first_hashes.is_none()) {
            let slot_run = self.run_slot(
                source,
                next_slot,
                alloc.as_ref().map(|(log, seed)| (log, *seed)),
                state.first_hashes.as_ref(),
                sink,
                None,
            );
            if alloc.is_none() {
                if let (Some(log), Some(seed)) =
                    (slot_run.alloc_log.clone(), slot_run.completed_seed())
                {
                    alloc = Some((log, seed));
                }
            }
            next_slot += 1;
            match state.absorb(slot_run) {
                SlotVerdict::Continue => {}
                SlotVerdict::Stop => return Ok(state.outcomes),
                SlotVerdict::Fail(error) => return Err(error),
            }
        }
        if next_slot >= runs {
            return Ok(state.outcomes);
        }

        // Fan the remaining slots out across a scoped worker pool. The
        // pool hands slot indices out in increasing order and every
        // worker finishes the slot it holds (abandoning retries only
        // above the decisive slot), so by join time every slot up to
        // any decisive one has a result.
        let reference = state
            .first_hashes
            .clone()
            .expect("sequential prefix ends at a completed run");
        let (alloc_log, alloc_seed) = alloc
            .as_ref()
            .map(|(log, seed)| (log, *seed))
            .expect("a completed run recorded its alloc log");
        let next = AtomicUsize::new(next_slot);
        let failed = AtomicUsize::new(state.failed_slots);
        let ctl = CancelCtl::new();
        let results: Vec<SlotCell> = (0..runs).map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for w in 0..jobs.min(runs - next_slot) {
                let (next, ctl, failed, results, reference) =
                    (&next, &ctl, &failed, &results, &reference);
                // Wall-clock side-channel only: spans and busy/idle
                // histograms are recorded *after* each slot completes,
                // so dispatch order and slot results cannot depend on
                // whether telemetry is attached.
                let telemetry = cfg.telemetry.as_deref();
                scope.spawn(move || {
                    let mut idle_from = telemetry.map(|t| t.now_ns());
                    loop {
                        if ctl.cancelled() {
                            break;
                        }
                        let slot = next.fetch_add(1, Ordering::SeqCst);
                        if slot >= runs {
                            break;
                        }
                        let start = telemetry.map(|t| t.now_ns());
                        let buffer = sink.map(|_| Arc::new(BufferSink::new()));
                        let slot_sink = buffer.clone().map(|b| b as Arc<dyn EventSink>);
                        let slot_run = self.run_slot(
                            source,
                            slot,
                            Some((alloc_log, alloc_seed)),
                            Some(reference),
                            slot_sink.as_ref(),
                            Some(ctl),
                        );
                        self.flag_decisive(ctl, failed, slot, &slot_run, stop_early);
                        *results[slot].lock().unwrap() = Some((slot_run, buffer));
                        if let (Some(t), Some(start)) = (telemetry, start) {
                            let end = t.now_ns();
                            t.histogram("checker.slot.busy")
                                .record(end.saturating_sub(start));
                            if let Some(since) = idle_from {
                                t.histogram("checker.slot.idle")
                                    .record(start.saturating_sub(since));
                            }
                            t.lane_span(format!("chk.w{w}"), "slot", start, end, slot as u64);
                            idle_from = Some(end);
                        }
                    }
                });
            }
        });

        // Deterministic reduction: re-absorb the slot results in slot
        // order, replaying exactly the control flow the serial
        // campaign would have taken — each kept slot's buffered events
        // are flushed to the real sink as it is absorbed, and slots
        // past the serial stop point are discarded.
        for cell in results.iter().skip(next_slot) {
            let Some((slot_run, buffer)) = cell.lock().unwrap().take() else {
                break;
            };
            if slot_run.abandoned {
                break;
            }
            if let (Some(buffer), Some(sink)) = (&buffer, sink) {
                buffer.flush_into(&**sink);
            }
            match state.absorb(slot_run) {
                SlotVerdict::Continue => {}
                SlotVerdict::Stop => break,
                SlotVerdict::Fail(error) => return Err(error),
            }
        }
        Ok(state.outcomes)
    }

    /// Runs the campaign: `source` must build a fresh copy of the same
    /// program for each run (same input — the checker controls allocator
    /// addresses and library calls so that only the interleaving varies).
    ///
    /// Run slots execute on [`CheckerConfig::effective_jobs`] worker
    /// threads; the report is identical regardless of the worker count
    /// (see [`CheckerConfig::jobs`]).
    ///
    /// # Errors
    ///
    /// Under the default [`FailurePolicy::Abort`], returns the first
    /// [`SimError`] any run produces (deadlock, step limit, machine
    /// misuse, workload panic). Under [`FailurePolicy::Skip`] /
    /// [`FailurePolicy::Retry`], failed runs are recorded in the
    /// report's [`failures`](CheckReport::failures) section instead, and
    /// an error is returned only once the policy's budget is exhausted.
    pub fn check<F: Fn() -> Program + Sync>(&self, source: F) -> Result<CheckReport, SimError> {
        let outcomes = self.run_campaign(&source, false)?;
        Ok(Self::report(&outcomes))
    }

    /// Like [`check`], but stops as soon as a run's hashes differ from
    /// the first run's — the paper's point that "in real usage of
    /// InstantCheck, the programmer can stop as soon as nondeterminism
    /// is detected". Returns the report over the runs actually performed
    /// and how many that was.
    ///
    /// # Errors
    ///
    /// As for [`check`].
    ///
    /// [`check`]: Checker::check
    pub fn check_stopping_early<F: Fn() -> Program + Sync>(
        &self,
        source: F,
    ) -> Result<(CheckReport, usize), SimError> {
        let outcomes = self.run_campaign(&source, true)?;
        let n = outcomes.iter().filter(|o| o.hashes().is_some()).count();
        Ok((Self::report(&outcomes), n))
    }

    /// Like [`check`], but returns the raw per-run hash sequences of
    /// the completed runs (useful for custom analyses).
    ///
    /// # Errors
    ///
    /// As for [`check`].
    ///
    /// [`check`]: Checker::check
    pub fn collect_runs<F: Fn() -> Program + Sync>(
        &self,
        source: &F,
    ) -> Result<Vec<RunHashes>, SimError> {
        Ok(self
            .collect_outcomes(source)?
            .into_iter()
            .filter_map(|o| match o {
                RunOutcome::Completed { hashes, .. } => Some(hashes),
                RunOutcome::Failed(_) => None,
            })
            .collect())
    }

    /// Runs the campaign and returns every attempt's [`RunOutcome`] in
    /// execution order — completed hash sequences interleaved with the
    /// structured failures the policy absorbed.
    ///
    /// # Errors
    ///
    /// As for [`check`].
    ///
    /// [`check`]: Checker::check
    pub fn collect_outcomes<F: Fn() -> Program + Sync>(
        &self,
        source: &F,
    ) -> Result<Vec<RunOutcome>, SimError> {
        self.run_campaign(source, false)
    }

    fn report(outcomes: &[RunOutcome]) -> CheckReport {
        let hashes: Vec<RunHashes> = outcomes
            .iter()
            .filter_map(|o| o.hashes().cloned())
            .collect();
        let failures: Vec<RunFailure> = outcomes
            .iter()
            .filter_map(|o| o.failure().cloned())
            .collect();
        CheckReport::from_outcomes(&hashes, failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{FaultKind, ProgramBuilder, Trigger, ValKind};

    fn racy_unordered_sum() -> Program {
        // Deterministic: commutative sum under a lock.
        let mut b = ProgramBuilder::new(4);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..4u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + (t + 1) * 10);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    fn order_dependent() -> Program {
        // Nondeterministic: last writer wins.
        let mut b = ProgramBuilder::new(3);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..3u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                ctx.store(g.at(0), t + 1);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    #[test]
    fn commutative_sum_is_deterministic_under_all_schemes() {
        for scheme in [Scheme::HwInc, Scheme::SwInc, Scheme::SwTr] {
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(10))
                .expect("valid config")
                .check(racy_unordered_sum)
                .unwrap();
            assert!(report.is_deterministic(), "{scheme:?}");
            assert!(report.det_at_end);
            assert_eq!(report.ndet_points, 0);
        }
    }

    #[test]
    fn last_writer_wins_is_nondeterministic_under_all_schemes() {
        for scheme in [Scheme::HwInc, Scheme::SwInc, Scheme::SwTr] {
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(10))
                .expect("valid config")
                .check(order_dependent)
                .unwrap();
            assert!(!report.is_deterministic(), "{scheme:?}");
            assert!(!report.det_at_end);
            // Detected quickly, as in the paper (run 2 or 3).
            assert!(report.first_ndet_run.unwrap() <= 5, "{scheme:?}");
        }
    }

    #[test]
    fn schemes_agree_on_the_verdict_per_checkpoint() {
        let verdicts = |scheme| {
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(8))
                .expect("valid config")
                .check(order_dependent)
                .unwrap();
            (0..report.aligned_checkpoints)
                .map(|i| report.distributions[i].counts().to_vec())
                .collect::<Vec<_>>()
        };
        let hw = verdicts(Scheme::HwInc);
        let sw = verdicts(Scheme::SwInc);
        let tr = verdicts(Scheme::SwTr);
        assert_eq!(hw, sw);
        assert_eq!(hw, tr);
    }

    #[test]
    fn early_stop_halts_at_first_difference() {
        let checker =
            Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(30)).expect("valid config");
        let (report, used) = checker.check_stopping_early(order_dependent).unwrap();
        assert!(!report.is_deterministic());
        assert!(used < 30, "should stop well before 30 runs (used {used})");
        assert_eq!(report.first_ndet_run, Some(used));
    }

    #[test]
    fn early_stop_runs_everything_when_deterministic() {
        let checker =
            Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(6)).expect("valid config");
        let (report, used) = checker.check_stopping_early(racy_unordered_sum).unwrap();
        assert!(report.is_deterministic());
        assert_eq!(used, 6);
    }

    #[test]
    fn config_builder_chains() {
        let cfg = CheckerConfig::new(Scheme::SwTr)
            .with_runs(5)
            .with_base_seed(9)
            .with_lib_seed(3)
            .with_switch(SwitchPolicy::EveryAccess)
            .with_rounding(FpRound::default())
            .with_ignore(IgnoreSpec::new().ignore_global("x"))
            .with_policy(FailurePolicy::Skip { max_failures: 2 })
            .with_deadline(Duration::from_secs(5))
            .with_fault_in_run(1, FaultPlan::new(7))
            .with_jobs(3);
        assert_eq!(cfg.runs, 5);
        assert_eq!(cfg.base_seed, 9);
        assert_eq!(cfg.lib_seed, 3);
        assert!(cfg.rounding.is_some());
        assert!(!cfg.ignore.is_empty());
        assert_eq!(cfg.policy, FailurePolicy::Skip { max_failures: 2 });
        assert_eq!(cfg.deadline, Some(Duration::from_secs(5)));
        assert_eq!(cfg.fault_plans.len(), 1);
        assert_eq!(cfg.jobs, Some(3));
        assert_eq!(cfg.effective_jobs(), 3);
        let checker = Checker::new(cfg).expect("valid config");
        assert_eq!(checker.config().runs, 5);
    }

    #[test]
    fn zero_jobs_is_clamped_to_one() {
        let cfg = CheckerConfig::new(Scheme::HwInc).with_jobs(0);
        assert_eq!(cfg.effective_jobs(), 1);
        // And the campaign still runs (on the serial path).
        let report = Checker::new(cfg.with_runs(3))
            .expect("valid config")
            .check(racy_unordered_sum)
            .unwrap();
        assert!(report.is_deterministic());
    }

    #[test]
    fn zero_runs_is_rejected_at_construction() {
        let err = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(0))
            .expect_err("runs == 0 must not construct");
        assert_eq!(err, ConfigError::ZeroRuns);
        assert!(err.to_string().contains("at least one run"), "{err}");
    }

    #[test]
    fn config_round_trips_through_spec() {
        let mut cfg = CheckerConfig::new(Scheme::SwInc)
            .with_runs(5)
            .with_base_seed(9)
            .with_lib_seed(3)
            .with_switch(SwitchPolicy::EveryNth(4))
            .with_rounding(FpRound::default())
            .with_ignore(IgnoreSpec::new().ignore_global("x"))
            .with_policy(FailurePolicy::Skip { max_failures: 2 })
            .with_deadline(Duration::from_millis(1500))
            .with_fault_in_run(1, FaultPlan::new(7))
            .with_jobs(3)
            .with_cache_model();
        cfg.workload = Some("w:scaled".into());
        let spec = cfg.to_spec().expect("workload is set");
        let back = CheckerConfig::from_spec(&spec);
        let again = back.to_spec().expect("still has a workload");
        assert_eq!(spec, again, "spec ↔ config round-trip is stable");
        assert_eq!(back.runs, cfg.runs);
        assert_eq!(back.deadline, cfg.deadline);
        assert_eq!(back.fault_plans, cfg.fault_plans);

        // No workload identity → no spec (nothing to key a corpus by).
        assert!(CheckerConfig::new(Scheme::HwInc).to_spec().is_none());
        // Sub-millisecond deadlines don't survive the ms encoding.
        let mut odd = cfg;
        odd.deadline = Some(Duration::from_micros(1500));
        assert!(odd.to_spec().is_none());
    }

    #[test]
    fn checker_from_spec_checks_like_a_hand_built_config() {
        let spec = CampaignSpec::new("racy-sum", Scheme::HwInc).with_runs(4);
        let via_spec = Checker::from_spec(&spec)
            .expect("valid spec")
            .check(racy_unordered_sum)
            .unwrap();
        let by_hand = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(4))
            .expect("valid config")
            .check(racy_unordered_sum)
            .unwrap();
        assert_eq!(via_spec, by_hand);
        assert!(Checker::from_spec(&spec.with_runs(0)).is_err());
    }

    #[test]
    fn parallel_report_equals_serial_report() {
        for source in [racy_unordered_sum as fn() -> Program, order_dependent] {
            let report_at = |jobs: usize| {
                let cfg = CheckerConfig::new(Scheme::HwInc)
                    .with_runs(8)
                    .with_jobs(jobs);
                Checker::new(cfg)
                    .expect("valid config")
                    .check(source)
                    .unwrap()
            };
            let serial = report_at(1);
            assert_eq!(serial, report_at(4));
        }
    }

    #[test]
    fn parallel_early_stop_matches_serial() {
        let at = |jobs: usize| {
            let cfg = CheckerConfig::new(Scheme::HwInc)
                .with_runs(30)
                .with_jobs(jobs);
            Checker::new(cfg)
                .expect("valid config")
                .check_stopping_early(order_dependent)
                .unwrap()
        };
        let (serial_report, serial_used) = at(1);
        let (parallel_report, parallel_used) = at(6);
        assert_eq!(serial_used, parallel_used);
        assert_eq!(serial_report, parallel_report);
    }

    #[test]
    fn telemetry_side_channel_leaves_artifacts_untouched() {
        let at = |telemetry: Option<Arc<Telemetry>>| {
            let sink = Arc::new(obs::MemorySink::new());
            let reg = Arc::new(Registry::new());
            let mut cfg = CheckerConfig::new(Scheme::HwInc)
                .with_runs(8)
                .with_jobs(4)
                .with_sink(sink.clone())
                .with_registry(reg.clone());
            if let Some(t) = telemetry {
                cfg = cfg.with_telemetry(t);
            }
            let report = Checker::new(cfg)
                .expect("valid config")
                .check(racy_unordered_sum)
                .unwrap();
            (report, sink.to_jsonl(), reg.snapshot())
        };
        let telemetry = Arc::new(Telemetry::new());
        let instrumented = at(Some(telemetry.clone()));
        let bare = at(None);
        assert_eq!(instrumented.0, bare.0, "report unchanged by telemetry");
        assert_eq!(instrumented.1, bare.1, "trace bytes unchanged by telemetry");
        assert_eq!(instrumented.2, bare.2, "metrics unchanged by telemetry");

        let snap = telemetry.snapshot();
        assert!(
            snap.histograms["checker.slot.busy"].count >= 1,
            "fanned-out slots recorded busy time"
        );
        assert!(
            snap.lanes.iter().any(|s| s.lane.starts_with("chk.w")),
            "worker lanes attributed their slots"
        );
        assert!(snap.lanes.iter().all(|s| s.end_ns >= s.start_ns));
    }

    #[test]
    fn parallel_abort_matches_serial_error() {
        let plan = FaultPlan::new(3).with(FaultKind::AllocFail, Trigger::Nth(0));
        let at = |jobs: usize| {
            let cfg = CheckerConfig::new(Scheme::HwInc)
                .with_runs(6)
                .with_jobs(jobs)
                .with_fault_in_run(2, plan.clone());
            Checker::new(cfg)
                .expect("valid config")
                .check(alloc_heavy)
                .unwrap_err()
        };
        assert_eq!(at(1).kind(), at(4).kind());
    }

    #[test]
    fn campaign_trace_and_metrics() {
        let sink = Arc::new(obs::MemorySink::new());
        let reg = Arc::new(Registry::new());
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(3)
            .with_sink(sink.clone())
            .with_registry(reg.clone())
            .with_cache_model();
        let report = Checker::new(cfg)
            .expect("valid config")
            .check(racy_unordered_sum)
            .unwrap();
        let cache = report.cache.expect("cache model was on");
        assert_eq!(cache.mhm_read_misses, 0, "write-allocate claim (§3.1)");
        assert!(cache.hits + cache.misses > 0);

        let events = sink.events();
        assert_eq!(events.iter().filter(|e| e.name == "campaign").count(), 1);
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.name == "run" && e.phase == obs::Phase::Begin)
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.name == "run" && e.phase == obs::Phase::End)
            .collect();
        assert_eq!(begins.len(), 3);
        assert_eq!(ends.len(), 3);
        assert!(ends.iter().all(|e| e.arg_u64("ok") == Some(1)));
        assert!(ends[0].arg_u64("l1_hits").is_some());
        assert!(ends[0].arg_u64("steps").is_some());
        // The simulator's own events interleave with the run spans.
        assert!(events.iter().any(|e| e.name == "sched"));
        assert!(events.iter().any(|e| e.name == "checkpoint"));

        let snap = reg.snapshot();
        assert_eq!(snap.counters["checker.runs_completed"], 3);
        assert_eq!(snap.counters["mhm.l1.mhm_read_misses"], 0);
        assert!(snap.counters["checker.stores"] > 0);
        assert!(snap.counters["checker.hash_updates"] > 0);
    }

    #[test]
    fn divergence_event_records_first_divergent_checkpoint() {
        let sink = Arc::new(obs::MemorySink::new());
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(10)
            .with_sink(sink.clone());
        let report = Checker::new(cfg)
            .expect("valid config")
            .check(order_dependent)
            .unwrap();
        assert!(!report.is_deterministic());
        let divs: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.name == "divergence")
            .collect();
        assert!(!divs.is_empty());
        // `order_dependent` has exactly one checkpoint (End), so the
        // first divergent checkpoint is always seq 0.
        assert_eq!(divs[0].arg_u64("checkpoint"), Some(0));
    }

    #[test]
    fn first_divergent_checkpoint_helper() {
        let rec = |h: u64| CheckpointRecord {
            kind: tsim::CheckpointKind::End,
            hash: adhash::HashSum::from_raw(h),
        };
        let mk = |hs: &[u64]| RunHashes {
            checkpoints: hs.iter().map(|&h| rec(h)).collect(),
            output_digest: 0,
            extra_instr: 0,
            stores: 0,
            hash_updates: 0,
            cache: None,
        };
        let a = mk(&[1, 2, 3]);
        assert_eq!(a.first_divergent_checkpoint(&mk(&[1, 9, 3])), Some(1));
        assert_eq!(a.first_divergent_checkpoint(&mk(&[1, 2])), Some(2));
        assert_eq!(a.first_divergent_checkpoint(&mk(&[1, 2, 3])), None);
        let mut out = mk(&[1, 2, 3]);
        out.output_digest = 7;
        assert!(a.differs_from(&out));
        assert_eq!(a.first_divergent_checkpoint(&out), None);
    }

    #[test]
    fn abort_policy_keeps_the_historical_semantics() {
        let plan = FaultPlan::new(3).with(FaultKind::AllocFail, Trigger::Nth(0));
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(6)
            .with_fault_in_run(2, plan);
        let err = Checker::new(cfg)
            .expect("valid config")
            .check(alloc_heavy)
            .unwrap_err();
        assert_eq!(err.kind(), tsim::SimErrorKind::AllocFailed);
    }

    fn alloc_heavy() -> Program {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..2u64 {
            b.thread(move |ctx| {
                let p = ctx.malloc("scratch", tsim::TypeTag::u64s(), 2);
                ctx.store(p, t);
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + t + 1);
                ctx.unlock(lock);
                ctx.free(p);
            });
        }
        b.build()
    }

    #[test]
    fn skip_policy_completes_with_the_failure_recorded() {
        let plan = FaultPlan::new(3).with(FaultKind::AllocFail, Trigger::Nth(0));
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(6)
            .with_policy(FailurePolicy::Skip { max_failures: 3 })
            .with_fault_in_run(2, plan);
        let report = Checker::new(cfg)
            .expect("valid config")
            .check(alloc_heavy)
            .unwrap();
        assert_eq!(report.runs, 5, "five of six runs completed");
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert_eq!(f.run_index, 2);
        assert_eq!(f.error.kind(), tsim::SimErrorKind::AllocFailed);
        assert!(!f.recovered);
        assert!(
            report.is_deterministic(),
            "alloc failure is not a det signal"
        );
    }

    #[test]
    fn skip_policy_aborts_past_its_failure_budget() {
        let plan = |s| FaultPlan::new(s).with(FaultKind::AllocFail, Trigger::Nth(0));
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(6)
            .with_policy(FailurePolicy::Skip { max_failures: 1 })
            .with_fault_in_run(1, plan(1))
            .with_fault_in_run(3, plan(2));
        let err = Checker::new(cfg)
            .expect("valid config")
            .check(alloc_heavy)
            .unwrap_err();
        assert_eq!(err.kind(), tsim::SimErrorKind::AllocFailed);
    }

    #[test]
    fn warm_cache_reproduces_cold_campaign_exactly() {
        use crate::cache::MemoryRunCache;
        for jobs in [1usize, 8] {
            let cache = Arc::new(MemoryRunCache::new());
            let campaign = || {
                let sink = Arc::new(obs::MemorySink::new());
                let reg = Arc::new(Registry::new());
                let cfg = CheckerConfig::new(Scheme::HwInc)
                    .with_runs(6)
                    .with_jobs(jobs)
                    .with_sink(sink.clone())
                    .with_registry(reg.clone())
                    .with_cache_model()
                    .with_run_cache(cache.clone(), "racy_unordered_sum");
                let report = Checker::new(cfg)
                    .expect("valid config")
                    .check(racy_unordered_sum)
                    .unwrap();
                (report, sink.to_jsonl(), reg.snapshot())
            };
            let cold = campaign();
            assert_eq!(cache.hits(), 0, "jobs={jobs}: first campaign is cold");
            assert_eq!(cache.len(), 6);
            let warm = campaign();
            assert_eq!(cold.0, warm.0, "jobs={jobs}: report");
            assert_eq!(cold.1, warm.1, "jobs={jobs}: trace bytes");
            assert_eq!(cold.2, warm.2, "jobs={jobs}: metrics snapshot");
            assert_eq!(cache.hits(), 6, "jobs={jobs}: every slot hit");
        }
    }

    #[test]
    fn cache_keys_are_worker_count_invariant() {
        use crate::cache::MemoryRunCache;
        let cache = Arc::new(MemoryRunCache::new());
        let at = |jobs: usize| {
            let cfg = CheckerConfig::new(Scheme::SwInc)
                .with_runs(8)
                .with_jobs(jobs)
                .with_run_cache(cache.clone(), "order_dependent");
            Checker::new(cfg)
                .expect("valid config")
                .check(order_dependent)
                .unwrap()
        };
        let cold = at(1);
        let stored = cache.len();
        let warm = at(8);
        assert_eq!(cold, warm);
        assert_eq!(cache.hits(), 8, "serial entries satisfy a parallel rerun");
        assert_eq!(cache.len(), stored, "no re-store on a pure-hit rerun");
    }

    #[test]
    fn traceless_cache_entry_is_recomputed_by_a_tracing_campaign() {
        use crate::cache::MemoryRunCache;
        let cache = Arc::new(MemoryRunCache::new());
        let base = || {
            CheckerConfig::new(Scheme::HwInc)
                .with_runs(3)
                .with_jobs(1)
                .with_run_cache(cache.clone(), "racy_unordered_sum")
        };
        // Populate without a sink: entries have no stored trace.
        let untraced = Checker::new(base())
            .expect("valid config")
            .check(racy_unordered_sum)
            .unwrap();
        // A tracing campaign must not replay those entries.
        let sink = Arc::new(obs::MemorySink::new());
        let traced = Checker::new(base().with_sink(sink.clone()))
            .expect("valid config")
            .check(racy_unordered_sum)
            .unwrap();
        assert_eq!(untraced, traced);
        let events = sink.events();
        assert!(
            events.iter().any(|e| e.name == "sched"),
            "trace has live simulator events"
        );
        // The recompute re-stored the entries with traces; a second
        // tracing campaign replays them byte-identically.
        let reference = sink.to_jsonl();
        let sink2 = Arc::new(obs::MemorySink::new());
        let replayed = Checker::new(base().with_sink(sink2.clone()))
            .expect("valid config")
            .check(racy_unordered_sum)
            .unwrap();
        assert_eq!(traced, replayed);
        assert_eq!(reference, sink2.to_jsonl());
    }

    #[test]
    fn cache_preserves_failure_policy_behavior() {
        use crate::cache::MemoryRunCache;
        // A slot that deterministically fails must fail again on a warm
        // rerun: failures are never cached.
        let cache = Arc::new(MemoryRunCache::new());
        let plan = FaultPlan::new(3).with(FaultKind::AllocFail, Trigger::Nth(0));
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(6)
            .with_jobs(1)
            .with_policy(FailurePolicy::Skip { max_failures: 3 })
            .with_fault_in_run(2, plan)
            .with_run_cache(cache.clone(), "alloc_heavy");
        let cold = Checker::new(cfg.clone())
            .expect("valid config")
            .check(alloc_heavy)
            .unwrap();
        assert_eq!(cache.len(), 5, "only completed runs are stored");
        let warm = Checker::new(cfg)
            .expect("valid config")
            .check(alloc_heavy)
            .unwrap();
        assert_eq!(cold, warm);
        assert_eq!(warm.failures.len(), 1, "the failure recomputed");
        assert_eq!(cache.hits(), 5);
    }

    #[test]
    fn cache_key_distinguishes_scheme_and_seed() {
        use crate::cache::MemoryRunCache;
        let cache = Arc::new(MemoryRunCache::new());
        let run = |scheme, base_seed| {
            let cfg = CheckerConfig::new(scheme)
                .with_runs(2)
                .with_jobs(1)
                .with_base_seed(base_seed)
                .with_run_cache(cache.clone(), "racy_unordered_sum");
            Checker::new(cfg)
                .expect("valid config")
                .check(racy_unordered_sum)
                .unwrap()
        };
        run(Scheme::HwInc, 1);
        let after_first = cache.len();
        run(Scheme::SwTr, 1);
        assert!(cache.len() > after_first, "different scheme, new entries");
        let after_second = cache.len();
        run(Scheme::HwInc, 100);
        assert!(cache.len() > after_second, "different seeds, new entries");
    }

    #[test]
    fn retry_without_reseed_replays_the_same_seed_and_gives_up() {
        // The fault plan is a pure function of the attempt's run config,
        // so retrying the same seed deterministically fails again.
        let plan = FaultPlan::new(3).with(FaultKind::AllocFail, Trigger::Nth(0));
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(4)
            .with_policy(FailurePolicy::Retry {
                max_retries: 2,
                reseed: false,
            })
            .with_fault_in_run(1, plan);
        let checker = Checker::new(cfg.clone()).expect("valid config");
        let err = checker.check(alloc_heavy).unwrap_err();
        assert_eq!(err.kind(), tsim::SimErrorKind::AllocFailed);
        let outcomes = checker.collect_outcomes(&alloc_heavy);
        assert!(
            outcomes.is_err(),
            "outcome collection honors the policy too"
        );
    }
}
