//! The multi-run determinism-checking harness.

use adhash::FpRound;
use tsim::{Program, RunConfig, SchedulerKind, SimError, SwitchPolicy};

use crate::ignore::IgnoreSpec;
use crate::report::CheckReport;
use crate::scheme::{CheckMonitor, CheckpointRecord, Scheme};

/// The hash sequence one run produced: one state hash per checkpoint,
/// plus the output-stream digest.
#[derive(Debug, Clone)]
pub struct RunHashes {
    /// Per-checkpoint records, in firing order.
    pub checkpoints: Vec<CheckpointRecord>,
    /// Digest of the program's output stream.
    pub output_digest: u64,
    /// Extra instructions the scheme would execute (cost model).
    pub extra_instr: u64,
    /// Stores observed during the run.
    pub stores: u64,
}

/// Configuration of a determinism-checking campaign.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Which scheme computes the hashes.
    pub scheme: Scheme,
    /// How many runs to compare (the paper uses 30).
    pub runs: usize,
    /// Scheduler seed of the first run; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// FP round-off before hashing (`None` = bit-exact comparison).
    pub rounding: Option<FpRound>,
    /// Structures excluded from the hash.
    pub ignore: IgnoreSpec,
    /// Preemption policy for all runs.
    pub switch: SwitchPolicy,
    /// Library-call seed: fixed across the campaign's runs (the calls
    /// are *input*), but can be varied between campaigns for coverage.
    pub lib_seed: u64,
    /// Step limit per run.
    pub max_steps: u64,
}

impl CheckerConfig {
    /// A default campaign: 30 runs, sync-only switching, bit-exact
    /// hashing, nothing ignored.
    pub fn new(scheme: Scheme) -> Self {
        CheckerConfig {
            scheme,
            runs: 30,
            base_seed: 1,
            rounding: None,
            ignore: IgnoreSpec::new(),
            switch: SwitchPolicy::SyncOnly,
            lib_seed: 0xfeed,
            max_steps: 20_000_000,
        }
    }

    /// Sets the number of runs.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the first run's scheduler seed.
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Enables FP round-off before hashing.
    #[must_use]
    pub fn with_rounding(mut self, rounding: FpRound) -> Self {
        self.rounding = Some(rounding);
        self
    }

    /// Sets the ignore spec.
    #[must_use]
    pub fn with_ignore(mut self, ignore: IgnoreSpec) -> Self {
        self.ignore = ignore;
        self
    }

    /// Sets the preemption policy.
    #[must_use]
    pub fn with_switch(mut self, switch: SwitchPolicy) -> Self {
        self.switch = switch;
        self
    }

    /// Sets the library-call input seed.
    #[must_use]
    pub fn with_lib_seed(mut self, seed: u64) -> Self {
        self.lib_seed = seed;
        self
    }
}

/// The determinism checker: runs a program many times under different
/// schedules (controlling the other nondeterminism sources) and compares
/// the per-checkpoint state hashes.
#[derive(Debug, Clone)]
pub struct Checker {
    config: CheckerConfig,
}

impl Checker {
    /// Creates a checker.
    pub fn new(config: CheckerConfig) -> Self {
        Checker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Runs the campaign: `source` must build a fresh copy of the same
    /// program for each run (same input — the checker controls allocator
    /// addresses and library calls so that only the interleaving varies).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] any run produces (deadlock, step
    /// limit, machine misuse, workload panic).
    pub fn check<F: Fn() -> Program>(&self, source: F) -> Result<CheckReport, SimError> {
        let hashes = self.collect_runs(&source)?;
        Ok(CheckReport::from_runs(&hashes))
    }

    /// Like [`check`], but stops as soon as a run's hashes differ from
    /// the first run's — the paper's point that "in real usage of
    /// InstantCheck, the programmer can stop as soon as nondeterminism
    /// is detected". Returns the report over the runs actually performed
    /// and how many that was.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] any run produces.
    pub fn check_stopping_early<F: Fn() -> Program>(
        &self,
        source: F,
    ) -> Result<(CheckReport, usize), SimError> {
        let cfg = &self.config;
        let mut runs: Vec<RunHashes> = Vec::new();
        let mut alloc_log = None;
        for i in 0..cfg.runs {
            let mut rc = RunConfig::random(cfg.base_seed + i as u64)
                .with_switch(cfg.switch)
                .with_lib_seed(cfg.lib_seed)
                .with_max_steps(cfg.max_steps);
            if cfg.scheme.is_checking() {
                rc = rc.with_zero_fill_charged();
            }
            if let Some(log) = &alloc_log {
                rc = rc.with_alloc_replay(std::sync::Arc::clone(log));
            }
            let monitor =
                CheckMonitor::new(cfg.scheme, cfg.rounding, cfg.ignore.clone());
            let out = source().run_with(&rc, monitor)?;
            if alloc_log.is_none() {
                alloc_log = Some(out.alloc_log.clone());
            }
            runs.push(out.monitor.into_hashes());
            let differs = {
                let (a, b) = (&runs[runs.len() - 1], &runs[0]);
                a.output_digest != b.output_digest
                    || a.checkpoints.len() != b.checkpoints.len()
                    || a.checkpoints
                        .iter()
                        .zip(&b.checkpoints)
                        .any(|(x, y)| x.kind != y.kind || x.hash != y.hash)
            };
            if differs {
                break;
            }
        }
        let n = runs.len();
        Ok((CheckReport::from_runs(&runs), n))
    }

    /// Like [`check`], but returns the raw per-run hash sequences
    /// (useful for custom analyses).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] any run produces.
    ///
    /// [`check`]: Checker::check
    pub fn collect_runs<F: Fn() -> Program>(
        &self,
        source: &F,
    ) -> Result<Vec<RunHashes>, SimError> {
        let cfg = &self.config;
        let mut runs = Vec::with_capacity(cfg.runs);
        let mut alloc_log = None;
        for i in 0..cfg.runs {
            let mut rc = RunConfig::random(cfg.base_seed + i as u64)
                .with_switch(cfg.switch)
                .with_lib_seed(cfg.lib_seed)
                .with_max_steps(cfg.max_steps);
            rc.scheduler = SchedulerKind::Random { seed: cfg.base_seed + i as u64 };
            if cfg.scheme.is_checking() {
                rc = rc.with_zero_fill_charged();
            }
            // Allocator addresses are input: log them on the first run,
            // replay them afterwards (§5).
            if let Some(log) = &alloc_log {
                rc = rc.with_alloc_replay(std::sync::Arc::clone(log));
            }
            let monitor =
                CheckMonitor::new(cfg.scheme, cfg.rounding, cfg.ignore.clone());
            let out = source().run_with(&rc, monitor)?;
            if alloc_log.is_none() {
                alloc_log = Some(out.alloc_log.clone());
            }
            runs.push(out.monitor.into_hashes());
        }
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, ValKind};

    fn racy_unordered_sum() -> Program {
        // Deterministic: commutative sum under a lock.
        let mut b = ProgramBuilder::new(4);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..4u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + (t + 1) * 10);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    fn order_dependent() -> Program {
        // Nondeterministic: last writer wins.
        let mut b = ProgramBuilder::new(3);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..3u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                ctx.store(g.at(0), t + 1);
                ctx.unlock(lock);
            });
        }
        b.build()
    }

    #[test]
    fn commutative_sum_is_deterministic_under_all_schemes() {
        for scheme in [Scheme::HwInc, Scheme::SwInc, Scheme::SwTr] {
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(10))
                .check(racy_unordered_sum)
                .unwrap();
            assert!(report.is_deterministic(), "{scheme:?}");
            assert!(report.det_at_end);
            assert_eq!(report.ndet_points, 0);
        }
    }

    #[test]
    fn last_writer_wins_is_nondeterministic_under_all_schemes() {
        for scheme in [Scheme::HwInc, Scheme::SwInc, Scheme::SwTr] {
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(10))
                .check(order_dependent)
                .unwrap();
            assert!(!report.is_deterministic(), "{scheme:?}");
            assert!(!report.det_at_end);
            // Detected quickly, as in the paper (run 2 or 3).
            assert!(report.first_ndet_run.unwrap() <= 5, "{scheme:?}");
        }
    }

    #[test]
    fn schemes_agree_on_the_verdict_per_checkpoint() {
        let verdicts = |scheme| {
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(8))
                .check(order_dependent)
                .unwrap();
            (0..report.aligned_checkpoints)
                .map(|i| report.distributions[i].counts().to_vec())
                .collect::<Vec<_>>()
        };
        let hw = verdicts(Scheme::HwInc);
        let sw = verdicts(Scheme::SwInc);
        let tr = verdicts(Scheme::SwTr);
        assert_eq!(hw, sw);
        assert_eq!(hw, tr);
    }

    #[test]
    fn early_stop_halts_at_first_difference() {
        let checker = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(30));
        let (report, used) = checker.check_stopping_early(order_dependent).unwrap();
        assert!(!report.is_deterministic());
        assert!(used < 30, "should stop well before 30 runs (used {used})");
        assert_eq!(report.first_ndet_run, Some(used));
    }

    #[test]
    fn early_stop_runs_everything_when_deterministic() {
        let checker = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(6));
        let (report, used) = checker.check_stopping_early(racy_unordered_sum).unwrap();
        assert!(report.is_deterministic());
        assert_eq!(used, 6);
    }

    #[test]
    fn config_builder_chains() {
        let cfg = CheckerConfig::new(Scheme::SwTr)
            .with_runs(5)
            .with_base_seed(9)
            .with_lib_seed(3)
            .with_switch(SwitchPolicy::EveryAccess)
            .with_rounding(FpRound::default())
            .with_ignore(IgnoreSpec::new().ignore_global("x"));
        assert_eq!(cfg.runs, 5);
        assert_eq!(cfg.base_seed, 9);
        assert_eq!(cfg.lib_seed, 3);
        assert!(cfg.rounding.is_some());
        assert!(!cfg.ignore.is_empty());
        let checker = Checker::new(cfg);
        assert_eq!(checker.config().runs, 5);
    }
}
