//! The Figure 6 instruction-count cost model.
//!
//! Four configurations of the same run are compared: *Native* (no
//! checking), *HW-InstantCheck_Inc*, *SW-InstantCheck_Inc-Ideal*, and
//! *SW-InstantCheck_Tr-Ideal*. As in the paper, software hashing costs 5
//! instructions per byte and the software schemes' other overheads are
//! ignored (that is what makes them *ideal* lower bounds); the HW
//! scheme's overhead is the zero-filling of allocations (plus the rare
//! checkpoint-time software loops). Monitors are passive, so all four
//! configurations execute the identical interleaving for a given seed.

use adhash::FpRound;
use tsim::{Program, RunConfig, SimError};

use crate::ignore::IgnoreSpec;
use crate::scheme::{CheckMonitor, Scheme};

/// Instruction counts for the four Figure 6 configurations of one
/// program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Native instructions (no checking).
    pub native: u64,
    /// Native + zero-fill + checkpoint-time software loops.
    pub hw_inc: u64,
    /// Native + zero-fill + per-store software hashing.
    pub sw_inc_ideal: u64,
    /// Native + zero-fill + per-checkpoint state traversal hashing.
    pub sw_tr_ideal: u64,
}

impl OverheadReport {
    /// `HW-InstantCheck_Inc` instructions normalized to Native.
    pub fn hw_ratio(&self) -> f64 {
        self.hw_inc as f64 / self.native as f64
    }

    /// `SW-InstantCheck_Inc-Ideal` normalized to Native.
    pub fn sw_inc_ratio(&self) -> f64 {
        self.sw_inc_ideal as f64 / self.native as f64
    }

    /// `SW-InstantCheck_Tr-Ideal` normalized to Native.
    pub fn sw_tr_ratio(&self) -> f64 {
        self.sw_tr_ideal as f64 / self.native as f64
    }
}

/// Measures the four configurations on one program.
///
/// `rounding` and `ignore` configure the checking schemes exactly as a
/// real campaign would run them (the sphinx3 "delete 4% of the state"
/// experiment is this function with a non-empty `ignore`).
///
/// # Errors
///
/// Propagates any [`SimError`] from the runs.
pub fn measure_overhead<F: Fn() -> Program>(
    source: F,
    seed: u64,
    rounding: Option<FpRound>,
    ignore: &IgnoreSpec,
) -> Result<OverheadReport, SimError> {
    let run = |scheme: Scheme| -> Result<(u64, u64, u64), SimError> {
        let mut rc = RunConfig::random(seed);
        if scheme.is_checking() {
            rc = rc.with_zero_fill_charged();
        }
        let monitor = CheckMonitor::new(scheme, rounding, ignore.clone());
        let out = source().run_with(&rc, monitor)?;
        Ok((
            out.total_instructions(),
            out.zero_fill_instr,
            out.monitor.into_hashes().extra_instr,
        ))
    };

    let (native, _, _) = run(Scheme::Native)?;
    let (n_hw, zf_hw, extra_hw) = run(Scheme::HwInc)?;
    let (n_si, zf_si, extra_si) = run(Scheme::SwInc)?;
    let (n_tr, zf_tr, extra_tr) = run(Scheme::SwTr)?;
    debug_assert_eq!(native, n_hw, "monitors must not perturb execution");
    debug_assert_eq!(native, n_si);
    debug_assert_eq!(native, n_tr);

    Ok(OverheadReport {
        native,
        hw_inc: n_hw + zf_hw + extra_hw,
        sw_inc_ideal: n_si + zf_si + extra_si,
        sw_tr_ideal: n_tr + zf_tr + extra_tr,
    })
}

/// Geometric mean of a ratio over many reports (the GEOM bar).
pub fn geometric_mean<I: IntoIterator<Item = f64>>(ratios: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for r in ratios {
        log_sum += r.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::{ProgramBuilder, TypeTag, ValKind};

    /// Many writes, few checkpoints: SW-Inc should cost more than SW-Tr.
    fn write_heavy() -> Program {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("buf", ValKind::U64, 8);
        let bar = b.barrier();
        for t in 0..2 {
            b.thread(move |ctx| {
                for i in 0..500u64 {
                    ctx.store(g.at(((i + t as u64) % 8) as usize), i);
                }
                ctx.barrier(bar);
            });
        }
        b.build()
    }

    /// Few writes, many checkpoints over a large state: SW-Tr should
    /// cost more than SW-Inc.
    fn checkpoint_heavy() -> Program {
        let mut b = ProgramBuilder::new(2);
        let g = b.global("state", ValKind::U64, 2000);
        let bar = b.barrier();
        for t in 0..2usize {
            b.thread(move |ctx| {
                for i in 0..50u64 {
                    ctx.store(g.at(t), i);
                    ctx.barrier(bar);
                }
            });
        }
        b.build()
    }

    #[test]
    fn hw_overhead_is_tiny() {
        let r = measure_overhead(write_heavy, 1, None, &IgnoreSpec::new()).unwrap();
        assert!(r.hw_ratio() < 1.05, "hw ratio {}", r.hw_ratio());
        assert!(r.sw_inc_ratio() > r.hw_ratio());
        assert!(r.sw_tr_ratio() > r.hw_ratio());
    }

    #[test]
    fn crossover_matches_the_papers_explanation() {
        let wh = measure_overhead(write_heavy, 1, None, &IgnoreSpec::new()).unwrap();
        assert!(
            wh.sw_tr_ideal < wh.sw_inc_ideal,
            "many writes between checks: traversal is relatively cheap"
        );
        let ch = measure_overhead(checkpoint_heavy, 1, None, &IgnoreSpec::new()).unwrap();
        assert!(
            ch.sw_inc_ideal < ch.sw_tr_ideal,
            "few writes, many checks over a large state: incremental wins"
        );
    }

    #[test]
    fn zero_fill_shows_up_in_hw_overhead() {
        let alloc_heavy = || {
            let mut b = ProgramBuilder::new(1);
            b.thread(|ctx| {
                for _ in 0..20 {
                    let p = ctx.malloc("buf", TypeTag::u64s(), 500);
                    ctx.store(p, 1);
                    ctx.free(p);
                }
            });
            b.build()
        };
        let r = measure_overhead(alloc_heavy, 1, None, &IgnoreSpec::new()).unwrap();
        assert!(r.hw_inc > r.native);
    }

    #[test]
    fn ignoring_state_costs_every_scheme_with_hw_cheapest() {
        let source = || {
            let mut b = ProgramBuilder::new(2);
            let g = b.global("noise", ValKind::U64, 400);
            let bar = b.barrier();
            for t in 0..2usize {
                b.thread(move |ctx| {
                    for i in 0..20u64 {
                        ctx.store(g.at(t), i);
                        ctx.barrier(bar);
                    }
                });
            }
            b.build()
        };
        let plain = measure_overhead(source, 1, None, &IgnoreSpec::new()).unwrap();
        let spec = IgnoreSpec::new().ignore_global("noise");
        let del = measure_overhead(source, 1, None, &spec).unwrap();
        assert!(del.hw_inc > plain.hw_inc);
        assert!(del.sw_inc_ideal > plain.sw_inc_ideal);
        // Deleting state is much cheaper with hardware hash support.
        let hw_delta = del.hw_inc - plain.hw_inc;
        let sw_delta = del.sw_inc_ideal - plain.sw_inc_ideal;
        assert!(sw_delta > 10 * hw_delta, "hw {hw_delta} sw {sw_delta}");
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean([3.0]) - 3.0).abs() < 1e-12);
        assert!(geometric_mean(std::iter::empty()).is_nan());
    }
}
