//! Run-result caching: satisfy a campaign's run slots from previously
//! recorded outcomes instead of re-simulating them.
//!
//! The paper's whole premise is that a 64-bit State Hash is a cheap,
//! durable witness of a run's memory state — yet a naive harness throws
//! every witness away and recomputes all 30 runs of every campaign from
//! scratch. This module makes the witnesses reusable. A [`RunCache`]
//! keys *everything that determines a run's hash sequence* — workload
//! identity, scheme, scheduler seed, library seed, preemption policy,
//! FP-rounding config, ignore spec, fault plan, allocator-replay
//! provenance — into a [`RunKey`], and maps it to the [`CachedRun`] the
//! simulator produced last time. On a hit the checker skips the
//! simulation entirely and replays the recorded outcome through exactly
//! the same reduction path a cold run takes, so the campaign's
//! [`CheckReport`](crate::CheckReport), metrics, and event trace are
//! byte-identical to a cold campaign's.
//!
//! Two implementations exist:
//!
//! * [`MemoryRunCache`] (here) — a process-local warm cache, useful for
//!   repeated campaigns over the same workload within one process and
//!   as the reference implementation for tests.
//! * `corpus::CorpusStore` (the `corpus` crate) — a versioned,
//!   content-addressed on-disk store with corruption quarantine, the
//!   persistent cross-process/cross-PR corpus.
//!
//! # What is cached
//!
//! Only *completed* runs. A failed attempt is never satisfied from a
//! cache: failures can be wall-clock-dependent ([`tsim::SimError`]
//! carries non-serializable context), and recomputing them keeps the
//! failure-policy machinery honest. A cached run carries the full
//! [`RunHashes`], the simulator accounting the metrics registry folds
//! in, the allocator log (when the run was the campaign's
//! address-logging run), and — when the run was recorded under an event
//! sink — its simulator event trace, so warm campaigns reproduce cold
//! traces byte for byte. A cache entry without a stored trace is
//! treated as a miss by a campaign that records traces.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use adhash::FpRound;
use detrand::splitmix64;
use obs::Event;
use tsim::{AllocLog, FaultPlan, SwitchPolicy, FAULT_KINDS};

use crate::checker::RunHashes;
use crate::scheme::Scheme;

/// Version of the run-key encoding. Bumped whenever the meaning of a
/// cached outcome changes (new nondeterminism control, changed hash
/// algebra), so stale entries key-miss instead of being trusted.
pub const RUN_KEY_VERSION: u32 = 1;

/// Mixes a byte string into a 64-bit token (splitmix64-chained,
/// length-prefixed so `("ab","c")` and `("a","bc")` differ).
pub(crate) fn mix_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = splitmix64(seed ^ bytes.len() as u64);
    for &b in bytes {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// Mixes one `u64` into a token.
pub(crate) fn mix_u64(seed: u64, value: u64) -> u64 {
    splitmix64(seed ^ value)
}

/// A stable 64-bit token for a [`FaultPlan`]: the plan seed plus every
/// kind's trigger. Equal plans (same seed, same triggers) produce equal
/// tokens; `None` plans are conventionally token `0`.
pub fn fault_plan_token(plan: &FaultPlan) -> u64 {
    let mut h = mix_u64(0xfa17_07a9_0000_0001, plan.seed);
    for kind in FAULT_KINDS {
        let t = match plan.trigger(kind) {
            tsim::Trigger::Never => 0u64,
            tsim::Trigger::Nth(n) => 1 << 62 | n,
            tsim::Trigger::Rate { num, denom } => 2 << 62 | num << 31 | denom,
        };
        h = mix_u64(h, mix_bytes(t, kind.label().as_bytes()));
    }
    // A token of 0 is reserved for "no plan"; remap the (cosmically
    // unlikely) collision.
    if h == 0 {
        1
    } else {
        h
    }
}

/// Everything that determines one run attempt's [`RunHashes`].
///
/// Two attempts with equal keys simulate identically, so one's recorded
/// outcome can satisfy the other. The key deliberately excludes
/// anything that does *not* affect the hashes: the failure policy (it
/// decides which attempts run, not what an attempt computes), the
/// wall-clock deadline, worker count, and observability sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct RunKey {
    /// Caller-supplied workload identity: program name plus every
    /// construction parameter (scale, input size). The checker cannot
    /// see inside the `Fn() -> Program` closure, so this is the
    /// caller's contract: equal ids must build equal programs.
    pub workload: String,
    /// The checking scheme (affects hashes *and* cost counters).
    pub scheme: Scheme,
    /// Scheduler seed of the attempt.
    pub seed: u64,
    /// Library-call seed.
    pub lib_seed: u64,
    /// Preemption policy.
    pub switch: SwitchPolicy,
    /// Per-run step limit (a run near the limit could complete under
    /// one limit and fail under another).
    pub max_steps: u64,
    /// FP round-off applied before hashing.
    pub rounding: Option<FpRound>,
    /// Token of the ignore spec ([`IgnoreSpec::cache_token`](crate::IgnoreSpec::cache_token)).
    pub ignore_token: u64,
    /// Token of the slot's fault plan ([`fault_plan_token`]; `0` = none).
    pub fault_token: u64,
    /// Whether the L1/MHM cache model ran (it adds counters to the
    /// outcome).
    pub cache_model: bool,
    /// Allocator-replay provenance: `None` when this run logs its own
    /// allocator addresses, `Some(seed)` when it replays the log of the
    /// completed run with that scheduler seed. Addresses feed the
    /// location hash, so provenance is part of the key.
    pub alloc_seed: Option<u64>,
}

impl RunKey {
    /// The key as canonical `(label, value)` fields.
    ///
    /// This is the serialization contract for fingerprinting: every
    /// field is rendered to a stable string, labels are unique, and a
    /// fingerprint built from these fields must not depend on their
    /// order (see the corpus crate's order-independent fingerprint).
    /// The encoding version rides along as its own field, so bumping
    /// [`RUN_KEY_VERSION`] invalidates old entries by key mismatch.
    pub fn tokens(&self) -> Vec<(&'static str, String)> {
        let switch = crate::spec::switch_token(self.switch);
        let rounding = crate::spec::rounding_token(self.rounding);
        vec![
            ("version", RUN_KEY_VERSION.to_string()),
            ("workload", self.workload.clone()),
            ("scheme", self.scheme.name().to_owned()),
            ("seed", self.seed.to_string()),
            ("lib_seed", self.lib_seed.to_string()),
            ("switch", switch),
            ("max_steps", self.max_steps.to_string()),
            ("rounding", rounding),
            ("ignore", format!("{:016x}", self.ignore_token)),
            ("faults", format!("{:016x}", self.fault_token)),
            ("cache_model", u64::from(self.cache_model).to_string()),
            (
                "alloc_seed",
                match self.alloc_seed {
                    None => "log".to_owned(),
                    Some(s) => s.to_string(),
                },
            ),
        ]
    }

    /// A canonical single-string rendering of [`tokens`](RunKey::tokens)
    /// (fields joined in label order) — the map key of
    /// [`MemoryRunCache`] and a convenient debugging handle.
    pub fn canonical(&self) -> String {
        let mut fields = self.tokens();
        fields.sort_by_key(|(label, _)| *label);
        let mut s = String::new();
        for (label, value) in fields {
            s.push_str(label);
            s.push('=');
            s.push_str(&value);
            s.push(';');
        }
        s
    }
}

/// One completed run, as a cache can reproduce it: the hash sequence
/// plus the accounting and logs the checker needs to make a warm
/// campaign indistinguishable from a cold one.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The run's hash sequence (checkpoints, output digest, cost and
    /// cache counters).
    pub hashes: RunHashes,
    /// Scheduler steps the run took (metrics + trace).
    pub steps: u64,
    /// Native instructions the run executed (metrics + trace).
    pub native_instr: u64,
    /// Zero-fill instructions charged to the run (trace).
    pub zero_fill_instr: u64,
    /// The allocator log the run recorded, present exactly when the run
    /// logged its own addresses (`RunKey::alloc_seed == None`); later
    /// slots of a warm campaign replay it just as they would a cold
    /// log.
    pub alloc_log: Option<Arc<AllocLog>>,
    /// The simulator events the run emitted under its sink, in order —
    /// present only when the run was recorded by a tracing campaign.
    /// Campaigns that trace treat an entry without one as a miss.
    pub sim_trace: Option<Vec<Event>>,
}

/// What a claim-aware cache told an attempt to do.
///
/// Returned by [`RunCache::begin`]. `Hit` carries a published outcome;
/// `Compute` tells the caller to simulate the run itself. When
/// `claimed` is `true` the cache has recorded the attempt as
/// *in-flight* — concurrent attempts on the same key will wait for this
/// one instead of recomputing — and the caller **must** resolve the
/// claim with exactly one of [`RunCache::store`] (on completion) or
/// [`RunCache::abandon`] (on failure or unwind).
#[derive(Debug)]
pub enum CacheLease {
    /// A trustworthy published outcome; replay it.
    Hit(Arc<CachedRun>),
    /// No outcome yet; the caller computes the run.
    Compute {
        /// Whether the cache tracks this attempt as in-flight (and so
        /// must be released via `store` or `abandon`).
        claimed: bool,
    },
}

/// A store of completed run outcomes keyed by [`RunKey`].
///
/// Implementations must be infallible at the API level: corruption or
/// I/O trouble is an implementation concern (quarantine, recompute) and
/// surfaces as a `None` lookup, never as a trusted-but-wrong hit.
///
/// Outcomes travel as `Arc<CachedRun>` so publication is a pointer
/// swap: a hit never deep-copies the hash sequence or a recorded event
/// trace, and a concurrent cache can publish an entry to other workers
/// with a single atomic store.
///
/// The optional claim protocol ([`begin`](RunCache::begin) /
/// [`abandon`](RunCache::abandon)) lets a cache deduplicate *in-flight*
/// work: when two workers race the same key, one computes and the other
/// waits for the published result. The default implementations degrade
/// to plain `lookup` with no claim tracking, so simple caches need not
/// implement them.
pub trait RunCache: fmt::Debug + Send + Sync {
    /// Returns the recorded outcome for `key`, if one is stored and
    /// trustworthy.
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>>;

    /// Records the outcome of a completed run under `key`, releasing
    /// the caller's claim on the key if it held one.
    fn store(&self, key: &RunKey, run: &Arc<CachedRun>);

    /// Claim-aware lookup: returns the published outcome, or tells the
    /// caller to compute it — possibly registering the attempt as
    /// in-flight so concurrent attempts on `key` wait instead of
    /// duplicating the work. The default is a plain [`lookup`]
    /// (`lookup`): hits map to [`CacheLease::Hit`], misses to an
    /// unclaimed [`CacheLease::Compute`].
    ///
    /// [`lookup`]: RunCache::lookup
    fn begin(&self, key: &RunKey) -> CacheLease {
        match self.lookup(key) {
            Some(hit) => CacheLease::Hit(hit),
            None => CacheLease::Compute { claimed: false },
        }
    }

    /// Releases a claim issued by [`begin`](RunCache::begin) without
    /// publishing an outcome (the attempt failed or was abandoned), so
    /// waiting attempts wake up and compute the run themselves. A no-op
    /// for caches without claim tracking, and for keys the caller does
    /// not hold a claim on.
    fn abandon(&self, _key: &RunKey) {}
}

/// A process-local, in-memory [`RunCache`].
///
/// # Example
///
/// Two campaigns over the same workload share the run results — the
/// second is satisfied entirely from memory and produces the identical
/// report:
///
/// ```
/// use std::sync::Arc;
/// use instantcheck::{Checker, CheckerConfig, MemoryRunCache, Scheme};
/// use tsim::{ProgramBuilder, ValKind};
///
/// let source = || {
///     let mut b = ProgramBuilder::new(2);
///     let g = b.global("G", ValKind::U64, 1);
///     let lock = b.mutex();
///     for t in 0..2u64 {
///         b.thread(move |ctx| {
///             ctx.lock(lock);
///             let v = ctx.load(g.at(0));
///             ctx.store(g.at(0), v + t + 1);
///             ctx.unlock(lock);
///         });
///     }
///     b.build()
/// };
///
/// let cache = Arc::new(MemoryRunCache::new());
/// let cfg = CheckerConfig::new(Scheme::HwInc)
///     .with_runs(4)
///     .with_run_cache(cache.clone(), "g-plus-t");
/// let cold = Checker::new(cfg.clone()).expect("valid config").check(source).unwrap();
/// let warm = Checker::new(cfg).expect("valid config").check(source).unwrap();
/// assert_eq!(cold, warm);
/// assert_eq!(cache.hits(), 4);
/// ```
#[derive(Debug, Default)]
pub struct MemoryRunCache {
    entries: Mutex<HashMap<String, Arc<CachedRun>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl MemoryRunCache {
    /// An empty cache.
    pub fn new() -> Self {
        MemoryRunCache::default()
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups satisfied from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl RunCache for MemoryRunCache {
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>> {
        let hit = self.entries.lock().unwrap().get(&key.canonical()).cloned();
        let counter = if hit.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        hit
    }

    fn store(&self, key: &RunKey, run: &Arc<CachedRun>) {
        self.entries
            .lock()
            .unwrap()
            .insert(key.canonical(), Arc::clone(run));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> RunKey {
        RunKey {
            workload: "w:scaled".into(),
            scheme: Scheme::HwInc,
            seed: 7,
            lib_seed: 0xfeed,
            switch: SwitchPolicy::SyncOnly,
            max_steps: 1000,
            rounding: None,
            ignore_token: 0,
            fault_token: 0,
            cache_model: false,
            alloc_seed: None,
        }
    }

    fn sample_run() -> CachedRun {
        CachedRun {
            hashes: RunHashes {
                checkpoints: Vec::new(),
                output_digest: 5,
                extra_instr: 1,
                stores: 2,
                hash_updates: 3,
                cache: None,
            },
            steps: 10,
            native_instr: 20,
            zero_fill_instr: 0,
            alloc_log: None,
            sim_trace: None,
        }
    }

    #[test]
    fn canonical_distinguishes_every_field() {
        let base = sample_key();
        let mut variants = vec![base.clone()];
        let mut k = base.clone();
        k.workload = "other".into();
        variants.push(k.clone());
        k = base.clone();
        k.scheme = Scheme::SwTr;
        variants.push(k.clone());
        k = base.clone();
        k.seed = 8;
        variants.push(k.clone());
        k = base.clone();
        k.lib_seed = 1;
        variants.push(k.clone());
        k = base.clone();
        k.switch = SwitchPolicy::EveryNth(3);
        variants.push(k.clone());
        k = base.clone();
        k.max_steps = 999;
        variants.push(k.clone());
        k = base.clone();
        k.rounding = Some(FpRound::default());
        variants.push(k.clone());
        k = base.clone();
        k.ignore_token = 9;
        variants.push(k.clone());
        k = base.clone();
        k.fault_token = 9;
        variants.push(k.clone());
        k = base.clone();
        k.cache_model = true;
        variants.push(k.clone());
        k = base.clone();
        k.alloc_seed = Some(1);
        variants.push(k);
        let canon: Vec<String> = variants.iter().map(RunKey::canonical).collect();
        for i in 0..canon.len() {
            for j in (i + 1)..canon.len() {
                assert_ne!(canon[i], canon[j], "fields {i} and {j} collide");
            }
        }
    }

    #[test]
    fn memory_cache_round_trips() {
        let cache = MemoryRunCache::new();
        let key = sample_key();
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.misses(), 1);
        cache.store(&key, &Arc::new(sample_run()));
        let hit = cache.lookup(&key).expect("stored");
        assert_eq!(hit.hashes.output_digest, 5);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn fault_plan_tokens_depend_on_seed_and_triggers() {
        use tsim::{FaultKind, Trigger};
        let a = fault_plan_token(&FaultPlan::new(1));
        let b = fault_plan_token(&FaultPlan::new(2));
        assert_ne!(a, b);
        let c = fault_plan_token(&FaultPlan::new(1).with(FaultKind::BitFlip, Trigger::Nth(0)));
        assert_ne!(a, c);
        let d = fault_plan_token(&FaultPlan::new(1).with(
            FaultKind::BitFlip,
            Trigger::Rate {
                num: 1,
                denom: 1000,
            },
        ));
        assert_ne!(c, d);
        assert_eq!(a, fault_plan_token(&FaultPlan::new(1)), "pure function");
        assert_ne!(a, 0, "0 is reserved for no-plan");
    }
}
