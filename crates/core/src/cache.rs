//! Run-result caching: satisfy a campaign's run slots from previously
//! recorded outcomes instead of re-simulating them.
//!
//! The paper's whole premise is that a 64-bit State Hash is a cheap,
//! durable witness of a run's memory state — yet a naive harness throws
//! every witness away and recomputes all 30 runs of every campaign from
//! scratch. This module makes the witnesses reusable. A [`RunCache`]
//! keys *everything that determines a run's hash sequence* — workload
//! identity, scheme, scheduler seed, library seed, preemption policy,
//! FP-rounding config, ignore spec, fault plan, allocator-replay
//! provenance — into a [`RunKey`], and maps it to the [`CachedRun`] the
//! simulator produced last time. On a hit the checker skips the
//! simulation entirely and replays the recorded outcome through exactly
//! the same reduction path a cold run takes, so the campaign's
//! [`CheckReport`](crate::CheckReport), metrics, and event trace are
//! byte-identical to a cold campaign's.
//!
//! Two implementations exist:
//!
//! * [`MemoryRunCache`] (here) — a process-local warm cache, useful for
//!   repeated campaigns over the same workload within one process and
//!   as the reference implementation for tests.
//! * `corpus::Corpus` (the `corpus` crate) — the unified storage
//!   facade: a log-structured, crash-safe on-disk store with
//!   corruption quarantine behind a lock-free warm cache, the
//!   persistent cross-process/cross-PR corpus.
//!
//! # What is cached
//!
//! Only *completed* runs. A failed attempt is never satisfied from a
//! cache: failures can be wall-clock-dependent ([`tsim::SimError`]
//! carries non-serializable context), and recomputing them keeps the
//! failure-policy machinery honest. A cached run carries the full
//! [`RunHashes`], the simulator accounting the metrics registry folds
//! in, the allocator log (when the run was the campaign's
//! address-logging run), and — when the run was recorded under an event
//! sink — its simulator event trace, so warm campaigns reproduce cold
//! traces byte for byte. A cache entry without a stored trace is
//! treated as a miss by a campaign that records traces.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use adhash::FpRound;
use detrand::splitmix64;
use obs::Event;
use tsim::{AllocLog, FaultPlan, SwitchPolicy, FAULT_KINDS};

use crate::checker::RunHashes;
use crate::scheme::Scheme;

/// Version of the run-key encoding. Bumped whenever the meaning of a
/// cached outcome changes (new nondeterminism control, changed hash
/// algebra), so stale entries key-miss instead of being trusted.
pub const RUN_KEY_VERSION: u32 = 1;

/// Mixes a byte string into a 64-bit token (splitmix64-chained,
/// length-prefixed so `("ab","c")` and `("a","bc")` differ).
pub(crate) fn mix_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = splitmix64(seed ^ bytes.len() as u64);
    for &b in bytes {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// Mixes one `u64` into a token.
pub(crate) fn mix_u64(seed: u64, value: u64) -> u64 {
    splitmix64(seed ^ value)
}

/// A stable 64-bit token for a [`FaultPlan`]: the plan seed plus every
/// kind's trigger. Equal plans (same seed, same triggers) produce equal
/// tokens; `None` plans are conventionally token `0`.
pub fn fault_plan_token(plan: &FaultPlan) -> u64 {
    let mut h = mix_u64(0xfa17_07a9_0000_0001, plan.seed);
    for kind in FAULT_KINDS {
        let t = match plan.trigger(kind) {
            tsim::Trigger::Never => 0u64,
            tsim::Trigger::Nth(n) => 1 << 62 | n,
            tsim::Trigger::Rate { num, denom } => 2 << 62 | num << 31 | denom,
        };
        h = mix_u64(h, mix_bytes(t, kind.label().as_bytes()));
    }
    // A token of 0 is reserved for "no plan"; remap the (cosmically
    // unlikely) collision.
    if h == 0 {
        1
    } else {
        h
    }
}

/// Everything that determines one run attempt's [`RunHashes`].
///
/// Two attempts with equal keys simulate identically, so one's recorded
/// outcome can satisfy the other. The key deliberately excludes
/// anything that does *not* affect the hashes: the failure policy (it
/// decides which attempts run, not what an attempt computes), the
/// wall-clock deadline, worker count, and observability sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct RunKey {
    /// Caller-supplied workload identity: program name plus every
    /// construction parameter (scale, input size). The checker cannot
    /// see inside the `Fn() -> Program` closure, so this is the
    /// caller's contract: equal ids must build equal programs.
    pub workload: String,
    /// The checking scheme (affects hashes *and* cost counters).
    pub scheme: Scheme,
    /// Scheduler seed of the attempt.
    pub seed: u64,
    /// Library-call seed.
    pub lib_seed: u64,
    /// Preemption policy.
    pub switch: SwitchPolicy,
    /// Per-run step limit (a run near the limit could complete under
    /// one limit and fail under another).
    pub max_steps: u64,
    /// FP round-off applied before hashing.
    pub rounding: Option<FpRound>,
    /// Token of the ignore spec ([`IgnoreSpec::cache_token`](crate::IgnoreSpec::cache_token)).
    pub ignore_token: u64,
    /// Token of the slot's fault plan ([`fault_plan_token`]; `0` = none).
    pub fault_token: u64,
    /// Whether the L1/MHM cache model ran (it adds counters to the
    /// outcome).
    pub cache_model: bool,
    /// Allocator-replay provenance: `None` when this run logs its own
    /// allocator addresses, `Some(seed)` when it replays the log of the
    /// completed run with that scheduler seed. Addresses feed the
    /// location hash, so provenance is part of the key.
    pub alloc_seed: Option<u64>,
}

/// A fixed-capacity stack string for one rendered key token. Writes
/// past the capacity fail the `fmt::Write` contract instead of
/// allocating; capacities are sized to each field's maximum rendering.
struct TokenBuf<const N: usize> {
    bytes: [u8; N],
    len: usize,
}

impl<const N: usize> TokenBuf<N> {
    fn new() -> Self {
        TokenBuf {
            bytes: [0; N],
            len: 0,
        }
    }

    fn push(&mut self, s: &str) {
        let _ = self.write_str(s);
    }

    fn as_str(&self) -> &str {
        // Only whole `str`s are ever copied in, so the prefix is valid
        // UTF-8 by construction.
        std::str::from_utf8(&self.bytes[..self.len]).unwrap_or_default()
    }
}

impl<const N: usize> fmt::Write for TokenBuf<N> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let end = self.len + s.len();
        if end > N {
            return Err(fmt::Error);
        }
        self.bytes[self.len..end].copy_from_slice(s.as_bytes());
        self.len = end;
        Ok(())
    }
}

impl RunKey {
    /// The key as canonical `(label, value)` fields.
    ///
    /// This is the serialization contract for fingerprinting: every
    /// field is rendered to a stable string, labels are unique, and a
    /// fingerprint built from these fields must not depend on their
    /// order (see the corpus crate's order-independent fingerprint).
    /// The encoding version rides along as its own field, so bumping
    /// [`RUN_KEY_VERSION`] invalidates old entries by key mismatch.
    pub fn tokens(&self) -> Vec<(&'static str, String)> {
        self.with_tokens(|fields| {
            fields
                .iter()
                .map(|(label, value)| (*label, (*value).to_owned()))
                .collect()
        })
    }

    /// [`tokens`](RunKey::tokens) as borrowed `(label, value)` pairs on
    /// the stack — same labels, same values, same order, no per-field
    /// allocation. This is the form the corpus lookup path consumes on
    /// every cache probe, where the owned vector would be pure
    /// overhead.
    pub fn with_tokens<R>(&self, f: impl FnOnce(&[(&'static str, &str)]) -> R) -> R {
        let mut version = TokenBuf::<10>::new();
        let _ = write!(version, "{RUN_KEY_VERSION}");
        let mut seed = TokenBuf::<20>::new();
        let _ = write!(seed, "{}", self.seed);
        let mut lib_seed = TokenBuf::<20>::new();
        let _ = write!(lib_seed, "{}", self.lib_seed);
        let mut switch = TokenBuf::<32>::new();
        match self.switch {
            SwitchPolicy::SyncOnly => switch.push("sync-only"),
            SwitchPolicy::EveryAccess => switch.push("every-access"),
            SwitchPolicy::EveryNth(n) => {
                let _ = write!(switch, "every-nth:{n}");
            }
        }
        let mut max_steps = TokenBuf::<20>::new();
        let _ = write!(max_steps, "{}", self.max_steps);
        let mut rounding = TokenBuf::<32>::new();
        match self.rounding {
            None => rounding.push("none"),
            Some(FpRound::BitExact) => rounding.push("bit-exact"),
            Some(FpRound::MaskMantissa { bits }) => {
                let _ = write!(rounding, "mask-mantissa:{bits}");
            }
            Some(FpRound::FloorDecimal { digits }) => {
                let _ = write!(rounding, "floor-decimal:{digits}");
            }
            Some(FpRound::NearestDecimal { digits }) => {
                let _ = write!(rounding, "nearest-decimal:{digits}");
            }
        }
        let mut ignore = TokenBuf::<16>::new();
        let _ = write!(ignore, "{:016x}", self.ignore_token);
        let mut faults = TokenBuf::<16>::new();
        let _ = write!(faults, "{:016x}", self.fault_token);
        let mut alloc_seed = TokenBuf::<20>::new();
        match self.alloc_seed {
            None => alloc_seed.push("log"),
            Some(s) => {
                let _ = write!(alloc_seed, "{s}");
            }
        }
        f(&[
            ("version", version.as_str()),
            ("workload", &self.workload),
            ("scheme", self.scheme.name()),
            ("seed", seed.as_str()),
            ("lib_seed", lib_seed.as_str()),
            ("switch", switch.as_str()),
            ("max_steps", max_steps.as_str()),
            ("rounding", rounding.as_str()),
            ("ignore", ignore.as_str()),
            ("faults", faults.as_str()),
            ("cache_model", if self.cache_model { "1" } else { "0" }),
            ("alloc_seed", alloc_seed.as_str()),
        ])
    }

    /// A canonical single-string rendering of [`tokens`](RunKey::tokens)
    /// (fields joined in label order) — the map key of
    /// [`MemoryRunCache`] and a convenient debugging handle.
    pub fn canonical(&self) -> String {
        let mut fields = self.tokens();
        fields.sort_by_key(|(label, _)| *label);
        let mut s = String::new();
        for (label, value) in fields {
            s.push_str(label);
            s.push('=');
            s.push_str(&value);
            s.push(';');
        }
        s
    }
}

/// One completed run, as a cache can reproduce it: the hash sequence
/// plus the accounting and logs the checker needs to make a warm
/// campaign indistinguishable from a cold one.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The run's hash sequence (checkpoints, output digest, cost and
    /// cache counters).
    pub hashes: RunHashes,
    /// Scheduler steps the run took (metrics + trace).
    pub steps: u64,
    /// Native instructions the run executed (metrics + trace).
    pub native_instr: u64,
    /// Zero-fill instructions charged to the run (trace).
    pub zero_fill_instr: u64,
    /// The allocator log the run recorded, present exactly when the run
    /// logged its own addresses (`RunKey::alloc_seed == None`); later
    /// slots of a warm campaign replay it just as they would a cold
    /// log.
    pub alloc_log: Option<Arc<AllocLog>>,
    /// The simulator events the run emitted under its sink, in order —
    /// present only when the run was recorded by a tracing campaign.
    /// Campaigns that trace treat an entry without one as a miss.
    pub sim_trace: Option<Vec<Event>>,
}

/// What a claim-aware cache told an attempt to do.
///
/// Returned by [`RunCache::begin`]. `Hit` carries a published outcome;
/// `Compute` tells the caller to simulate the run itself. When
/// `claimed` is `true` the cache has recorded the attempt as
/// *in-flight* — concurrent attempts on the same key will wait for this
/// one instead of recomputing — and the caller **must** resolve the
/// claim with exactly one of [`RunCache::store`] (on completion) or
/// [`RunCache::abandon`] (on failure or unwind).
#[derive(Debug)]
pub enum CacheLease {
    /// A trustworthy published outcome; replay it.
    Hit(Arc<CachedRun>),
    /// No outcome yet; the caller computes the run.
    Compute {
        /// Whether the cache tracks this attempt as in-flight (and so
        /// must be released via `store` or `abandon`).
        claimed: bool,
    },
}

/// A store of completed run outcomes keyed by [`RunKey`].
///
/// Implementations must be infallible at the API level: corruption or
/// I/O trouble is an implementation concern (quarantine, recompute) and
/// surfaces as a `None` lookup, never as a trusted-but-wrong hit.
///
/// Outcomes travel as `Arc<CachedRun>` so publication is a pointer
/// swap: a hit never deep-copies the hash sequence or a recorded event
/// trace, and a concurrent cache can publish an entry to other workers
/// with a single atomic store.
///
/// The optional claim protocol ([`begin`](RunCache::begin) /
/// [`abandon`](RunCache::abandon)) lets a cache deduplicate *in-flight*
/// work: when two workers race the same key, one computes and the other
/// waits for the published result. The default implementations degrade
/// to plain `lookup` with no claim tracking, so simple caches need not
/// implement them.
pub trait RunCache: fmt::Debug + Send + Sync {
    /// Returns the recorded outcome for `key`, if one is stored and
    /// trustworthy.
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>>;

    /// Records the outcome of a completed run under `key`, releasing
    /// the caller's claim on the key if it held one.
    fn store(&self, key: &RunKey, run: &Arc<CachedRun>);

    /// Claim-aware lookup: returns the published outcome, or tells the
    /// caller to compute it — possibly registering the attempt as
    /// in-flight so concurrent attempts on `key` wait instead of
    /// duplicating the work. The default is a plain [`lookup`]
    /// (`lookup`): hits map to [`CacheLease::Hit`], misses to an
    /// unclaimed [`CacheLease::Compute`].
    ///
    /// [`lookup`]: RunCache::lookup
    fn begin(&self, key: &RunKey) -> CacheLease {
        match self.lookup(key) {
            Some(hit) => CacheLease::Hit(hit),
            None => CacheLease::Compute { claimed: false },
        }
    }

    /// Releases a claim issued by [`begin`](RunCache::begin) without
    /// publishing an outcome (the attempt failed or was abandoned), so
    /// waiting attempts wake up and compute the run themselves. A no-op
    /// for caches without claim tracking, and for keys the caller does
    /// not hold a claim on.
    fn abandon(&self, _key: &RunKey) {}
}

/// A process-local, in-memory [`RunCache`].
///
/// # Example
///
/// Two campaigns over the same workload share the run results — the
/// second is satisfied entirely from memory and produces the identical
/// report:
///
/// ```
/// use std::sync::Arc;
/// use instantcheck::{Checker, CheckerConfig, MemoryRunCache, Scheme};
/// use tsim::{ProgramBuilder, ValKind};
///
/// let source = || {
///     let mut b = ProgramBuilder::new(2);
///     let g = b.global("G", ValKind::U64, 1);
///     let lock = b.mutex();
///     for t in 0..2u64 {
///         b.thread(move |ctx| {
///             ctx.lock(lock);
///             let v = ctx.load(g.at(0));
///             ctx.store(g.at(0), v + t + 1);
///             ctx.unlock(lock);
///         });
///     }
///     b.build()
/// };
///
/// let cache = Arc::new(MemoryRunCache::new());
/// let cfg = CheckerConfig::new(Scheme::HwInc)
///     .with_runs(4)
///     .with_run_cache(cache.clone(), "g-plus-t");
/// let cold = Checker::new(cfg.clone()).expect("valid config").check(source).unwrap();
/// let warm = Checker::new(cfg).expect("valid config").check(source).unwrap();
/// assert_eq!(cold, warm);
/// assert_eq!(cache.hits(), 4);
/// ```
#[derive(Debug, Default)]
pub struct MemoryRunCache {
    entries: Mutex<HashMap<String, Arc<CachedRun>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl MemoryRunCache {
    /// An empty cache.
    pub fn new() -> Self {
        MemoryRunCache::default()
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups satisfied from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl RunCache for MemoryRunCache {
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>> {
        let hit = self.entries.lock().unwrap().get(&key.canonical()).cloned();
        let counter = if hit.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        hit
    }

    fn store(&self, key: &RunKey, run: &Arc<CachedRun>) {
        self.entries
            .lock()
            .unwrap()
            .insert(key.canonical(), Arc::clone(run));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> RunKey {
        RunKey {
            workload: "w:scaled".into(),
            scheme: Scheme::HwInc,
            seed: 7,
            lib_seed: 0xfeed,
            switch: SwitchPolicy::SyncOnly,
            max_steps: 1000,
            rounding: None,
            ignore_token: 0,
            fault_token: 0,
            cache_model: false,
            alloc_seed: None,
        }
    }

    fn sample_run() -> CachedRun {
        CachedRun {
            hashes: RunHashes {
                checkpoints: Vec::new(),
                output_digest: 5,
                extra_instr: 1,
                stores: 2,
                hash_updates: 3,
                cache: None,
            },
            steps: 10,
            native_instr: 20,
            zero_fill_instr: 0,
            alloc_log: None,
            sim_trace: None,
        }
    }

    #[test]
    fn with_tokens_renders_exactly_like_the_token_helpers() {
        // The stack rendering duplicates switch_token/rounding_token's
        // formats; this pins them together across every parametric
        // variant so the fingerprint can never drift from the spec
        // tokens.
        let mut key = sample_key();
        key.workload = "canneal:full".into();
        key.seed = u64::MAX;
        key.lib_seed = 0;
        key.switch = SwitchPolicy::EveryNth(12345);
        key.max_steps = 42;
        key.rounding = Some(FpRound::NearestDecimal { digits: 6 });
        key.ignore_token = 0xdead_beef;
        key.fault_token = u64::MAX;
        key.cache_model = true;
        key.alloc_seed = Some(u64::MAX);
        for key in [sample_key(), key] {
            let owned = key.tokens();
            key.with_tokens(|borrowed| {
                assert_eq!(owned.len(), borrowed.len());
                for ((ol, ov), (bl, bv)) in owned.iter().zip(borrowed) {
                    assert_eq!((ol, ov.as_str()), (bl, *bv));
                }
            });
            assert_eq!(
                owned[5].1,
                crate::spec::switch_token(key.switch),
                "switch rendering drifted"
            );
            assert_eq!(
                owned[7].1,
                crate::spec::rounding_token(key.rounding),
                "rounding rendering drifted"
            );
        }
    }

    #[test]
    fn canonical_distinguishes_every_field() {
        let base = sample_key();
        let mut variants = vec![base.clone()];
        let mut k = base.clone();
        k.workload = "other".into();
        variants.push(k.clone());
        k = base.clone();
        k.scheme = Scheme::SwTr;
        variants.push(k.clone());
        k = base.clone();
        k.seed = 8;
        variants.push(k.clone());
        k = base.clone();
        k.lib_seed = 1;
        variants.push(k.clone());
        k = base.clone();
        k.switch = SwitchPolicy::EveryNth(3);
        variants.push(k.clone());
        k = base.clone();
        k.max_steps = 999;
        variants.push(k.clone());
        k = base.clone();
        k.rounding = Some(FpRound::default());
        variants.push(k.clone());
        k = base.clone();
        k.ignore_token = 9;
        variants.push(k.clone());
        k = base.clone();
        k.fault_token = 9;
        variants.push(k.clone());
        k = base.clone();
        k.cache_model = true;
        variants.push(k.clone());
        k = base.clone();
        k.alloc_seed = Some(1);
        variants.push(k);
        let canon: Vec<String> = variants.iter().map(RunKey::canonical).collect();
        for i in 0..canon.len() {
            for j in (i + 1)..canon.len() {
                assert_ne!(canon[i], canon[j], "fields {i} and {j} collide");
            }
        }
    }

    #[test]
    fn memory_cache_round_trips() {
        let cache = MemoryRunCache::new();
        let key = sample_key();
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.misses(), 1);
        cache.store(&key, &Arc::new(sample_run()));
        let hit = cache.lookup(&key).expect("stored");
        assert_eq!(hit.hashes.output_digest, 5);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn fault_plan_tokens_depend_on_seed_and_triggers() {
        use tsim::{FaultKind, Trigger};
        let a = fault_plan_token(&FaultPlan::new(1));
        let b = fault_plan_token(&FaultPlan::new(2));
        assert_ne!(a, b);
        let c = fault_plan_token(&FaultPlan::new(1).with(FaultKind::BitFlip, Trigger::Nth(0)));
        assert_ne!(a, c);
        let d = fault_plan_token(&FaultPlan::new(1).with(
            FaultKind::BitFlip,
            Trigger::Rate {
                num: 1,
                denom: 1000,
            },
        ));
        assert_ne!(c, d);
        assert_eq!(a, fault_plan_token(&FaultPlan::new(1)), "pure function");
        assert_ne!(a, 0, "0 is reserved for no-plan");
    }
}
