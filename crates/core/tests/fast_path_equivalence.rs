//! Fast-path ≡ dyn-path equivalence.
//!
//! `CheckMonitor` claims the engine's monomorphic store datapath
//! ([`tsim::Monitor::fast_path`]), which skips per-access virtual
//! dispatch and folds stores through the batched engine hasher. These
//! tests drive the *same* monitor through the dynamic dispatch path by
//! wrapping it in a shim whose `fast_path()` stays `None`, and assert
//! that every observable of the run — checkpoint hash sequence, output
//! digest, store/hash-update/extra-instruction accounting, and the
//! scheduler decision log — is bit-identical between the two paths.

use adhash::FpRound;
use instantcheck::{CheckMonitor, IgnoreSpec, Scheme};
use tsim::{
    Addr, BlockInfo, CheckpointInfo, Monitor, Program, ProgramBuilder, RunConfig, StateView,
    ThreadId, TypeTag, ValKind,
};

/// Delegates every callback to the wrapped [`CheckMonitor`] but keeps
/// the default `fast_path() -> None`, forcing the engine onto per-access
/// virtual dispatch.
struct DynShim(CheckMonitor);

impl Monitor for DynShim {
    fn on_store(&mut self, tid: ThreadId, addr: Addr, old: u64, new: u64, kind: ValKind) {
        self.0.on_store(tid, addr, old, new, kind);
    }
    fn on_load(&mut self, tid: ThreadId, addr: Addr, value: u64, kind: ValKind) {
        self.0.on_load(tid, addr, value, kind);
    }
    fn on_alloc(&mut self, tid: ThreadId, block: &BlockInfo) {
        self.0.on_alloc(tid, block);
    }
    fn on_free(&mut self, tid: ThreadId, block: &BlockInfo, contents: &[u64]) {
        self.0.on_free(tid, block, contents);
    }
    fn on_output(&mut self, tid: ThreadId, bytes: &[u8]) {
        self.0.on_output(tid, bytes);
    }
    fn on_checkpoint(&mut self, info: &CheckpointInfo, view: &StateView<'_>) {
        self.0.on_checkpoint(info, view);
    }
    fn extra_instructions(&self) -> u64 {
        self.0.extra_instructions()
    }
}

/// A workload that exercises everything the fast path touches: setup
/// stores, integer and FP store sweeps, `fetch_add`, locks, barriers
/// (checkpoints), heap alloc/write/free (hash cancellation), output,
/// and a manual checkpoint per thread.
fn program() -> Program {
    const NTHREADS: usize = 3;
    let mut b = ProgramBuilder::new(NTHREADS);
    let grid = b.global("grid", ValKind::U64, 32);
    let field = b.global("field", ValKind::F64, 8);
    let counter = b.global("counter", ValKind::U64, 1);
    let bar = b.barrier();
    let lock = b.mutex();
    b.setup(move |s| {
        for i in 0..32 {
            s.store(grid.at(i), (i as u64) * 3 + 1);
        }
        for i in 0..8 {
            s.store_f64(field.at(i), 0.5 * i as f64);
        }
    });
    for t in 0..NTHREADS {
        b.thread(move |ctx| {
            let tid = t as u64;
            // Integer store sweep over a striped range, with a shared
            // atomic bump and a barrier per step.
            for step in 0..4u64 {
                for i in 0..32 {
                    if i % NTHREADS == t {
                        let v = ctx.load(grid.at(i));
                        let v = v.wrapping_mul(6364136223846793005).wrapping_add(tid + step);
                        ctx.store(grid.at(i), v);
                    }
                }
                ctx.fetch_add(counter.at(0), 1);
                ctx.barrier(bar);
            }
            // FP stores with sub-rounding noise: both paths must agree
            // whether or not rounding is configured.
            for i in 0..8 {
                if i % NTHREADS == t {
                    let v = ctx.load_f64(field.at(i));
                    ctx.store_f64(field.at(i), v + 0.1 + tid as f64 * 1e-12);
                }
            }
            ctx.barrier(bar);
            // Heap churn: the freed block's contribution must cancel
            // out of the running hash identically on both paths.
            let buf = ctx.malloc("scratch", TypeTag::u64s(), 6 + t);
            for i in 0..(6 + t) as u64 {
                ctx.store(buf.offset(i), tid * 100 + i);
            }
            ctx.work(5);
            ctx.free(buf);
            // Locked update plus output bytes.
            ctx.lock(lock);
            let v = ctx.load(counter.at(0));
            ctx.store(counter.at(0), v + 1);
            ctx.unlock(lock);
            ctx.write_output(&[b'0' + t as u8]);
            ctx.barrier(bar);
            ctx.checkpoint("done");
        });
    }
    b.build()
}

/// Runs the workload twice with the same seed — once with the monitor's
/// fast-path claim honored, once through the `DynShim` — and asserts
/// every observable matches.
fn assert_paths_agree(scheme: Scheme, rounding: Option<FpRound>, ignore: IgnoreSpec, seed: u64) {
    let config = RunConfig::random(seed);

    let fast = program()
        .run_with(&config, CheckMonitor::new(scheme, rounding, ignore.clone()))
        .expect("fast-path run failed");
    let slow = program()
        .run_with(
            &config,
            DynShim(CheckMonitor::new(scheme, rounding, ignore)),
        )
        .expect("dyn-path run failed");

    // The fast-path claim must not perturb scheduling.
    assert_eq!(
        fast.decisions, slow.decisions,
        "{scheme:?}: decisions diverged"
    );
    assert_eq!(fast.steps, slow.steps, "{scheme:?}: step counts diverged");
    assert_eq!(fast.output, slow.output, "{scheme:?}: output diverged");
    assert_eq!(
        fast.checkpoints, slow.checkpoints,
        "{scheme:?}: checkpoint counts diverged"
    );

    let f = fast.monitor.into_hashes();
    let s = slow.monitor.0.into_hashes();
    assert_eq!(
        f.checkpoints, s.checkpoints,
        "{scheme:?}: checkpoint hashes diverged"
    );
    assert_eq!(
        f.output_digest, s.output_digest,
        "{scheme:?}: output digest diverged"
    );
    assert_eq!(f.stores, s.stores, "{scheme:?}: store counts diverged");
    assert_eq!(
        f.hash_updates, s.hash_updates,
        "{scheme:?}: hash-update counts diverged"
    );
    assert_eq!(
        f.extra_instr, s.extra_instr,
        "{scheme:?}: extra-instruction model diverged"
    );
}

#[test]
fn all_schemes_agree_bit_exact() {
    for scheme in [Scheme::Native, Scheme::HwInc, Scheme::SwInc, Scheme::SwTr] {
        for seed in [7, 1234] {
            assert_paths_agree(scheme, None, IgnoreSpec::new(), seed);
        }
    }
}

#[test]
fn incremental_schemes_agree_with_fp_rounding() {
    for scheme in [Scheme::HwInc, Scheme::SwInc] {
        assert_paths_agree(scheme, Some(FpRound::default()), IgnoreSpec::new(), 99);
        assert_paths_agree(
            scheme,
            Some(FpRound::MaskMantissa { bits: 20 }),
            IgnoreSpec::new(),
            99,
        );
    }
}

#[test]
fn ignore_set_resolves_identically_on_both_paths() {
    let ignore = IgnoreSpec::new().ignore_global("counter");
    assert_paths_agree(Scheme::SwInc, None, ignore.clone(), 31);
    assert_paths_agree(Scheme::SwTr, None, ignore, 31);
}
