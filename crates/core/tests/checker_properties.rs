//! Property-based tests of the checker: programs built only from
//! schedule-commutative operations are always classified deterministic
//! (no false positives), and injecting a single order-sensitive
//! operation is always detectable (no false negatives within the
//! campaign's coverage) — under all three schemes.

use instantcheck::{Checker, CheckerConfig, Scheme};
use minicheck::{check, Gen};
use tsim::{Program, ProgramBuilder, ValKind};

const CELLS: usize = 6;

/// Operations that commute across threads (locked adds, atomics,
/// private writes) — any program made of these is externally
/// deterministic.
#[derive(Debug, Clone, Copy)]
enum CommutingOp {
    LockedAdd(u8),
    AtomicBump(u8),
    PrivateStore(u8),
}

fn gen_op(g: &mut Gen) -> CommutingOp {
    match g.usize_in(0, 3) {
        0 => CommutingOp::LockedAdd(g.u8()),
        1 => CommutingOp::AtomicBump(g.u8()),
        _ => CommutingOp::PrivateStore(g.u8()),
    }
}

fn gen_bodies(g: &mut Gen) -> Vec<Vec<CommutingOp>> {
    g.vec_of(2, 4, |g| g.vec_of(1, 12, gen_op))
}

/// When `poison` is set, thread 0's *first* operation snapshots cell 0
/// into `last_writer`, and thread 1's *first* operation adds to cell 0 —
/// so their order is decided by the very first scheduling decisions and
/// flips with probability ~1/2 per run. (Had the snapshot been buried
/// deep in one body, the random serialized scheduler could order it the
/// same way in almost every run — the paper's "within the test
/// coverage" caveat, demonstrated by construction.)
fn build(bodies: &[Vec<CommutingOp>], poison: bool) -> Program {
    let nthreads = bodies.len();
    let mut b = ProgramBuilder::new(nthreads);
    let shared = b.global("shared", ValKind::U64, CELLS);
    let privates = b.global("privates", ValKind::U64, nthreads);
    let last_writer = b.global("last_writer", ValKind::U64, 1);
    let lock = b.mutex();
    for (tid, body) in bodies.iter().enumerate() {
        let body = body.clone();
        b.thread(move |ctx| {
            if poison && tid == 0 {
                // The order-sensitive snapshot, first thing.
                ctx.lock(lock);
                let seen = ctx.load(shared.at(0));
                ctx.store(last_writer.at(0), seen.wrapping_mul(3) + 1);
                ctx.unlock(lock);
            }
            if poison && tid == 1 {
                // The conflicting add, first thing.
                ctx.lock(lock);
                let cur = ctx.load(shared.at(0));
                ctx.store(shared.at(0), cur + 100);
                ctx.unlock(lock);
            }
            for op in &body {
                match *op {
                    CommutingOp::LockedAdd(v) => {
                        let cell = shared.at(v as usize % CELLS);
                        ctx.lock(lock);
                        let cur = ctx.load(cell);
                        ctx.store(cell, cur + 1 + u64::from(v));
                        ctx.unlock(lock);
                    }
                    CommutingOp::AtomicBump(v) => {
                        let _ = ctx.fetch_add(shared.at(v as usize % CELLS), 2);
                    }
                    CommutingOp::PrivateStore(v) => {
                        ctx.store(privates.at(tid), u64::from(v));
                    }
                }
            }
        });
    }
    b.build()
}

/// No false positives: commuting-only programs are deterministic
/// under every scheme.
#[test]
fn commuting_programs_are_always_deterministic() {
    check("commuting_programs_are_always_deterministic", 12, |g| {
        let bodies = gen_bodies(g);
        for scheme in [Scheme::HwInc, Scheme::SwInc, Scheme::SwTr] {
            let bodies = bodies.clone();
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(6))
                .expect("valid config")
                .check(move || build(&bodies, false))
                .unwrap();
            assert!(report.is_deterministic(), "{scheme:?}");
        }
    });
}

/// Sensitivity: snapshotting a mid-computation value (which depends
/// on how much the other threads have already added) is caught —
/// unless every schedule happens to order it identically, which the
/// campaign's randomization makes vanishingly rare for nonempty
/// bodies.
#[test]
fn order_sensitive_snapshot_is_caught() {
    check("order_sensitive_snapshot_is_caught", 12, |g| {
        let bodies = gen_bodies(g);
        let report = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(16))
            .expect("valid config")
            .check(move || build(&bodies, true))
            .unwrap();
        assert!(!report.is_deterministic());
    });
}

/// Agreement: the three schemes produce identical per-checkpoint
/// verdict profiles on arbitrary commuting programs with a poisoned
/// thread.
#[test]
fn schemes_agree_on_arbitrary_programs() {
    check("schemes_agree_on_arbitrary_programs", 12, |g| {
        let bodies = gen_bodies(g);
        let profile = |scheme| {
            let bodies = bodies.clone();
            let report = Checker::new(CheckerConfig::new(scheme).with_runs(6))
                .expect("valid config")
                .check(move || build(&bodies, true))
                .unwrap();
            report
                .distributions
                .iter()
                .map(|d| d.counts().to_vec())
                .collect::<Vec<_>>()
        };
        let hw = profile(Scheme::HwInc);
        assert_eq!(&hw, &profile(Scheme::SwInc));
        assert_eq!(&hw, &profile(Scheme::SwTr));
    });
}
