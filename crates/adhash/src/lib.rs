//! Incremental (additive) hashing of memory states.
//!
//! This crate implements the hashing substrate of *InstantCheck* (Nistor,
//! Marinov, Torrellas — MICRO 2010): a Bellare–Micciancio style
//! incrementally-computable hash over a program's memory state.
//!
//! If a memory state `S` holds values `v_1 … v_m` at addresses `a_1 … a_m`,
//! its *State Hash* is
//!
//! ```text
//! SH(S) = h(a_1, v_1) ⊕ h(a_2, v_2) ⊕ … ⊕ h(a_m, v_m)
//! ```
//!
//! where `h` is an ordinary 64-bit hash of one `(address, value)` pair and
//! `⊕` is 64-bit modular addition. Because modular addition is commutative
//! and associative, and has an inverse (`⊖`), the hash can be maintained
//! *incrementally*: a write of `new` over `old` at `a` updates the hash as
//! `SH ⊖ h(a, old) ⊕ h(a, new)` — no state traversal required. The same
//! algebra lets each thread accumulate its own partial sum (a *Thread
//! Hash*) that is merged into the State Hash only when a comparison is
//! needed, and lets individual locations be *excluded* from an existing
//! hash after the fact.
//!
//! # Example
//!
//! The running example from the paper (Figure 1/2): two threads perform
//! `G += L` under a lock in either order; the per-thread hashes differ but
//! their modular sum — the state hash — is identical.
//!
//! ```
//! use adhash::{IncHasher, Mix64Hasher};
//!
//! let g = 0x1000; // address of the global G, initially 2
//!
//! // Run (b): thread 0 writes 9, then thread 1 writes 12.
//! let mut th0 = IncHasher::new(Mix64Hasher::default());
//! let mut th1 = IncHasher::new(Mix64Hasher::default());
//! th0.on_write(g, 2, 9);
//! th1.on_write(g, 9, 12);
//! let sh_b = th0.sum() + th1.sum();
//!
//! // Run (c): thread 1 writes 5, then thread 0 writes 12.
//! let mut th0 = IncHasher::new(Mix64Hasher::default());
//! let mut th1 = IncHasher::new(Mix64Hasher::default());
//! th1.on_write(g, 2, 5);
//! th0.on_write(g, 5, 12);
//! let sh_c = th0.sum() + th1.sum();
//!
//! assert_eq!(sh_b, sh_c); // externally deterministic
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod crc;
mod fp;
mod group;
mod hasher;
mod incremental;

pub use batch::{hash_delta_run, DeltaBatch, DELTA_BATCH_CAPACITY};
pub use crc::Crc64Hasher;
pub use fp::FpRound;
pub use group::HashSum;
pub use hasher::{LocationHasher, Mix64Hasher};
pub use incremental::{hash_full_state, IncHasher, StateHash};
