//! The per-location hash function `h(addr, value)`.

use crate::group::HashSum;

/// A hash function for one `(address, value)` memory location pair.
///
/// This is the `h` of the paper (Section 2.2) — an ordinary, non-incremental
/// 64-bit hash (the paper suggests CRC; we use a stronger multiplicative
/// mixer). The address participates in the hash so that a permutation of
/// the same values over different locations yields a different state hash.
///
/// Implementations must be *pure*: the same `(addr, value)` pair must
/// always produce the same [`HashSum`] for the same hasher instance.
pub trait LocationHasher {
    /// Hashes one `(address, value)` pair into a group element.
    fn hash_location(&self, addr: u64, value: u64) -> HashSum;

    /// The group delta a write of `new` over `old` at `addr` applies to
    /// a state hash: `h(addr, new) ⊖ h(addr, old)`.
    ///
    /// This is the hot operation of the incremental schemes — every
    /// monitored store performs exactly one of these. The provided
    /// implementation calls [`hash_location`](LocationHasher::hash_location)
    /// twice; hashers whose address mixing is independent of the value
    /// (like [`Mix64Hasher`]) override it to share the address work
    /// between the two terms. Overrides must return *bit-identical*
    /// results to the default — the delta feeds cross-run hash
    /// comparisons, so any deviation is a correctness bug, not a
    /// quality-of-hash tradeoff.
    #[inline]
    fn hash_delta(&self, addr: u64, old: u64, new: u64) -> HashSum {
        self.hash_location(addr, new)
            .cancel(self.hash_location(addr, old))
    }
}

impl<H: LocationHasher + ?Sized> LocationHasher for &H {
    fn hash_location(&self, addr: u64, value: u64) -> HashSum {
        (**self).hash_location(addr, value)
    }

    fn hash_delta(&self, addr: u64, old: u64, new: u64) -> HashSum {
        (**self).hash_delta(addr, old, new)
    }
}

/// The default location hasher: a seeded SplitMix64-style finalizer over
/// the address and value bits.
///
/// Two full 64-bit avalanche rounds mix the address and the value so that
/// any single-bit change in either input flips roughly half of the output
/// bits. This is the statistical property the paper relies on for the
/// `1 / 2^64` false-negative bound.
///
/// # Example
///
/// ```
/// use adhash::{LocationHasher, Mix64Hasher};
///
/// let h = Mix64Hasher::default();
/// assert_ne!(h.hash_location(0x10, 1), h.hash_location(0x10, 2));
/// assert_ne!(h.hash_location(0x10, 1), h.hash_location(0x18, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mix64Hasher {
    seed: u64,
}

impl Mix64Hasher {
    /// Creates a hasher with an explicit seed.
    ///
    /// Different seeds give statistically independent hash functions; all
    /// runs being compared must of course use the *same* seed.
    pub const fn with_seed(seed: u64) -> Self {
        Mix64Hasher { seed }
    }

    /// Creates a hasher with the default seed.
    pub const fn new() -> Self {
        // Arbitrary odd constant; fixed so that hashes are stable across
        // processes and runs.
        Mix64Hasher::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// Returns this hasher's seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for Mix64Hasher {
    fn default() -> Self {
        Mix64Hasher::new()
    }
}

/// One round of the SplitMix64 finalizer (full 64-bit avalanche).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The value-mixing constant of [`Mix64Hasher::hash_location`].
const VALUE_SALT: u64 = 0x2545_f491_4f6c_dd1d;

impl Mix64Hasher {
    /// The value half of the hash, given the already-mixed address term
    /// `a = mix64(addr ^ seed)`.
    #[inline]
    fn finish(a: u64, value: u64) -> u64 {
        let v = mix64(value.wrapping_add(VALUE_SALT) ^ a.rotate_left(23));
        mix64(a ^ v)
    }
}

impl LocationHasher for Mix64Hasher {
    #[inline]
    fn hash_location(&self, addr: u64, value: u64) -> HashSum {
        let a = mix64(addr ^ self.seed);
        HashSum::from_raw(Self::finish(a, value))
    }

    // Fused write delta: the address term is a pure function of
    // `(addr, seed)`, so one `mix64` round serves both the old- and
    // new-value hashes — 5 avalanche rounds per monitored store instead
    // of 6, with bit-identical output to the two-call default.
    #[inline]
    fn hash_delta(&self, addr: u64, old: u64, new: u64) -> HashSum {
        let a = mix64(addr ^ self.seed);
        HashSum::from_raw(Self::finish(a, new).wrapping_sub(Self::finish(a, old)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let h = Mix64Hasher::default();
        assert_eq!(h.hash_location(1, 2), h.hash_location(1, 2));
    }

    #[test]
    fn seed_changes_output() {
        let a = Mix64Hasher::with_seed(1);
        let b = Mix64Hasher::with_seed(2);
        assert_ne!(a.hash_location(1, 2), b.hash_location(1, 2));
        assert_eq!(a.seed(), 1);
    }

    #[test]
    fn address_matters_value_matters() {
        let h = Mix64Hasher::default();
        // Swapping the values held at two addresses must change the hash —
        // this is why the paper hashes the address together with the value.
        let s1 = h.hash_location(0x10, 7) + h.hash_location(0x18, 3);
        let s2 = h.hash_location(0x10, 3) + h.hash_location(0x18, 7);
        assert_ne!(s1, s2);
    }

    #[test]
    fn no_collisions_in_small_dense_grid() {
        let h = Mix64Hasher::default();
        let mut seen = HashSet::new();
        for addr in 0..64u64 {
            for value in 0..64u64 {
                assert!(
                    seen.insert(h.hash_location(addr, value)),
                    "collision at ({addr}, {value})"
                );
            }
        }
    }

    #[test]
    fn avalanche_flips_many_bits() {
        let h = Mix64Hasher::default();
        let base = h.hash_location(0x1000, 42).as_raw();
        for bit in 0..64 {
            let flipped = h.hash_location(0x1000, 42 ^ (1u64 << bit)).as_raw();
            let diff = (base ^ flipped).count_ones();
            assert!(
                (12..=52).contains(&diff),
                "bit {bit}: only {diff} output bits changed"
            );
        }
    }

    #[test]
    fn trait_object_and_reference_usable() {
        let h = Mix64Hasher::default();
        let dyn_h: &dyn LocationHasher = &h;
        assert_eq!(dyn_h.hash_location(1, 1), h.hash_location(1, 1));
        assert_eq!(dyn_h.hash_delta(1, 1, 2), h.hash_delta(1, 1, 2));
        let by_ref = &h;
        assert_eq!(by_ref.hash_location(1, 1), h.hash_location(1, 1));
        assert_eq!(by_ref.hash_delta(1, 1, 2), h.hash_delta(1, 1, 2));
    }

    #[test]
    fn fused_delta_is_bit_identical_to_two_hashes() {
        // The incremental schemes' correctness rests on the fused
        // delta matching `h(addr, new) ⊖ h(addr, old)` exactly.
        for seed in [1u64, 0x9e37_79b9_7f4a_7c15, u64::MAX] {
            let h = Mix64Hasher::with_seed(seed);
            for i in 0..512u64 {
                let addr = 0x1000 + i.wrapping_mul(0x10001);
                let old = i.wrapping_mul(0x9e37);
                let new = old ^ (1 << (i % 64));
                let expected = h
                    .hash_location(addr, new)
                    .cancel(h.hash_location(addr, old));
                assert_eq!(
                    h.hash_delta(addr, old, new),
                    expected,
                    "({addr}, {old}, {new})"
                );
            }
        }
    }

    #[test]
    fn delta_of_identical_values_is_zero() {
        let h = Mix64Hasher::default();
        assert!(h.hash_delta(0x40, 7, 7).is_zero());
    }
}
