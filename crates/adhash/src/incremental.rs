//! Incremental maintenance of state hashes.

use std::fmt;

use crate::group::HashSum;
use crate::hasher::{LocationHasher, Mix64Hasher};

/// The distilled 64-bit summary of a full memory state.
///
/// A `StateHash` is the modular sum of the per-location hashes of every
/// live memory word (plus, when enabled, the output-stream hash). Two runs
/// whose final `StateHash`es differ are certainly in different states; two
/// runs with equal hashes are in the same state except with probability
/// `2^-64` per comparison.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Debug)]
pub struct StateHash(pub HashSum);

impl StateHash {
    /// The hash of the empty state.
    pub const ZERO: StateHash = StateHash(HashSum::ZERO);

    /// Returns the underlying group element.
    pub const fn sum(self) -> HashSum {
        self.0
    }
}

impl fmt::Display for StateHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<HashSum> for StateHash {
    fn from(sum: HashSum) -> Self {
        StateHash(sum)
    }
}

impl std::iter::Sum for StateHash {
    fn sum<I: Iterator<Item = StateHash>>(iter: I) -> StateHash {
        StateHash(iter.map(|s| s.0).sum())
    }
}

/// An incrementally maintained partial state hash (a *Thread Hash*).
///
/// Each thread (or each simulated core's MHM) owns one `IncHasher` and
/// feeds it every store it performs; the running [`HashSum`] is kept
/// up to date with core-local operations only. When a state comparison is
/// needed, the per-thread sums are merged (modular addition) into the
/// global [`StateHash`].
///
/// # Example
///
/// ```
/// use adhash::{IncHasher, Mix64Hasher, hash_full_state};
///
/// let hasher = Mix64Hasher::default();
/// let mut inc = IncHasher::new(hasher);
///
/// // The state starts as {0x10 ↦ 0, 0x18 ↦ 0}; seed it into the hash.
/// inc.add_location(0x10, 0);
/// inc.add_location(0x18, 0);
///
/// // The program writes 7 to 0x10 (over 0) and 3 to 0x18 (over 0).
/// inc.on_write(0x10, 0, 7);
/// inc.on_write(0x18, 0, 3);
///
/// // The incremental hash equals the from-scratch traversal hash.
/// let traversal = hash_full_state(&hasher, [(0x10u64, 7u64), (0x18, 3)]);
/// assert_eq!(inc.sum(), traversal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncHasher<H = Mix64Hasher> {
    sum: HashSum,
    hasher: H,
}

impl<H: LocationHasher> IncHasher<H> {
    /// Creates an incremental hasher with sum zero.
    pub fn new(hasher: H) -> Self {
        IncHasher {
            sum: HashSum::ZERO,
            hasher,
        }
    }

    /// Records a write of `new` over `old` at `addr`:
    /// `sum ⊖ h(addr, old) ⊕ h(addr, new)`.
    ///
    /// Applied as a single fused group delta
    /// ([`LocationHasher::hash_delta`]), which lets hashers share the
    /// address mixing between the two terms — the per-store hot path of
    /// both incremental schemes. The commutative group guarantees the
    /// fused form equals the two-operation form bit for bit.
    #[inline]
    pub fn on_write(&mut self, addr: u64, old: u64, new: u64) {
        self.sum = self.sum.combine(self.hasher.hash_delta(addr, old, new));
    }

    /// Adds the contribution of a location holding `value` (the paper's
    /// `plus_hash` instruction).
    #[inline]
    pub fn add_location(&mut self, addr: u64, value: u64) {
        self.sum = self.sum.combine(self.hasher.hash_location(addr, value));
    }

    /// Removes the contribution of a location holding `value` (the paper's
    /// `minus_hash` instruction).
    #[inline]
    pub fn remove_location(&mut self, addr: u64, value: u64) {
        self.sum = self.sum.cancel(self.hasher.hash_location(addr, value));
    }

    /// Returns the current running sum.
    #[inline]
    pub fn sum(&self) -> HashSum {
        self.sum
    }

    /// Overwrites the running sum (the paper's `restore_hash` instruction;
    /// `sum()` plays the role of `save_hash`).
    #[inline]
    pub fn set_sum(&mut self, sum: HashSum) {
        self.sum = sum;
    }

    /// Merges another partial sum into this one.
    #[inline]
    pub fn merge_sum(&mut self, other: HashSum) {
        self.sum = self.sum.combine(other);
    }

    /// Resets the running sum to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.sum = HashSum::ZERO;
    }

    /// Returns a reference to the underlying location hasher.
    pub fn hasher(&self) -> &H {
        &self.hasher
    }
}

/// Hashes a full state from scratch by traversal (the `SW-InstantCheck_Tr`
/// primitive): the modular sum of `h(addr, value)` over all live locations.
///
/// # Example
///
/// ```
/// use adhash::{hash_full_state, Mix64Hasher};
///
/// let h = Mix64Hasher::default();
/// let fwd = hash_full_state(&h, [(1u64, 10u64), (2, 20)]);
/// let rev = hash_full_state(&h, [(2u64, 20u64), (1, 10)]);
/// assert_eq!(fwd, rev); // traversal order is irrelevant
/// ```
/// Because the group is commutative, the traversal may be reassociated
/// freely; the implementation folds locations four at a time into
/// independent accumulators, so the per-location hash latencies overlap
/// instead of serializing through one running sum. This matters for the
/// `SW-InstantCheck_Tr` scheme, which pays this traversal at *every*
/// checkpoint over the whole live state.
pub fn hash_full_state<H, I>(hasher: &H, locations: I) -> HashSum
where
    H: LocationHasher,
    I: IntoIterator<Item = (u64, u64)>,
{
    let mut iter = locations.into_iter();
    let mut lanes = [HashSum::ZERO; 4];
    loop {
        // One chunk of four; partial trailing chunks fall out of the
        // loop with the lanes they filled.
        for lane in &mut lanes {
            match iter.next() {
                Some((addr, value)) => *lane = lane.combine(hasher.hash_location(addr, value)),
                None => {
                    return lanes.into_iter().sum();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Mix64Hasher {
        Mix64Hasher::default()
    }

    #[test]
    fn incremental_matches_traversal() {
        let mut inc = IncHasher::new(h());
        // initial state: three zeroed words
        for addr in [8u64, 16, 24] {
            inc.add_location(addr, 0);
        }
        inc.on_write(8, 0, 5);
        inc.on_write(16, 0, 6);
        inc.on_write(8, 5, 7); // overwrite
        let traversal = hash_full_state(&h(), [(8u64, 7u64), (16, 6), (24, 0)]);
        assert_eq!(inc.sum(), traversal);
    }

    #[test]
    fn thread_split_is_invisible() {
        // Figure 2: the split of writes across threads does not change the
        // merged sum.
        let g = 0x40u64;
        let mut a0 = IncHasher::new(h());
        let mut a1 = IncHasher::new(h());
        a0.on_write(g, 2, 9);
        a1.on_write(g, 9, 12);

        let mut b0 = IncHasher::new(h());
        let mut b1 = IncHasher::new(h());
        b1.on_write(g, 2, 5);
        b0.on_write(g, 5, 12);

        assert_ne!(a0.sum(), b0.sum()); // internal nondeterminism is visible…
        assert_eq!(a0.sum() + a1.sum(), b0.sum() + b1.sum()); // …but cancels
    }

    #[test]
    fn exclusion_deletes_a_location() {
        // Hash {a↦12, b↦3}; then delete a (initial value 2) as the paper
        // does: SH ⊕ h(a, initial) ⊖ h(a, current).
        let (a, b) = (0x100u64, 0x108u64);
        let mut inc = IncHasher::new(h());
        inc.add_location(a, 2);
        inc.add_location(b, 3);
        inc.on_write(a, 2, 12);

        inc.add_location(a, 2); // restore initial contribution
        inc.remove_location(a, 12); // drop current contribution

        // Equivalent to a state where `a` still holds its initial value.
        let expected = hash_full_state(&h(), [(a, 2u64), (b, 3)]);
        assert_eq!(inc.sum(), expected);
    }

    #[test]
    fn chunked_traversal_matches_serial_fold_at_every_length() {
        // The 4-lane chunking must be invisible: same sum as a strict
        // left fold, for lengths covering every partial-chunk shape.
        for len in 0..=17u64 {
            let locs: Vec<(u64, u64)> = (0..len).map(|i| (0x1000 + i * 8, i * 31 + 7)).collect();
            let serial = locs.iter().fold(HashSum::ZERO, |acc, &(a, v)| {
                acc.combine(h().hash_location(a, v))
            });
            assert_eq!(
                hash_full_state(&h(), locs.iter().copied()),
                serial,
                "len {len}"
            );
        }
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut inc = IncHasher::new(h());
        inc.on_write(1, 0, 1);
        let saved = inc.sum();
        inc.reset();
        assert_eq!(inc.sum(), HashSum::ZERO);
        inc.set_sum(saved);
        assert_eq!(inc.sum(), saved);
    }

    #[test]
    fn merge_sum_is_addition() {
        let mut a = IncHasher::new(h());
        let mut b = IncHasher::new(h());
        a.on_write(1, 0, 1);
        b.on_write(2, 0, 2);
        let total = a.sum() + b.sum();
        a.merge_sum(b.sum());
        assert_eq!(a.sum(), total);
    }

    #[test]
    fn state_hash_display_and_sum() {
        let s1 = StateHash::from(HashSum::from_raw(1));
        let s2 = StateHash::from(HashSum::from_raw(2));
        let total: StateHash = [s1, s2].into_iter().sum();
        assert_eq!(total.sum().as_raw(), 3);
        assert_eq!(format!("{}", StateHash::ZERO), "0000000000000000");
    }

    #[test]
    fn hasher_accessor() {
        let inc = IncHasher::new(Mix64Hasher::with_seed(77));
        assert_eq!(inc.hasher().seed(), 77);
    }
}
