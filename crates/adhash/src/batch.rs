//! Batched accumulation of incremental hash deltas.
//!
//! The per-store hot path of the incremental schemes applies one fused
//! [`hash_delta`](LocationHasher::hash_delta) per monitored store, folding
//! it immediately into a single running sum — every delta serializes
//! through that one accumulator. Because the group is commutative, the
//! deltas of a whole basic block (or scheduling quantum) may instead be
//! buffered and folded four at a time into independent accumulators, the
//! same chunked idiom [`hash_full_state`](crate::hash_full_state) uses for
//! traversal hashing. The sum is bit-identical by the group laws; only the
//! fold order changes.
//!
//! [`DeltaBatch`] is the buffering accumulator; [`hash_delta_run`] is the
//! fused variant for contiguous address runs (block frees, zero-fills)
//! where the addresses need not be materialized per entry.

use crate::group::HashSum;
use crate::hasher::LocationHasher;

/// Default capacity (in buffered store deltas) of a [`DeltaBatch`].
///
/// Sized to a scheduling quantum's worth of stores: large enough that the
/// 4-lane fold runs mostly on full chunks, small enough that the buffer
/// stays in L1.
pub const DELTA_BATCH_CAPACITY: usize = 64;

/// A bounded buffer of store deltas `(addr, old, new)` folded lazily.
///
/// Push each monitored store; when the batch [`is_full`](DeltaBatch::is_full)
/// (or at any point a current sum is needed — a checkpoint, a context
/// switch), [`flush`](DeltaBatch::flush) folds the buffered deltas through
/// four independent lanes and returns their combined [`HashSum`], emptying
/// the batch. The commutative group guarantees the result is bit-identical
/// to folding each delta eagerly, at every flush boundary.
///
/// # Example
///
/// ```
/// use adhash::{DeltaBatch, HashSum, IncHasher, Mix64Hasher};
///
/// let h = Mix64Hasher::default();
/// let mut batch = DeltaBatch::new();
/// let mut serial = IncHasher::new(h);
/// let mut batched = HashSum::ZERO;
///
/// for i in 0..100u64 {
///     serial.on_write(0x1000 + i, 0, i);
///     if batch.is_full() {
///         batched = batched.combine(batch.flush(&h));
///     }
///     batch.push(0x1000 + i, 0, i);
/// }
/// batched = batched.combine(batch.flush(&h));
/// assert_eq!(batched, serial.sum());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    entries: Vec<(u64, u64, u64)>,
}

impl DeltaBatch {
    /// Creates an empty batch with the default capacity.
    pub fn new() -> Self {
        DeltaBatch {
            entries: Vec::with_capacity(DELTA_BATCH_CAPACITY),
        }
    }

    /// Buffers the delta of a write of `new` over `old` at `addr`.
    ///
    /// The caller is expected to [`flush`](DeltaBatch::flush) when
    /// [`is_full`](DeltaBatch::is_full) reports `true`; pushing past the
    /// nominal capacity is not an error (the buffer grows), it merely
    /// defeats the purpose of the bound.
    #[inline]
    pub fn push(&mut self, addr: u64, old: u64, new: u64) {
        self.entries.push((addr, old, new));
    }

    /// Returns `true` once the batch holds [`DELTA_BATCH_CAPACITY`]
    /// entries and should be flushed.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= DELTA_BATCH_CAPACITY
    }

    /// Returns `true` if no deltas are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buffered deltas.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Folds all buffered deltas into one [`HashSum`] and empties the
    /// batch (the allocation is retained for reuse).
    ///
    /// Full chunks of four go to independent lane accumulators so the
    /// per-delta multiply chains overlap instead of serializing through
    /// one running sum; the trailing partial chunk folds serially. By
    /// commutativity the result equals the strict left fold bit for bit.
    pub fn flush<H: LocationHasher>(&mut self, hasher: &H) -> HashSum {
        let mut lanes = [HashSum::ZERO; 4];
        let mut chunks = self.entries.chunks_exact(4);
        for chunk in &mut chunks {
            for (lane, &(addr, old, new)) in lanes.iter_mut().zip(chunk) {
                *lane = lane.combine(hasher.hash_delta(addr, old, new));
            }
        }
        let mut sum: HashSum = lanes.into_iter().sum();
        for &(addr, old, new) in chunks.remainder() {
            sum = sum.combine(hasher.hash_delta(addr, old, new));
        }
        self.entries.clear();
        sum
    }
}

/// Folds the deltas of a contiguous run of word writes in one pass.
///
/// `pairs[i]` is the `(old, new)` pair written at word address `base + i`.
/// This is the fused multi-store primitive for operations that touch a
/// whole block at once — freeing a heap block (every word's contribution
/// is cancelled), zero-filling an allocation — without materializing the
/// address of every entry. Folds four lanes wide like
/// [`DeltaBatch::flush`]; the result is bit-identical to folding
/// [`hash_delta`](LocationHasher::hash_delta) per word.
///
/// # Example
///
/// ```
/// use adhash::{hash_delta_run, HashSum, LocationHasher, Mix64Hasher};
///
/// let h = Mix64Hasher::default();
/// let pairs = [(7u64, 0u64), (9, 0), (11, 0)];
/// let run = hash_delta_run(&h, 0x2000, &pairs);
/// let serial = pairs
///     .iter()
///     .enumerate()
///     .fold(HashSum::ZERO, |acc, (i, &(old, new))| {
///         acc.combine(h.hash_delta(0x2000 + i as u64, old, new))
///     });
/// assert_eq!(run, serial);
/// ```
pub fn hash_delta_run<H: LocationHasher>(hasher: &H, base: u64, pairs: &[(u64, u64)]) -> HashSum {
    let mut lanes = [HashSum::ZERO; 4];
    let mut chunks = pairs.chunks_exact(4);
    let mut i: u64 = 0;
    for chunk in &mut chunks {
        for (lane, &(old, new)) in lanes.iter_mut().zip(chunk) {
            *lane = lane.combine(hasher.hash_delta(base.wrapping_add(i), old, new));
            i += 1;
        }
    }
    let mut sum: HashSum = lanes.into_iter().sum();
    for &(old, new) in chunks.remainder() {
        sum = sum.combine(hasher.hash_delta(base.wrapping_add(i), old, new));
        i += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::Mix64Hasher;
    use crate::incremental::IncHasher;

    fn h() -> Mix64Hasher {
        Mix64Hasher::default()
    }

    /// A tiny deterministic LCG for the randomized interleaving tests.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn batched_fold_matches_serial_at_every_flush_boundary() {
        // Mirror of `chunked_traversal_matches_serial_fold_at_every_length`
        // for the incremental path: for every buffered length covering two
        // full batches plus every partial-chunk shape, the flush-boundary
        // placement must be invisible.
        for len in 0..=(2 * DELTA_BATCH_CAPACITY + 1) {
            let mut serial = IncHasher::new(h());
            let mut batch = DeltaBatch::new();
            let mut batched = HashSum::ZERO;
            for i in 0..len as u64 {
                let (addr, old, new) = (0x1000 + i * 8, i * 31, i * 31 + 7);
                serial.on_write(addr, old, new);
                if batch.is_full() {
                    batched = batched.combine(batch.flush(&h()));
                }
                batch.push(addr, old, new);
            }
            batched = batched.combine(batch.flush(&h()));
            assert_eq!(batched, serial.sum(), "len {len}");
            assert!(batch.is_empty());
        }
    }

    #[test]
    fn flush_of_empty_batch_is_identity() {
        let mut batch = DeltaBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.flush(&h()).is_zero());
    }

    #[test]
    fn randomized_interleavings_of_writes_frees_save_restore() {
        // Drive a serial IncHasher and a batched accumulator through the
        // same randomized operation stream — writes, frees (cancel to
        // zero, as the engine models deallocation), and save/restore of
        // the running sum — flushing at arbitrary points. Bit-for-bit
        // identity must hold at every save and at the end.
        for seed in 1..=8u64 {
            let mut rng = Lcg(seed);
            let mut serial = IncHasher::new(h());
            let mut batch = DeltaBatch::new();
            let mut batched = HashSum::ZERO;
            // Shadow memory so frees cancel the true current value.
            let words = 32u64;
            let mut mem = vec![0u64; words as usize];
            let mut saved: Option<(HashSum, HashSum)> = None;

            for _ in 0..4096 {
                let op = rng.next() % 16;
                let w = rng.next() % words;
                let addr = 0x4000 + w;
                match op {
                    0..=11 => {
                        // write
                        let new = rng.next();
                        let old = std::mem::replace(&mut mem[w as usize], new);
                        serial.on_write(addr, old, new);
                        if batch.is_full() {
                            batched = batched.combine(batch.flush(&h()));
                        }
                        batch.push(addr, old, new);
                    }
                    12 | 13 => {
                        // free: drop the word's contribution back to zero
                        let old = std::mem::replace(&mut mem[w as usize], 0);
                        serial.remove_location(addr, old);
                        serial.add_location(addr, 0);
                        if batch.is_full() {
                            batched = batched.combine(batch.flush(&h()));
                        }
                        batch.push(addr, old, 0);
                    }
                    14 => {
                        // save: both paths snapshot their sum (the batch
                        // must drain first — a snapshot is a sum use).
                        batched = batched.combine(batch.flush(&h()));
                        assert_eq!(batched, serial.sum(), "seed {seed} at save");
                        saved = Some((serial.sum(), batched));
                    }
                    _ => {
                        // restore, if something was saved
                        if let Some((s, b)) = saved {
                            serial.set_sum(s);
                            batch.flush(&h()); // discard buffered deltas
                            batched = b;
                            // Shadow memory no longer matches the restored
                            // hash; re-seed it as all zeroes plus nothing,
                            // i.e. keep going — identity only requires both
                            // paths to see the same stream, which they do.
                        }
                    }
                }
            }
            batched = batched.combine(batch.flush(&h()));
            assert_eq!(batched, serial.sum(), "seed {seed} at end");
        }
    }

    #[test]
    fn delta_run_matches_per_word_fold_at_every_length() {
        for len in 0..=17u64 {
            let pairs: Vec<(u64, u64)> = (0..len).map(|i| (i * 13 + 5, i * 29 + 1)).collect();
            let base = 0x1000_0000u64;
            let serial = pairs
                .iter()
                .enumerate()
                .fold(HashSum::ZERO, |acc, (i, &(old, new))| {
                    acc.combine(h().hash_delta(base + i as u64, old, new))
                });
            assert_eq!(hash_delta_run(&h(), base, &pairs), serial, "len {len}");
        }
    }

    #[test]
    fn delta_run_equals_batch_flush_of_same_deltas() {
        let base = 0x2000u64;
        let pairs: Vec<(u64, u64)> = (0..50u64).map(|i| (i, i ^ 0x5a5a)).collect();
        let mut batch = DeltaBatch::new();
        for (i, &(old, new)) in pairs.iter().enumerate() {
            batch.push(base + i as u64, old, new);
        }
        assert_eq!(batch.flush(&h()), hash_delta_run(&h(), base, &pairs));
    }
}
