//! Floating-point round-off before hashing.
//!
//! Parallel reductions execute non-associative FP operations in different
//! orders in different runs, so bit-exact comparison of FP results reports
//! nondeterminism even for algorithmically deterministic code. InstantCheck
//! therefore optionally *rounds off* FP values before hashing them
//! (Sections 3.1 and 5 of the paper). Two rounding families are offered to
//! programmers:
//!
//! * **mantissa masking** — zero the least-significant `M` mantissa bits;
//!   discards small *relative* differences;
//! * **decimal rounding** — floor (or round) to `N` decimal digits;
//!   discards small *absolute* differences (the paper's default rounds to
//!   the closest 0.001).

/// Number of explicit mantissa bits in an IEEE-754 `f64`.
const MANTISSA_BITS: u32 = 52;

/// A floating-point round-off policy applied to FP values before hashing.
///
/// # Example
///
/// ```
/// use adhash::FpRound;
///
/// // Two runs of a parallel sum differ only in the last ulps:
/// let run_a: f64 = 0.1 + 0.2 + 0.3;
/// let run_b: f64 = 0.3 + 0.2 + 0.1;
/// assert_ne!(run_a.to_bits(), run_b.to_bits()); // bit-exactly different
///
/// let round = FpRound::default(); // nearest 0.001, the paper's default
/// assert_eq!(round.apply(run_a).to_bits(), round.apply(run_b).to_bits());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpRound {
    /// No rounding: compare FP values bit by bit.
    BitExact,
    /// Zero out the `bits` least-significant mantissa bits (relative
    /// tolerance of roughly `2^(bits-52)`).
    MaskMantissa {
        /// How many low mantissa bits to clear (0..=52).
        bits: u32,
    },
    /// Take the floor to a number with only `digits` decimal digits
    /// (absolute tolerance of `10^-digits`); the x86-rounding-style
    /// alternative of Section 3.1.
    FloorDecimal {
        /// How many decimal digits to keep.
        digits: u32,
    },
    /// Round to the *closest* multiple of `10^-digits` — the paper's
    /// default behaviour ("rounds to the closest 0.001").
    NearestDecimal {
        /// How many decimal digits to keep.
        digits: u32,
    },
}

impl Default for FpRound {
    /// The paper's default: round to the closest `0.001`.
    fn default() -> Self {
        FpRound::NearestDecimal { digits: 3 }
    }
}

impl FpRound {
    /// Returns `true` if this policy leaves values untouched.
    pub fn is_bit_exact(self) -> bool {
        matches!(self, FpRound::BitExact) || matches!(self, FpRound::MaskMantissa { bits: 0 })
    }

    /// Applies the round-off to one `f64` value.
    ///
    /// Non-finite values (NaN, ±∞) are returned unchanged: rounding exists
    /// to absorb last-ulp noise in ordinary arithmetic, and masking the
    /// mantissa of a NaN could silently turn it into an infinity.
    /// Decimal rounding also leaves values whose magnitude is too large to
    /// scale without overflow (≥ 2⁵³ · 10ᵈⁱᵍⁱᵗˢ) unchanged — such values
    /// have no fractional digits to round anyway.
    pub fn apply(self, x: f64) -> f64 {
        if !x.is_finite() {
            return x;
        }
        match self {
            FpRound::BitExact => x,
            FpRound::MaskMantissa { bits } => {
                let bits = bits.min(MANTISSA_BITS);
                if bits == 0 {
                    return x;
                }
                let mask = !((1u64 << bits) - 1);
                f64::from_bits(x.to_bits() & mask)
            }
            FpRound::FloorDecimal { digits } => Self::decimal(x, digits, f64::floor),
            FpRound::NearestDecimal { digits } => Self::decimal(x, digits, f64::round),
        }
    }

    fn decimal(x: f64, digits: u32, op: fn(f64) -> f64) -> f64 {
        let scale = 10f64.powi(digits.min(18) as i32);
        let scaled = x * scale;
        // Values this large have integral ulps already; rounding is a no-op
        // and the scaled arithmetic would lose precision, so skip it.
        if scaled.abs() >= 2f64.powi(53) {
            return x;
        }
        // If `x` is already exactly on the decimal grid (it is some `q /
        // scale`), leave it alone. Without this, re-applying floor-rounding
        // to its own output could step down one more grid cell whenever
        // `(q / scale) * scale` lands just below `q`.
        if scaled.round() / scale == x {
            return x;
        }
        op(scaled) / scale
    }

    /// Applies the round-off to a value stored as raw `f64` bits, returning
    /// raw bits — the form used when hashing memory words.
    ///
    /// Canonicalizes `-0.0` to `+0.0` after rounding so that sums that
    /// differ only in the sign of a zero compare equal.
    pub fn apply_bits(self, bits: u64) -> u64 {
        if self.is_bit_exact() {
            return bits;
        }
        let rounded = self.apply(f64::from_bits(bits));
        if rounded == 0.0 {
            return 0f64.to_bits();
        }
        rounded.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_exact_is_identity() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY] {
            let b = v.to_bits();
            assert_eq!(FpRound::BitExact.apply_bits(b), b);
        }
        assert!(FpRound::BitExact.is_bit_exact());
        assert!(FpRound::MaskMantissa { bits: 0 }.is_bit_exact());
        assert!(!FpRound::default().is_bit_exact());
    }

    #[test]
    fn default_absorbs_reduction_noise() {
        let round = FpRound::default();
        let a: f64 = 0.1 + 0.2 + 0.3;
        let b: f64 = 0.3 + 0.2 + 0.1;
        assert_ne!(a.to_bits(), b.to_bits());
        assert_eq!(round.apply_bits(a.to_bits()), round.apply_bits(b.to_bits()));
    }

    #[test]
    fn mask_mantissa_absorbs_relative_noise() {
        let round = FpRound::MaskMantissa { bits: 16 };
        let a: f64 = 1.0e9 + 0.0001;
        let b: f64 = 1.0e9 + 0.0002;
        assert_ne!(a.to_bits(), b.to_bits());
        assert_eq!(round.apply(a).to_bits(), round.apply(b).to_bits());
        // …but keeps large relative differences apart.
        assert_ne!(round.apply(1.0e9).to_bits(), round.apply(2.0e9).to_bits());
    }

    #[test]
    fn mask_mantissa_clamps_width() {
        let round = FpRound::MaskMantissa { bits: 99 };
        // Clamped to the full 52-bit mantissa: only sign+exponent survive.
        assert_eq!(round.apply(1.999), 1.0);
        assert_eq!(round.apply(-1.999), -1.0);
    }

    #[test]
    fn floor_decimal_keeps_digits() {
        let round = FpRound::FloorDecimal { digits: 3 };
        assert_eq!(round.apply(1.23456), 1.234);
        assert_eq!(round.apply(-1.23456), -1.235); // floor, not truncation
        assert_eq!(round.apply(2.0), 2.0);
    }

    #[test]
    fn nearest_decimal_rounds_both_ways() {
        let round = FpRound::NearestDecimal { digits: 3 };
        assert_eq!(round.apply(1.2344), 1.234);
        assert_eq!(round.apply(1.2346), 1.235);
    }

    #[test]
    fn non_finite_untouched() {
        for round in [
            FpRound::MaskMantissa { bits: 8 },
            FpRound::FloorDecimal { digits: 3 },
            FpRound::NearestDecimal { digits: 3 },
        ] {
            assert!(round.apply(f64::NAN).is_nan());
            assert_eq!(round.apply(f64::INFINITY), f64::INFINITY);
            assert_eq!(round.apply(f64::NEG_INFINITY), f64::NEG_INFINITY);
        }
    }

    #[test]
    fn huge_magnitudes_untouched_by_decimal_rounding() {
        let round = FpRound::NearestDecimal { digits: 3 };
        let huge = 1.0e300;
        assert_eq!(round.apply(huge), huge);
        assert_eq!(round.apply(-huge), -huge);
    }

    #[test]
    fn negative_zero_canonicalized() {
        let round = FpRound::NearestDecimal { digits: 3 };
        assert_eq!(
            round.apply_bits((-0.0f64).to_bits()),
            round.apply_bits(0.0f64.to_bits())
        );
        // Small negatives that round to zero also canonicalize.
        assert_eq!(round.apply_bits((-1.0e-9f64).to_bits()), 0.0f64.to_bits());
    }

    #[test]
    fn rounding_is_idempotent() {
        for round in [
            FpRound::MaskMantissa { bits: 12 },
            FpRound::FloorDecimal { digits: 3 },
            FpRound::NearestDecimal { digits: 3 },
        ] {
            for v in [0.0, 1.23456789, -987.654321, 1e-8, 12345.678] {
                let once = round.apply(v);
                let twice = round.apply(once);
                assert_eq!(once.to_bits(), twice.to_bits(), "{round:?} on {v}");
            }
        }
    }
}
