//! The commutative group `(u64, +ᵐᵒᵈ)` underlying the incremental hash.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// An element of the additive group used to combine per-location hashes.
///
/// `HashSum` wraps a `u64` and uses *wrapping* (modular) addition as the
/// group operation `⊕` of the paper, with wrapping subtraction as its
/// inverse `⊖`. The group laws (commutativity, associativity, inverses)
/// are what make the state hash order-independent and incrementally
/// maintainable.
///
/// # Example
///
/// ```
/// use adhash::HashSum;
///
/// let a = HashSum::from_raw(u64::MAX);
/// let b = HashSum::from_raw(5);
/// assert_eq!(a + b, b + a);          // commutative
/// assert_eq!((a + b) - b, a);        // invertible
/// assert_eq!(a + HashSum::ZERO, a);  // identity
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct HashSum(u64);

impl HashSum {
    /// The group identity (the hash of the empty state).
    pub const ZERO: HashSum = HashSum(0);

    /// Wraps a raw 64-bit value as a group element.
    ///
    /// ```
    /// use adhash::HashSum;
    /// assert_eq!(HashSum::from_raw(7).as_raw(), 7);
    /// ```
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        HashSum(raw)
    }

    /// Returns the raw 64-bit value of this group element.
    #[inline]
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// The group operation `⊕` (64-bit modular addition).
    #[inline]
    #[must_use]
    pub const fn combine(self, other: HashSum) -> HashSum {
        HashSum(self.0.wrapping_add(other.0))
    }

    /// The inverse operation `⊖` (64-bit modular subtraction).
    #[inline]
    #[must_use]
    pub const fn cancel(self, other: HashSum) -> HashSum {
        HashSum(self.0.wrapping_sub(other.0))
    }

    /// Returns `true` if this is the identity element.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for HashSum {
    type Output = HashSum;
    #[inline]
    fn add(self, rhs: HashSum) -> HashSum {
        self.combine(rhs)
    }
}

impl AddAssign for HashSum {
    #[inline]
    fn add_assign(&mut self, rhs: HashSum) {
        *self = self.combine(rhs);
    }
}

impl Sub for HashSum {
    type Output = HashSum;
    #[inline]
    fn sub(self, rhs: HashSum) -> HashSum {
        self.cancel(rhs)
    }
}

impl SubAssign for HashSum {
    #[inline]
    fn sub_assign(&mut self, rhs: HashSum) {
        *self = self.cancel(rhs);
    }
}

impl Neg for HashSum {
    type Output = HashSum;
    #[inline]
    fn neg(self) -> HashSum {
        HashSum(0u64.wrapping_sub(self.0))
    }
}

impl Sum for HashSum {
    fn sum<I: Iterator<Item = HashSum>>(iter: I) -> HashSum {
        iter.fold(HashSum::ZERO, HashSum::combine)
    }
}

impl<'a> Sum<&'a HashSum> for HashSum {
    fn sum<I: Iterator<Item = &'a HashSum>>(iter: I) -> HashSum {
        iter.copied().sum()
    }
}

impl fmt::Debug for HashSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HashSum({:#018x})", self.0)
    }
}

impl fmt::Display for HashSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::LowerHex for HashSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for HashSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for HashSum {
    fn from(raw: u64) -> Self {
        HashSum(raw)
    }
}

impl From<HashSum> for u64 {
    fn from(sum: HashSum) -> u64 {
        sum.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_laws() {
        let a = HashSum::from_raw(0xdead_beef_cafe_f00d);
        assert_eq!(a + HashSum::ZERO, a);
        assert_eq!(HashSum::ZERO + a, a);
        assert_eq!(a - a, HashSum::ZERO);
        assert_eq!(a + (-a), HashSum::ZERO);
        assert!(HashSum::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn wrapping_behaviour() {
        let a = HashSum::from_raw(u64::MAX);
        let b = HashSum::from_raw(2);
        assert_eq!((a + b).as_raw(), 1);
        assert_eq!((HashSum::ZERO - b).as_raw(), u64::MAX - 1);
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut acc = HashSum::from_raw(10);
        acc += HashSum::from_raw(32);
        assert_eq!(acc, HashSum::from_raw(42));
        acc -= HashSum::from_raw(2);
        assert_eq!(acc, HashSum::from_raw(40));
    }

    #[test]
    fn sum_of_iterator() {
        let parts = [
            HashSum::from_raw(1),
            HashSum::from_raw(2),
            HashSum::from_raw(3),
        ];
        let total: HashSum = parts.iter().sum();
        assert_eq!(total, HashSum::from_raw(6));
        let total2: HashSum = parts.into_iter().sum();
        assert_eq!(total2, HashSum::from_raw(6));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let z = HashSum::ZERO;
        assert!(!format!("{z:?}").is_empty());
        assert_eq!(format!("{z}"), "0000000000000000");
        assert_eq!(format!("{:x}", HashSum::from_raw(255)), "ff");
        assert_eq!(format!("{:X}", HashSum::from_raw(255)), "FF");
    }

    #[test]
    fn from_into_roundtrip() {
        let s: HashSum = 99u64.into();
        let raw: u64 = s.into();
        assert_eq!(raw, 99);
    }
}
