//! A CRC-64 location hasher — the paper's suggested `h` ("e.g., computed
//! by CRC"), provided alongside the default multiplicative mixer.
//!
//! CRC is attractive in hardware (a small LFSR-style circuit); its
//! weakness as a state hash is linearity: `crc(a ⊻ b) = crc(a) ⊻ crc(b)
//! ⊻ crc(0)`, so an adversarial pair of states could collide. For
//! *testing* (the paper's setting) the statistical behaviour is what
//! matters, and the modular-addition combination breaks plain XOR
//! cancellation anyway. [`Crc64Hasher`] uses CRC-64/ECMA-182 over the 16
//! address+value bytes, with the address additionally folded into the
//! initial value so that `h(a, v)` is not linear in `(a, v)` as a pair.

use crate::group::HashSum;
use crate::hasher::LocationHasher;

/// CRC-64/ECMA-182 polynomial (normal form).
const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// Builds the 256-entry CRC table at compile time.
const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u64) << 56;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// A CRC-64 based [`LocationHasher`].
///
/// # Example
///
/// ```
/// use adhash::{Crc64Hasher, IncHasher, hash_full_state};
///
/// // The incremental/traversal equivalence holds for any hasher.
/// let h = Crc64Hasher::new();
/// let mut inc = IncHasher::new(h);
/// inc.add_location(0x10, 0);
/// inc.on_write(0x10, 0, 7);
/// assert_eq!(inc.sum(), hash_full_state(&h, [(0x10u64, 7u64)]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Crc64Hasher;

impl Crc64Hasher {
    /// Creates the hasher.
    pub const fn new() -> Self {
        Crc64Hasher
    }

    fn crc64(init: u64, bytes: &[u8]) -> u64 {
        let mut crc = init;
        for &b in bytes {
            let idx = ((crc >> 56) as u8 ^ b) as usize;
            crc = (crc << 8) ^ TABLE[idx];
        }
        crc
    }
}

impl LocationHasher for Crc64Hasher {
    fn hash_location(&self, addr: u64, value: u64) -> HashSum {
        // Fold the address into the init value (breaks pairwise
        // linearity), then CRC the 16 bytes.
        let init = addr.rotate_left(17) ^ 0xFFFF_FFFF_FFFF_FFFF;
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&addr.to_le_bytes());
        bytes[8..].copy_from_slice(&value.to_le_bytes());
        HashSum::from_raw(Self::crc64(init, &bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_input_sensitive() {
        let h = Crc64Hasher::new();
        assert_eq!(h.hash_location(1, 2), h.hash_location(1, 2));
        assert_ne!(h.hash_location(1, 2), h.hash_location(1, 3));
        assert_ne!(h.hash_location(1, 2), h.hash_location(2, 2));
    }

    #[test]
    fn known_crc_vector() {
        // CRC-64/ECMA-182 of "123456789" with init 0 is 0x6C40DF5F0B497347.
        assert_eq!(Crc64Hasher::crc64(0, b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn no_collisions_in_small_dense_grid() {
        let h = Crc64Hasher::new();
        let mut seen = HashSet::new();
        for addr in 0..48u64 {
            for value in 0..48u64 {
                assert!(
                    seen.insert(h.hash_location(addr, value)),
                    "collision at ({addr}, {value})"
                );
            }
        }
    }

    #[test]
    fn value_permutations_across_addresses_differ() {
        let h = Crc64Hasher::new();
        let s1 = h.hash_location(0x10, 7) + h.hash_location(0x18, 3);
        let s2 = h.hash_location(0x10, 3) + h.hash_location(0x18, 7);
        assert_ne!(s1, s2);
    }

    #[test]
    fn single_bit_flips_change_many_output_bits() {
        let h = Crc64Hasher::new();
        let base = h.hash_location(0x1000, 42).as_raw();
        let mut total = 0u32;
        for bit in 0..64 {
            let flipped = h.hash_location(0x1000, 42 ^ (1u64 << bit)).as_raw();
            total += (base ^ flipped).count_ones();
        }
        let avg = total / 64;
        assert!((20..=44).contains(&avg), "average flip weight {avg}");
    }
}
