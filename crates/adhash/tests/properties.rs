//! Property-based tests for the incremental-hash algebra.
//!
//! These encode the invariants that make InstantCheck sound (DESIGN.md §6):
//! incremental == from-scratch, permutation invariance, per-thread
//! decomposition, exact exclusion, and FP-rounding idempotence.

use std::collections::BTreeMap;

use adhash::{hash_full_state, FpRound, HashSum, IncHasher, LocationHasher, Mix64Hasher};
use minicheck::{check, Gen};

/// A bounded write: a small address space keeps overwrites frequent.
fn gen_write(g: &mut Gen) -> (u64, u64) {
    (g.u64_in(0, 32), g.u64())
}

/// Applies a write sequence to a model memory (all words start at 0) and
/// returns the final state.
fn replay(writes: &[(u64, u64)]) -> BTreeMap<u64, u64> {
    let mut mem: BTreeMap<u64, u64> = (0..32).map(|a| (a, 0)).collect();
    for &(addr, value) in writes {
        mem.insert(addr, value);
    }
    mem
}

fn state_hash(mem: &BTreeMap<u64, u64>) -> HashSum {
    hash_full_state(&Mix64Hasher::default(), mem.iter().map(|(&a, &v)| (a, v)))
}

/// Incrementally maintained hash equals the from-scratch traversal
/// hash for any write sequence.
#[test]
fn incremental_equals_traversal() {
    check("incremental_equals_traversal", 64, |g| {
        let writes = g.vec_of(0, 200, gen_write);
        let mut mem: BTreeMap<u64, u64> = (0..32).map(|a| (a, 0)).collect();
        let mut inc = IncHasher::new(Mix64Hasher::default());
        for (&a, &v) in &mem {
            inc.add_location(a, v);
        }
        for &(addr, value) in &writes {
            let old = mem.insert(addr, value).expect("address in range");
            inc.on_write(addr, old, value);
        }
        assert_eq!(inc.sum(), state_hash(&mem));
    });
}

/// Splitting the write stream across any number of "threads" (each with
/// its own partial hash) and merging yields the same state hash, for
/// any assignment of writes to threads — the Figure 2 property.
#[test]
fn thread_decomposition() {
    check("thread_decomposition", 64, |g| {
        let writes = g.vec_of(1, 200, gen_write);
        let assignment = g.vec_of(1, 200, |g| g.usize_in(0, 8));
        let mut mem: BTreeMap<u64, u64> = (0..32).map(|a| (a, 0)).collect();
        let mut threads = [IncHasher::new(Mix64Hasher::default()); 8];
        let mut reference = IncHasher::new(Mix64Hasher::default());
        for (&a, &v) in &mem {
            reference.add_location(a, v);
        }
        for (i, &(addr, value)) in writes.iter().enumerate() {
            let tid = assignment[i % assignment.len()];
            let old = mem.insert(addr, value).expect("address in range");
            threads[tid].on_write(addr, old, value);
            reference.on_write(addr, old, value);
        }
        let merged: HashSum = threads.iter().map(|t| t.sum()).sum::<HashSum>() + {
            // seed contribution lives in `reference` only; rebuild it
            let mut seed = IncHasher::new(Mix64Hasher::default());
            for a in 0..32u64 {
                seed.add_location(a, 0);
            }
            seed.sum()
        };
        assert_eq!(merged, reference.sum());
    });
}

/// Two different interleavings that reach the same final memory state
/// produce the same merged hash (external determinism is detected as
/// such), even though per-thread hashes may differ.
#[test]
fn permutation_of_updates_is_invisible() {
    check("permutation_of_updates_is_invisible", 64, |g| {
        // Run A applies writes in order; run B applies a rotation of the
        // writes — same multiset of per-address last writes or not.
        let mut writes = g.vec_of(1, 50, gen_write);
        let final_state = replay(&writes);

        let mut inc_a = IncHasher::new(Mix64Hasher::default());
        let mut mem_a: BTreeMap<u64, u64> = (0..32).map(|a| (a, 0)).collect();
        for (&a, &v) in &mem_a.clone() {
            inc_a.add_location(a, v);
        }
        for &(addr, value) in &writes {
            let old = mem_a.insert(addr, value).unwrap();
            inc_a.on_write(addr, old, value);
        }

        let mid = writes.len() / 2;
        writes.rotate_left(mid);
        let mut inc_b = IncHasher::new(Mix64Hasher::default());
        let mut mem_b: BTreeMap<u64, u64> = (0..32).map(|a| (a, 0)).collect();
        for (&a, &v) in &mem_b.clone() {
            inc_b.add_location(a, v);
        }
        for &(addr, value) in &writes {
            let old = mem_b.insert(addr, value).unwrap();
            inc_b.on_write(addr, old, value);
        }

        if mem_b == final_state {
            assert_eq!(inc_a.sum(), inc_b.sum());
        } else {
            assert_ne!(&mem_a, &mem_b);
        }
    });
}

/// Excluding a location (plus_hash initial / minus_hash current) yields
/// exactly the hash of the state with that location reset to its
/// initial value.
#[test]
fn exclusion_is_exact() {
    check("exclusion_is_exact", 64, |g| {
        let writes = g.vec_of(1, 100, gen_write);
        let victim = g.u64_in(0, 32);
        let mut mem: BTreeMap<u64, u64> = (0..32).map(|a| (a, 0)).collect();
        let mut inc = IncHasher::new(Mix64Hasher::default());
        for (&a, &v) in &mem {
            inc.add_location(a, v);
        }
        for &(addr, value) in &writes {
            let old = mem.insert(addr, value).unwrap();
            inc.on_write(addr, old, value);
        }
        // Delete `victim` from the hash.
        inc.add_location(victim, 0); // initial value
        inc.remove_location(victim, mem[&victim]); // current value

        let mut censored = mem.clone();
        censored.insert(victim, 0);
        assert_eq!(inc.sum(), state_hash(&censored));
    });
}

/// Every rounding mode is idempotent on arbitrary finite doubles.
#[test]
fn fp_rounding_idempotent() {
    check("fp_rounding_idempotent", 128, |g| {
        let x = g.finite_f64();
        let bits = g.u64_in(0, 53) as u32;
        let digits = g.u64_in(0, 10) as u32;
        for round in [
            FpRound::MaskMantissa { bits },
            FpRound::FloorDecimal { digits },
            FpRound::NearestDecimal { digits },
        ] {
            let once = round.apply_bits(x.to_bits());
            let twice = round.apply_bits(once);
            assert_eq!(once, twice, "{round:?} on {x}");
        }
    });
}

/// `apply_bits` never produces a distinction that `apply` would not:
/// equal rounded values imply equal hashed bits.
#[test]
fn apply_bits_consistent_with_apply() {
    check("apply_bits_consistent_with_apply", 128, |g| {
        let (x, y) = (g.finite_f64(), g.finite_f64());
        let round = FpRound::default();
        if round.apply(x) == round.apply(y) {
            assert_eq!(round.apply_bits(x.to_bits()), round.apply_bits(y.to_bits()));
        }
    });
}

/// Group laws for HashSum under arbitrary raw values.
#[test]
fn group_laws() {
    check("group_laws", 128, |g| {
        let (a, b, c) = (
            HashSum::from_raw(g.u64()),
            HashSum::from_raw(g.u64()),
            HashSum::from_raw(g.u64()),
        );
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!((a + b) - b, a);
        assert_eq!(a + (-a), HashSum::ZERO);
    });
}

/// Distinct single-location states virtually never collide.
#[test]
fn single_location_injective_in_practice() {
    check("single_location_injective_in_practice", 128, |g| {
        let (a1, v1, a2, v2) = (g.u64(), g.u64(), g.u64(), g.u64());
        if (a1, v1) == (a2, v2) {
            return;
        }
        let h = Mix64Hasher::default();
        assert_ne!(h.hash_location(a1, v1), h.hash_location(a2, v2));
    });
}
