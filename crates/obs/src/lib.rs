//! Deterministic observability for the InstantCheck reproduction.
//!
//! Two facilities, both dependency-free:
//!
//! * **Metrics** ([`Registry`]): named monotonic [`Counter`]s and
//!   log2-bucket [`Histogram`]s with a [`Snapshot`]/delta API. Handles
//!   are atomics behind `Arc`s, so incrementing is lock-free.
//! * **Event traces** ([`EventSink`]): spans and instant events keyed
//!   by *simulated step count*, not wall clock, so a trace is a pure
//!   function of (workload, scheduler seed) and two identical campaigns
//!   serialize to byte-identical files. Wall-clock stamps are opt-in
//!   ([`MemorySink::with_wall_clock`]) and excluded from the
//!   determinism contract.
//!
//! On top of the trace format sit [`profile::CampaignProfile`] (the
//! analysis behind `icprof`) and [`chrome::chrome_trace`]
//! (`chrome://tracing` export).
//!
//! A third facility, [`telemetry`], is the deliberate opposite of the
//! first two: a **wall-clock side-channel** (lock-wait histograms,
//! gauges, worker lane spans, heartbeat JSONL) that never enters the
//! deterministic artifacts.
//!
//! The default sink is [`NoopSink`]; emitters check
//! [`EventSink::enabled`] before building events, so observability off
//! means near-zero overhead.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod telemetry;
pub mod trace;

pub use chrome::{chrome_lanes, chrome_trace};
pub use metrics::{Counter, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use profile::{CacheCounters, CampaignProfile, Divergence, RunProfile};
pub use telemetry::{prometheus_text, Gauge, Heartbeat, LaneSpan, Telemetry, TelemetrySnapshot};
pub use trace::{
    events_to_jsonl, parse_jsonl, ArgValue, BufferSink, Event, EventSink, MemorySink, Name,
    NoopSink, Phase, CONTROL_TRACK,
};
