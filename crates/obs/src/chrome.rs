//! Chrome trace-event export (`chrome://tracing` / Perfetto loadable).
//!
//! Mapping: `pid` is the campaign run index (taken from the enclosing
//! `run` span), `tid` is the simulated thread (track), and `ts` is the
//! simulated step count interpreted as microseconds. The output is
//! deterministic for a deterministic input trace.

use std::fmt::Write as _;

use crate::json;
use crate::trace::{ArgValue, Event, Phase, CONTROL_TRACK};

/// `tid` used for campaign-level control events in the Chrome output
/// (Chrome renders `u32::MAX` poorly, so control events get their own
/// small lane).
const CONTROL_TID: u32 = 0;

/// Converts a trace to Chrome trace-event JSON (object form with a
/// `traceEvents` array).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut pid: u64 = 0;
    let mut max_ts: u64 = 0;
    for ev in events {
        // Track the current run index so in-run events inherit it.
        if ev.name == "run" && ev.phase == Phase::Begin {
            if let Some(run) = ev.arg_u64("run") {
                pid = run;
                max_ts = 0;
            }
        }
        max_ts = max_ts.max(ev.step);
        // A failed run's `run`-End is emitted without a final step
        // count; clamp so the span still closes after its children.
        let ts = if ev.phase == Phase::End {
            ev.step.max(max_ts)
        } else {
            ev.step
        };
        if !first {
            out.push(',');
        }
        first = false;
        let ph = match ev.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        let tid = if ev.track == CONTROL_TRACK {
            CONTROL_TID
        } else {
            // Simulated threads start at lane 1; lane 0 is control.
            ev.track + 1
        };
        out.push_str("{\"name\":");
        json::write_str(&mut out, &ev.name);
        let _ = write!(
            out,
            ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
        );
        if ev.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            match v {
                ArgValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::Str(s) => json::write_str(&mut out, s),
            }
        }
        if let Some(ns) = ev.wall_ns {
            if !ev.args.is_empty() {
                out.push(',');
            }
            let _ = write!(out, "\"wall_ns\":{ns}");
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_valid_json() {
        let events = vec![
            Event::begin(0, CONTROL_TRACK, "run").with_arg("run", 2u64),
            Event::instant(5, 1, "sched").with_arg("tid", 1u32),
            Event::end(9, CONTROL_TRACK, "run").with_arg("ok", true),
        ];
        let text = chrome_trace(&events);
        let v = json::parse(&text).unwrap();
        let arr = match v.get("traceEvents").unwrap() {
            json::Value::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 3);
        // All events inherit the run's pid.
        for e in arr {
            assert_eq!(e.get("pid").unwrap().as_u64(), Some(2));
        }
        assert_eq!(arr[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(arr[1].get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(arr[1].get("ts").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn failed_run_end_is_clamped_to_last_step() {
        let events = vec![
            Event::begin(0, CONTROL_TRACK, "run").with_arg("run", 0u64),
            Event::instant(42, 0, "fault").with_arg("kind", "alloc-fail"),
            // Failure: checker does not know the final step, emits 0.
            Event::end(0, CONTROL_TRACK, "run").with_arg("ok", false),
        ];
        let text = chrome_trace(&events);
        let v = json::parse(&text).unwrap();
        let arr = match v.get("traceEvents").unwrap() {
            json::Value::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[2].get("ts").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn deterministic_output() {
        let events = vec![Event::instant(1, 0, "checkpoint").with_arg("seq", 0u64)];
        assert_eq!(chrome_trace(&events), chrome_trace(&events));
    }
}
