//! Chrome trace-event export (`chrome://tracing` / Perfetto loadable).
//!
//! Mapping: `pid` is the campaign run index (taken from the enclosing
//! `run` span), `tid` is the simulated thread (track), and `ts` is the
//! simulated step count interpreted as microseconds. The output is
//! deterministic for a deterministic input trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json;
use crate::telemetry::LaneSpan;
use crate::trace::{ArgValue, Event, Phase, CONTROL_TRACK};

/// `tid` used for campaign-level control events in the Chrome output
/// (Chrome renders `u32::MAX` poorly, so control events get their own
/// small lane).
const CONTROL_TID: u32 = 0;

/// Converts a trace to Chrome trace-event JSON (object form with a
/// `traceEvents` array).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut pid: u64 = 0;
    let mut max_ts: u64 = 0;
    for ev in events {
        // Track the current run index so in-run events inherit it.
        if ev.name == "run" && ev.phase == Phase::Begin {
            if let Some(run) = ev.arg_u64("run") {
                pid = run;
                max_ts = 0;
            }
        }
        max_ts = max_ts.max(ev.step);
        // A failed run's `run`-End is emitted without a final step
        // count; clamp so the span still closes after its children.
        let ts = if ev.phase == Phase::End {
            ev.step.max(max_ts)
        } else {
            ev.step
        };
        if !first {
            out.push(',');
        }
        first = false;
        let ph = match ev.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        let tid = if ev.track == CONTROL_TRACK {
            CONTROL_TID
        } else {
            // Simulated threads start at lane 1; lane 0 is control.
            ev.track + 1
        };
        out.push_str("{\"name\":");
        json::write_str(&mut out, &ev.name);
        let _ = write!(
            out,
            ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
        );
        if ev.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            match v {
                ArgValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::Str(s) => json::write_str(&mut out, s),
            }
        }
        if let Some(ns) = ev.wall_ns {
            if !ev.args.is_empty() {
                out.push(',');
            }
            let _ = write!(out, "\"wall_ns\":{ns}");
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// `pid` used for wall-clock worker lanes, far above any run index so
/// the lanes group separately from simulated-step tracks.
const LANES_PID: u64 = 1_000_000;

/// Converts a trace plus wall-clock worker [`LaneSpan`]s to Chrome
/// trace-event JSON.
///
/// The deterministic events render exactly as [`chrome_trace`]; the
/// lanes are appended as `ph:"X"` complete events under their own
/// process (`pid` 1000000), one `tid` per distinct lane name in
/// sorted order, with `ts`/`dur` in microseconds of wall clock. The
/// two time bases (simulated steps vs wall clock) are deliberately not
/// aligned — the lanes answer "who was busy when", not "at which step".
pub fn chrome_lanes(events: &[Event], lanes: &[LaneSpan]) -> String {
    let mut out = chrome_trace(events);
    if lanes.is_empty() {
        return out;
    }
    // Reopen the traceEvents array; with no deterministic events the
    // array is empty and the first appended element takes no comma.
    let tail = "],\"displayTimeUnit\":\"ms\"}";
    out.truncate(out.len() - tail.len());
    let mut first = events.is_empty();
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    for span in lanes {
        let next = tids.len() as u64;
        tids.entry(span.lane.as_str()).or_insert(next);
    }
    for (lane, tid) in &tids {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{LANES_PID},\"tid\":{tid},\"args\":{{\"name\":"
        );
        json::write_str(&mut out, lane);
        out.push_str("}}");
    }
    for span in lanes {
        let tid = tids[span.lane.as_str()];
        let ts = span.start_ns / 1_000;
        let dur = span.end_ns.saturating_sub(span.start_ns).max(1_000) / 1_000;
        sep(&mut out);
        out.push_str("{\"name\":");
        json::write_str(&mut out, &span.name);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{LANES_PID},\"tid\":{tid},\"args\":{{\"detail\":{}}}}}",
            span.detail
        );
    }
    out.push_str(tail);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_valid_json() {
        let events = vec![
            Event::begin(0, CONTROL_TRACK, "run").with_arg("run", 2u64),
            Event::instant(5, 1, "sched").with_arg("tid", 1u32),
            Event::end(9, CONTROL_TRACK, "run").with_arg("ok", true),
        ];
        let text = chrome_trace(&events);
        let v = json::parse(&text).unwrap();
        let arr = match v.get("traceEvents").unwrap() {
            json::Value::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 3);
        // All events inherit the run's pid.
        for e in arr {
            assert_eq!(e.get("pid").unwrap().as_u64(), Some(2));
        }
        assert_eq!(arr[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(arr[1].get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(arr[1].get("ts").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn failed_run_end_is_clamped_to_last_step() {
        let events = vec![
            Event::begin(0, CONTROL_TRACK, "run").with_arg("run", 0u64),
            Event::instant(42, 0, "fault").with_arg("kind", "alloc-fail"),
            // Failure: checker does not know the final step, emits 0.
            Event::end(0, CONTROL_TRACK, "run").with_arg("ok", false),
        ];
        let text = chrome_trace(&events);
        let v = json::parse(&text).unwrap();
        let arr = match v.get("traceEvents").unwrap() {
            json::Value::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[2].get("ts").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn deterministic_output() {
        let events = vec![Event::instant(1, 0, "checkpoint").with_arg("seq", 0u64)];
        assert_eq!(chrome_trace(&events), chrome_trace(&events));
    }

    #[test]
    fn lanes_append_complete_events_in_their_own_process() {
        let events = vec![Event::instant(1, 0, "checkpoint").with_arg("seq", 0u64)];
        let lanes = vec![
            LaneSpan {
                lane: "icd.w0".into(),
                name: "campaign".into(),
                start_ns: 2_000_000,
                end_ns: 5_000_000,
                detail: 3,
            },
            LaneSpan {
                lane: "icd.w1".into(),
                name: "idle".into(),
                start_ns: 0,
                end_ns: 1_000_000,
                detail: 0,
            },
        ];
        let text = chrome_lanes(&events, &lanes);
        let v = json::parse(&text).unwrap();
        let arr = match v.get("traceEvents").unwrap() {
            json::Value::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        // 1 trace event + 2 thread_name metadata + 2 lane spans.
        assert_eq!(arr.len(), 5);
        let span = arr
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("a complete event");
        assert_eq!(span.get("pid").unwrap().as_u64(), Some(LANES_PID));
        let names: Vec<_> = arr
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_owned()
            })
            .collect();
        assert_eq!(names, ["icd.w0", "icd.w1"], "one tid per lane, sorted");
        // Without lanes the output is plain chrome_trace.
        assert_eq!(chrome_lanes(&events, &[]), chrome_trace(&events));
    }

    #[test]
    fn lanes_without_events_parse() {
        // A profile-only export has lanes but no deterministic trace;
        // the array must not open with a stray comma.
        let lanes = vec![LaneSpan {
            lane: "icd.w0".into(),
            name: "campaign".into(),
            start_ns: 0,
            end_ns: 2_000_000,
            detail: 1,
        }];
        let text = chrome_lanes(&[], &lanes);
        let v = json::parse(&text).unwrap();
        let arr = match v.get("traceEvents").unwrap() {
            json::Value::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        // 1 thread_name metadata + 1 lane span.
        assert_eq!(arr.len(), 2);
    }
}
