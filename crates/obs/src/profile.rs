//! Campaign profiling: folds a trace into per-run totals, hashing
//! attribution, MHM hit rates, and a fault/failure timeline.
//!
//! This is the analysis behind the `icprof` binary. It consumes the
//! event vocabulary emitted by the checker/engine:
//!
//! | event        | phase   | args |
//! |--------------|---------|------|
//! | `campaign`   | Instant | `scheme`, `runs`, `base_seed` |
//! | `run`        | Begin   | `run`, `seed`, `attempt`, `scheme` |
//! | `run`        | End     | `ok`, `steps`, `native_instr`, `hash_instr`, `zero_fill_instr`, `stores`, `hash_updates`, `checkpoints`, optionally `error` and `l1_hits`, `l1_misses`, `mhm_reads`, `mhm_read_misses` |
//! | `sched`      | Instant | `tid` |
//! | `checkpoint` | Instant | `seq`, `kind` |
//! | `fault`      | Instant | `kind` |
//! | `alloc`      | Instant | `base`, `words` |
//! | `free`       | Instant | `base` |
//! | `divergence` | Instant | `run`, `checkpoint` (or `output` when only the output digests differ) |

use std::fmt::Write as _;

use crate::trace::{Event, Phase};

/// Modeled L1/MHM cache counters recovered from a run's end-span args.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Demand (program load/store) hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// MHM old-value reads (HW-InstantCheck datapath).
    pub mhm_reads: u64,
    /// MHM old-value reads that missed L1.
    pub mhm_read_misses: u64,
}

impl CacheCounters {
    /// Demand hit rate in percent (100 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            100.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// MHM old-value read hit rate in percent (100 if no reads).
    pub fn mhm_hit_rate(&self) -> f64 {
        if self.mhm_reads == 0 {
            100.0
        } else {
            100.0 * (self.mhm_reads - self.mhm_read_misses) as f64 / self.mhm_reads as f64
        }
    }
}

/// Per-run totals recovered from the trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunProfile {
    /// Campaign run index (0-based slot).
    pub run: u64,
    /// Scheduler seed.
    pub seed: u64,
    /// Retry attempt (0 = first).
    pub attempt: u64,
    /// Checking scheme name.
    pub scheme: String,
    /// Whether the run completed.
    pub ok: bool,
    /// Error class if the run failed.
    pub error: Option<String>,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Workload (native) instructions.
    pub native_instr: u64,
    /// Checking-overhead instructions (the Fig. 6 cost model).
    pub hash_instr: u64,
    /// Allocation zero-fill instructions.
    pub zero_fill_instr: u64,
    /// Stores observed.
    pub stores: u64,
    /// Incremental hash updates performed.
    pub hash_updates: u64,
    /// Checkpoints hit (from the end-span arg).
    pub checkpoints: u64,
    /// Scheduler decisions seen in the trace body.
    pub sched_events: u64,
    /// Allocations seen in the trace body.
    pub allocs: u64,
    /// Frees seen in the trace body.
    pub frees: u64,
    /// `(step, kind)` of each injected fault.
    pub faults: Vec<(u64, String)>,
    /// Modeled cache counters, when the cache model was enabled.
    pub cache: Option<CacheCounters>,
    /// Wall-clock duration (ns), when the sink stamped wall time.
    pub wall_ns: Option<u64>,
}

impl RunProfile {
    /// Fraction of modeled instructions spent on checking, in percent.
    pub fn hash_share(&self) -> f64 {
        let total = self.native_instr + self.hash_instr;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hash_instr as f64 / total as f64
        }
    }
}

/// A recorded divergence verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Run index that differs from run 0.
    pub run: u64,
    /// First checkpoint sequence number at which it differs; `None`
    /// when only the output digests differ.
    pub checkpoint: Option<u64>,
}

/// The folded campaign profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignProfile {
    /// Campaign scheme name, if a `campaign` event was present.
    pub scheme: Option<String>,
    /// Configured number of runs, if recorded.
    pub configured_runs: Option<u64>,
    /// Base seed, if recorded.
    pub base_seed: Option<u64>,
    /// Per-run profiles in trace order (includes failed attempts).
    pub runs: Vec<RunProfile>,
    /// Recorded divergence verdicts.
    pub divergences: Vec<Divergence>,
}

impl CampaignProfile {
    /// Folds a trace into a profile.
    pub fn from_events(events: &[Event]) -> CampaignProfile {
        let mut profile = CampaignProfile::default();
        let mut current: Option<RunProfile> = None;
        for ev in events {
            match (ev.name.as_ref(), ev.phase) {
                ("campaign", _) => {
                    profile.scheme = ev.arg_str("scheme").map(str::to_string);
                    profile.configured_runs = ev.arg_u64("runs");
                    profile.base_seed = ev.arg_u64("base_seed");
                }
                ("run", Phase::Begin) => {
                    if let Some(run) = current.take() {
                        profile.runs.push(run);
                    }
                    current = Some(RunProfile {
                        run: ev.arg_u64("run").unwrap_or(0),
                        seed: ev.arg_u64("seed").unwrap_or(0),
                        attempt: ev.arg_u64("attempt").unwrap_or(0),
                        scheme: ev.arg_str("scheme").unwrap_or("?").to_string(),
                        wall_ns: ev.wall_ns,
                        ..RunProfile::default()
                    });
                }
                ("run", Phase::End) => {
                    if let Some(mut run) = current.take() {
                        run.ok = ev.arg_u64("ok") == Some(1);
                        run.error = ev.arg_str("error").map(str::to_string);
                        run.steps = ev.arg_u64("steps").unwrap_or(0);
                        run.native_instr = ev.arg_u64("native_instr").unwrap_or(0);
                        run.hash_instr = ev.arg_u64("hash_instr").unwrap_or(0);
                        run.zero_fill_instr = ev.arg_u64("zero_fill_instr").unwrap_or(0);
                        run.stores = ev.arg_u64("stores").unwrap_or(0);
                        run.hash_updates = ev.arg_u64("hash_updates").unwrap_or(0);
                        run.checkpoints = ev.arg_u64("checkpoints").unwrap_or(0);
                        if let Some(reads) = ev.arg_u64("mhm_reads") {
                            run.cache = Some(CacheCounters {
                                hits: ev.arg_u64("l1_hits").unwrap_or(0),
                                misses: ev.arg_u64("l1_misses").unwrap_or(0),
                                mhm_reads: reads,
                                mhm_read_misses: ev.arg_u64("mhm_read_misses").unwrap_or(0),
                            });
                        }
                        if let (Some(end), Some(begin)) = (ev.wall_ns, run.wall_ns) {
                            run.wall_ns = Some(end.saturating_sub(begin));
                        } else {
                            run.wall_ns = None;
                        }
                        profile.runs.push(run);
                    }
                }
                ("sched", _) => {
                    if let Some(run) = current.as_mut() {
                        run.sched_events += 1;
                    }
                }
                ("alloc", _) => {
                    if let Some(run) = current.as_mut() {
                        run.allocs += 1;
                    }
                }
                ("free", _) => {
                    if let Some(run) = current.as_mut() {
                        run.frees += 1;
                    }
                }
                ("fault", _) => {
                    if let Some(run) = current.as_mut() {
                        run.faults
                            .push((ev.step, ev.arg_str("kind").unwrap_or("?").to_string()));
                    }
                }
                ("divergence", _) => {
                    if let Some(run) = ev.arg_u64("run") {
                        profile.divergences.push(Divergence {
                            run,
                            checkpoint: ev.arg_u64("checkpoint"),
                        });
                    }
                }
                _ => {}
            }
        }
        if let Some(run) = current.take() {
            profile.runs.push(run);
        }
        profile
    }

    /// Renders the human-readable profile table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let completed = self.runs.iter().filter(|r| r.ok).count();
        let failed = self.runs.len() - completed;
        let scheme = self
            .scheme
            .clone()
            .or_else(|| self.runs.first().map(|r| r.scheme.clone()))
            .unwrap_or_else(|| "?".to_string());
        let _ = writeln!(
            out,
            "Campaign profile — scheme {scheme}, {} run(s) ({completed} completed, {failed} failed)",
            self.runs.len()
        );
        if let (Some(runs), Some(seed)) = (self.configured_runs, self.base_seed) {
            let _ = writeln!(out, "Configured: {runs} runs, base seed {seed}");
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>4} {:>10} {:>6} {:>9} {:>12} {:>12} {:>7} {:>7}  outcome",
            "run",
            "seed",
            "att",
            "steps",
            "ckpts",
            "stores",
            "native-in",
            "hash-in",
            "hash%",
            "mhm%",
        );
        for r in &self.runs {
            let mhm = r
                .cache
                .map(|c| format!("{:.2}", c.mhm_hit_rate()))
                .unwrap_or_else(|| "-".to_string());
            let outcome = if r.ok {
                "ok".to_string()
            } else {
                format!("FAILED({})", r.error.as_deref().unwrap_or("?"))
            };
            let _ = writeln!(
                out,
                "{:>4} {:>6} {:>4} {:>10} {:>6} {:>9} {:>12} {:>12} {:>7.2} {:>7}  {}",
                r.run,
                r.seed,
                r.attempt,
                r.steps,
                r.checkpoints,
                r.stores,
                r.native_instr,
                r.hash_instr,
                r.hash_share(),
                mhm,
                outcome
            );
        }
        // Attribution per scheme (hash-time vs workload-time in the
        // instruction cost model).
        out.push('\n');
        let mut schemes: Vec<&str> = self.runs.iter().map(|r| r.scheme.as_str()).collect();
        schemes.sort_unstable();
        schemes.dedup();
        for scheme in schemes {
            let (mut native, mut hash, mut zero) = (0u64, 0u64, 0u64);
            for r in self.runs.iter().filter(|r| r.scheme == scheme) {
                native += r.native_instr;
                hash += r.hash_instr;
                zero += r.zero_fill_instr;
            }
            let total = native + hash;
            let (wl, hs) = if total == 0 {
                (100.0, 0.0)
            } else {
                (
                    100.0 * native as f64 / total as f64,
                    100.0 * hash as f64 / total as f64,
                )
            };
            let _ = writeln!(
                out,
                "Attribution [{scheme}]: workload {wl:.2}%, hashing {hs:.2}% \
                 (native {native}, hash {hash}, zero-fill {zero})"
            );
        }
        // MHM / L1 totals.
        let mut cache = CacheCounters::default();
        let mut have_cache = false;
        for r in &self.runs {
            if let Some(c) = r.cache {
                have_cache = true;
                cache.hits += c.hits;
                cache.misses += c.misses;
                cache.mhm_reads += c.mhm_reads;
                cache.mhm_read_misses += c.mhm_read_misses;
            }
        }
        if have_cache {
            let _ = writeln!(
                out,
                "L1 model: {} demand accesses, hit rate {:.2}%; MHM old-value reads {}, \
                 misses {} (hit rate {:.2}%)",
                cache.hits + cache.misses,
                cache.hit_rate(),
                cache.mhm_reads,
                cache.mhm_read_misses,
                cache.mhm_hit_rate()
            );
        }
        // Fault / failure timeline.
        let mut timeline: Vec<String> = Vec::new();
        for r in &self.runs {
            for (step, kind) in &r.faults {
                timeline.push(format!(
                    "  run {} attempt {} step {step}: fault {kind}",
                    r.run, r.attempt
                ));
            }
            if !r.ok {
                timeline.push(format!(
                    "  run {} attempt {}: FAILED ({})",
                    r.run,
                    r.attempt,
                    r.error.as_deref().unwrap_or("?")
                ));
            }
        }
        if !timeline.is_empty() {
            out.push_str("\nFault/failure timeline:\n");
            for line in timeline {
                out.push_str(&line);
                out.push('\n');
            }
        }
        if !self.divergences.is_empty() {
            out.push_str("\nDivergences (vs run 0):\n");
            for d in &self.divergences {
                let _ = match d.checkpoint {
                    Some(cp) => {
                        writeln!(out, "  run {} first differs at checkpoint seq {cp}", d.run)
                    }
                    None => writeln!(out, "  run {} differs in output only", d.run),
                };
            }
        }
        if let Some(total) = self
            .runs
            .iter()
            .map(|r| r.wall_ns)
            .try_fold(0u64, |acc, w| w.map(|w| acc + w))
        {
            if !self.runs.is_empty() {
                let _ = writeln!(
                    out,
                    "\nWall clock (opt-in, non-deterministic): {:.3} ms total across runs",
                    total as f64 / 1e6
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CONTROL_TRACK;

    fn campaign_events() -> Vec<Event> {
        vec![
            Event::instant(0, CONTROL_TRACK, "campaign")
                .with_arg("scheme", "HwInc")
                .with_arg("runs", 2u64)
                .with_arg("base_seed", 1u64),
            Event::begin(0, CONTROL_TRACK, "run")
                .with_arg("run", 0u64)
                .with_arg("seed", 1u64)
                .with_arg("attempt", 0u64)
                .with_arg("scheme", "HwInc"),
            Event::instant(1, 0, "sched").with_arg("tid", 0u32),
            Event::instant(2, 0, "alloc")
                .with_arg("base", 4096u64)
                .with_arg("words", 8u64),
            Event::instant(3, 0, "fault").with_arg("kind", "bit-flip"),
            Event::instant(4, 0, "checkpoint")
                .with_arg("seq", 0u64)
                .with_arg("kind", "end"),
            Event::end(4, CONTROL_TRACK, "run")
                .with_arg("ok", true)
                .with_arg("steps", 4u64)
                .with_arg("native_instr", 900u64)
                .with_arg("hash_instr", 100u64)
                .with_arg("zero_fill_instr", 8u64)
                .with_arg("stores", 20u64)
                .with_arg("hash_updates", 40u64)
                .with_arg("checkpoints", 1u64)
                .with_arg("l1_hits", 30u64)
                .with_arg("l1_misses", 10u64)
                .with_arg("mhm_reads", 20u64)
                .with_arg("mhm_read_misses", 2u64),
            Event::begin(0, CONTROL_TRACK, "run")
                .with_arg("run", 1u64)
                .with_arg("seed", 2u64)
                .with_arg("attempt", 0u64)
                .with_arg("scheme", "HwInc"),
            Event::end(0, CONTROL_TRACK, "run")
                .with_arg("ok", false)
                .with_arg("error", "deadlock"),
            Event::instant(0, CONTROL_TRACK, "divergence")
                .with_arg("run", 1u64)
                .with_arg("checkpoint", 3u64),
        ]
    }

    #[test]
    fn folds_runs_and_counters() {
        let p = CampaignProfile::from_events(&campaign_events());
        assert_eq!(p.scheme.as_deref(), Some("HwInc"));
        assert_eq!(p.configured_runs, Some(2));
        assert_eq!(p.runs.len(), 2);
        let r0 = &p.runs[0];
        assert!(r0.ok);
        assert_eq!(r0.steps, 4);
        assert_eq!(r0.sched_events, 1);
        assert_eq!(r0.allocs, 1);
        assert_eq!(r0.faults, vec![(3, "bit-flip".to_string())]);
        let cache = r0.cache.unwrap();
        assert_eq!(cache.mhm_reads, 20);
        assert!((cache.mhm_hit_rate() - 90.0).abs() < 1e-9);
        assert!((cache.hit_rate() - 75.0).abs() < 1e-9);
        assert!((r0.hash_share() - 10.0).abs() < 1e-9);
        let r1 = &p.runs[1];
        assert!(!r1.ok);
        assert_eq!(r1.error.as_deref(), Some("deadlock"));
        assert_eq!(
            p.divergences,
            vec![Divergence {
                run: 1,
                checkpoint: Some(3)
            }]
        );
    }

    #[test]
    fn render_mentions_key_facts() {
        let p = CampaignProfile::from_events(&campaign_events());
        let text = p.render();
        assert!(text.contains("scheme HwInc"));
        assert!(text.contains("1 completed, 1 failed"));
        assert!(text.contains("fault bit-flip"));
        assert!(text.contains("FAILED (deadlock)"));
        assert!(text.contains("checkpoint seq 3"));
        assert!(text.contains("Attribution [HwInc]"));
        assert!(text.contains("hit rate"));
    }

    #[test]
    fn empty_trace_renders() {
        let p = CampaignProfile::from_events(&[]);
        assert!(p.runs.is_empty());
        assert!(p.render().contains("0 run(s)"));
    }

    #[test]
    fn wall_clock_duration_is_span_delta() {
        let mut begin = Event::begin(0, CONTROL_TRACK, "run").with_arg("run", 0u64);
        begin.wall_ns = Some(1_000);
        let mut end = Event::end(9, CONTROL_TRACK, "run").with_arg("ok", true);
        end.wall_ns = Some(5_000);
        let p = CampaignProfile::from_events(&[begin, end]);
        assert_eq!(p.runs[0].wall_ns, Some(4_000));
    }
}
