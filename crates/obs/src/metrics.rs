//! A small metrics registry: named monotonic counters and log2-bucket
//! histograms with a snapshot/delta API.
//!
//! Handles returned by [`Registry::counter`] / [`Registry::histogram`]
//! are `Arc`s over atomics, so the hot path (incrementing) is lock-free;
//! the registry lock is only taken to register or snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::json;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values whose bit
/// length is `i` (i.e. value 0 → bucket 0, values in `[2^(i-1), 2^i)` →
/// bucket `i`).
pub const BUCKETS: usize = 65;

/// A histogram with power-of-two buckets.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 ..= 1.0`); 0 if empty.
    pub fn quantile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 {
                    0
                } else {
                    (1u64 << (i - 1)).saturating_mul(2) - 1
                };
            }
        }
        u64::MAX
    }

    /// Upper bound of the bucket containing the median (p50); 0 if
    /// empty. Like all log2-bucket quantiles this is an *upper bound*
    /// on the true quantile, never an interpolation — the bound is
    /// exact when every observation in the decisive bucket shares a
    /// bit length.
    pub fn p50(&self) -> u64 {
        self.quantile_bound(0.50)
    }

    /// Upper bound of the bucket containing the 95th percentile; 0 if
    /// empty.
    pub fn p95(&self) -> u64 {
        self.quantile_bound(0.95)
    }

    /// Upper bound of the bucket containing the 99th percentile; 0 if
    /// empty.
    pub fn p99(&self) -> u64 {
        self.quantile_bound(0.99)
    }

    /// Bucket-wise difference vs an earlier snapshot (saturating).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// A registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name`, creating it empty if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Convenience: `counter(name).add(n)`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Frozen registry state; keys are sorted (BTreeMap) so serialization
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Difference vs an earlier snapshot (saturating; metrics absent
    /// from `earlier` are reported at full value).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let base = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(base))
            })
            .collect();
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
        };
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let base = earlier.histograms.get(k).unwrap_or(&empty);
                (k.clone(), v.delta(base))
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Serializes the snapshot as deterministic (sorted-key) JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.add("a", 4);
        reg.add("b", 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.counters["b"], 2);
    }

    #[test]
    fn counter_handles_are_shared() {
        let reg = Registry::new();
        let h1 = reg.counter("x");
        let h2 = reg.counter("x");
        h1.add(3);
        h2.add(4);
        assert_eq!(reg.counter("x").get(), 7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert!((s.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_bound_is_monotone() {
        let h = Histogram::default();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.quantile_bound(0.2) <= s.quantile_bound(0.9));
        assert!(s.quantile_bound(1.0) >= 1000);
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile_bound(0.5), 0);
    }

    #[test]
    fn quantiles_pin_bucket_boundaries() {
        // 100 observations of exactly 1000 (bit length 10 → bucket 10,
        // upper bound 2^10 - 1 = 1023): every quantile reports the
        // bucket's upper bound, not an interpolation.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 1023);
        assert_eq!(s.p95(), 1023);
        assert_eq!(s.p99(), 1023);

        // 95 small + 5 large: p50 stays in the small bucket, p95 is
        // exactly at the boundary (ceil(0.95 * 100) = 95 ≤ 95 seen in
        // the small bucket), p99 lands in the large bucket.
        let h = Histogram::default();
        for _ in 0..95 {
            h.record(1); // bucket 1, bound 1
        }
        for _ in 0..5 {
            h.record(1 << 20); // bucket 21, bound 2^21 - 1
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 1);
        assert_eq!(s.p95(), 1, "boundary target counts the earlier bucket");
        assert_eq!(s.p99(), (1u64 << 21) - 1);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p95(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn quantiles_of_zero_valued_observations_stay_zero() {
        // Value 0 lands in bucket 0 whose bound is 0 — quantiles of an
        // all-zero histogram must not report bucket 1's bound.
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(0);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn snapshot_delta() {
        let reg = Registry::new();
        reg.add("runs", 2);
        reg.histogram("steps").record(10);
        let before = reg.snapshot();
        reg.add("runs", 3);
        reg.add("new", 1);
        reg.histogram("steps").record(20);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters["runs"], 3);
        assert_eq!(d.counters["new"], 1);
        assert_eq!(d.histograms["steps"].count, 1);
        assert_eq!(d.histograms["steps"].sum, 20);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_parses() {
        let reg = Registry::new();
        reg.add("b", 2);
        reg.add("a", 1);
        reg.histogram("h").record(5);
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b);
        let v = crate::json::parse(&a).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn registry_is_share_safe() {
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.counter("n").inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("n").get(), 4000);
    }
}
