//! Structured event traces keyed by *simulated* step count.
//!
//! Determinism contract: an [`Event`]'s `step`, `track`, `phase`,
//! `name`, and `args` are all functions of the simulated execution, so
//! for a fixed workload + scheduler seed the serialized trace is
//! byte-identical across host machines and reruns. Wall-clock time is
//! only available through the opt-in `wall_ns` field
//! ([`MemorySink::with_wall_clock`]) and must never be used in a
//! determinism comparison.

use std::borrow::Cow;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{self, Value};

/// An event or argument name: usually a static string, occasionally
/// computed.
pub type Name = Cow<'static, str>;

/// Track used for campaign-level control events (run begin/end,
/// divergence verdicts) that are not attributable to a simulated
/// thread.
pub const CONTROL_TRACK: u32 = u32::MAX;

/// Span phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span start.
    Begin,
    /// Span end.
    End,
    /// A point event with no duration.
    Instant,
}

impl Phase {
    /// One-letter code used in the serialized form (`B`, `E`, `I`).
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "I",
        }
    }

    fn from_code(code: &str) -> Option<Phase> {
        match code {
            "B" => Some(Phase::Begin),
            "E" => Some(Phase::End),
            "I" => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// An event argument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned integer (counters, seeds, sequence numbers).
    U64(u64),
    /// A short string (scheme names, fault kinds, error classes).
    Str(Name),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(Cow::Owned(v))
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated scheduler step at which the event occurred.
    pub step: u64,
    /// Simulated thread id, or [`CONTROL_TRACK`] for campaign-level
    /// events.
    pub track: u32,
    /// Span phase.
    pub phase: Phase,
    /// Event name (`run`, `sched`, `checkpoint`, `fault`, ...).
    pub name: Name,
    /// Deterministic key/value payload.
    pub args: Vec<(Name, ArgValue)>,
    /// Opt-in wall-clock timestamp (ns since sink creation). Never part
    /// of the determinism contract; `None` unless the sink stamps it.
    pub wall_ns: Option<u64>,
}

impl Event {
    /// A span-begin event.
    pub fn begin(step: u64, track: u32, name: impl Into<Name>) -> Event {
        Event::new(step, track, Phase::Begin, name)
    }

    /// A span-end event.
    pub fn end(step: u64, track: u32, name: impl Into<Name>) -> Event {
        Event::new(step, track, Phase::End, name)
    }

    /// A point event.
    pub fn instant(step: u64, track: u32, name: impl Into<Name>) -> Event {
        Event::new(step, track, Phase::Instant, name)
    }

    fn new(step: u64, track: u32, phase: Phase, name: impl Into<Name>) -> Event {
        Event {
            step,
            track,
            phase,
            name: name.into(),
            args: Vec::new(),
            wall_ns: None,
        }
    }

    /// Adds one argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: impl Into<Name>, value: impl Into<ArgValue>) -> Event {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Looks up an integer argument.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(n) if k == key => Some(*n),
            _ => None,
        })
    }

    /// Looks up a string argument.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::Str(s) if k == key => Some(s.as_ref()),
            _ => None,
        })
    }

    /// Serializes the event as one JSON line (no trailing newline).
    ///
    /// Field order is fixed (`step`, `track`, `ph`, `name`, `args`,
    /// then `wall_ns` if present) so that equal events serialize to
    /// identical bytes.
    pub fn write_json_line(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"step\":{},\"track\":{},\"ph\":\"{}\",\"name\":",
            self.step,
            self.track,
            self.phase.code()
        );
        json::write_str(out, &self.name);
        out.push_str(",\"args\":{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(out, k);
            out.push(':');
            match v {
                ArgValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::Str(s) => json::write_str(out, s),
            }
        }
        out.push('}');
        if let Some(ns) = self.wall_ns {
            let _ = write!(out, ",\"wall_ns\":{ns}");
        }
        out.push('}');
    }

    /// Reconstructs an event from a parsed JSON object.
    pub fn from_json(v: &Value) -> Result<Event, String> {
        let step = v
            .get("step")
            .and_then(Value::as_u64)
            .ok_or("missing step")?;
        let track = v
            .get("track")
            .and_then(Value::as_u64)
            .ok_or("missing track")?;
        let track = u32::try_from(track).map_err(|_| "track out of range".to_string())?;
        let phase = v
            .get("ph")
            .and_then(Value::as_str)
            .and_then(Phase::from_code)
            .ok_or("missing/invalid ph")?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing name")?
            .to_string();
        let mut args = Vec::new();
        if let Some(fields) = v.get("args").and_then(Value::fields) {
            for (k, av) in fields {
                let value = match av {
                    Value::Num(_) => {
                        ArgValue::U64(av.as_u64().ok_or_else(|| format!("bad arg {k}"))?)
                    }
                    Value::Str(s) => ArgValue::Str(Cow::Owned(s.clone())),
                    other => return Err(format!("unsupported arg value {other:?}")),
                };
                args.push((Cow::Owned(k.clone()), value));
            }
        }
        let wall_ns = v.get("wall_ns").and_then(Value::as_u64);
        Ok(Event {
            step,
            track,
            phase,
            name: Cow::Owned(name),
            args,
            wall_ns,
        })
    }
}

/// Destination for trace events.
///
/// Implementations must be cheap when disabled: the default
/// [`NoopSink`] reports `enabled() == false`, and every emission site in
/// the engine/checker skips argument construction entirely in that
/// case.
pub trait EventSink: fmt::Debug + Send + Sync {
    /// Records one event.
    fn record(&self, event: Event);

    /// Whether this sink actually stores events. Emitters may (and do)
    /// skip building events when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything — the default, near-zero overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn record(&self, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory sink collecting events in arrival order.
///
/// By default wall-clock stamping is off, so the captured trace is a
/// pure function of the simulated execution. [`MemorySink::with_wall_clock`]
/// opts in to stamping each event with nanoseconds since sink creation;
/// such traces are *not* comparable byte-for-byte across runs.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    epoch: Option<Instant>,
}

impl MemorySink {
    /// A deterministic sink (no wall clock).
    pub fn new() -> MemorySink {
        MemorySink {
            events: Mutex::new(Vec::new()),
            epoch: None,
        }
    }

    /// A sink that stamps each event with wall-clock nanoseconds since
    /// creation. For local profiling only; breaks byte-identical
    /// comparison.
    pub fn with_wall_clock() -> MemorySink {
        MemorySink {
            events: Mutex::new(Vec::new()),
            epoch: Some(Instant::now()),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Serializes all recorded events as JSON lines.
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events.lock().unwrap())
    }
}

impl EventSink for MemorySink {
    fn record(&self, mut event: Event) {
        if let Some(epoch) = self.epoch {
            event.wall_ns = Some(epoch.elapsed().as_nanos() as u64);
        }
        self.events.lock().unwrap().push(event);
    }
}

/// A bounded-scope buffer sink: collects events exactly like
/// [`MemorySink`], then replays them *in recorded order* into another
/// sink via [`flush_into`](BufferSink::flush_into).
///
/// This is the building block of deterministic trace *merging*: a
/// parallel campaign hands each run slot its own `BufferSink`, lets the
/// slots execute concurrently (their events land in per-slot buffers,
/// never interleaving), and afterwards flushes the buffers in slot
/// order into the campaign's real sink. The merged stream is then
/// byte-identical to what a serial execution of the same slots would
/// have recorded, regardless of how many workers ran them.
///
/// Wall-clock stamping is intentionally unsupported here: buffered
/// events are stamped (if at all) by the *destination* sink at flush
/// time, which keeps the deterministic fields authoritative.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Mutex<Vec<Event>>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the buffer into `sink`, preserving recorded order.
    pub fn flush_into(&self, sink: &dyn EventSink) {
        for event in self.events.lock().unwrap().drain(..) {
            sink.record(event);
        }
    }

    /// Discards the buffered events without forwarding them (a slot the
    /// campaign decided not to keep, e.g. past a `stop_early` cut).
    pub fn discard(&self) {
        self.events.lock().unwrap().clear();
    }
}

impl EventSink for BufferSink {
    fn record(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }
}

/// Serializes events as JSON lines (one event per line, trailing
/// newline after each).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        ev.write_json_line(&mut out);
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace produced by [`events_to_jsonl`].
pub fn parse_jsonl(input: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(Event::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::begin(0, CONTROL_TRACK, "run")
                .with_arg("run", 0u64)
                .with_arg("seed", u64::MAX),
            Event::instant(3, 1, "sched").with_arg("tid", 1u32),
            Event::instant(7, 0, "checkpoint")
                .with_arg("seq", 0u64)
                .with_arg("kind", "barrier"),
            Event::end(12, CONTROL_TRACK, "run")
                .with_arg("ok", true)
                .with_arg("error", "none".to_string()),
        ]
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let events = sample();
        let text = events_to_jsonl(&events);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(events, back);
        // Re-serialization is byte-identical.
        assert_eq!(events_to_jsonl(&back), text);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = events_to_jsonl(&sample());
        let b = events_to_jsonl(&sample());
        assert_eq!(a, b);
        assert!(!a.contains("wall_ns"));
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        for ev in sample() {
            sink.record(ev);
        }
        assert_eq!(sink.len(), 4);
        assert!(!sink.is_empty());
        assert_eq!(sink.events(), sample());
        assert!(sink.events().iter().all(|e| e.wall_ns.is_none()));
    }

    #[test]
    fn wall_clock_is_opt_in() {
        let sink = MemorySink::with_wall_clock();
        sink.record(Event::instant(0, 0, "x"));
        let events = sink.events();
        assert!(events[0].wall_ns.is_some());
        assert!(sink.to_jsonl().contains("wall_ns"));
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(Event::instant(0, 0, "dropped"));
        let mem = MemorySink::new();
        assert!(EventSink::enabled(&mem));
    }

    #[test]
    fn buffer_sink_flushes_in_recorded_order() {
        let buffer = BufferSink::new();
        assert!(buffer.is_empty());
        for ev in sample() {
            buffer.record(ev);
        }
        assert_eq!(buffer.len(), 4);
        let dest = MemorySink::new();
        buffer.flush_into(&dest);
        assert!(buffer.is_empty(), "flush drains the buffer");
        assert_eq!(dest.events(), sample());
    }

    #[test]
    fn per_slot_buffers_merge_to_the_serial_order() {
        // Two "slots" record concurrently into separate buffers; the
        // coordinator flushes them in slot order, reproducing exactly
        // the stream a serial execution would have produced.
        let serial = MemorySink::new();
        let merged = MemorySink::new();
        let slots: Vec<Vec<Event>> = vec![
            vec![
                Event::begin(0, CONTROL_TRACK, "run").with_arg("run", 0u64),
                Event::instant(5, 0, "sched"),
                Event::end(9, CONTROL_TRACK, "run"),
            ],
            vec![
                Event::begin(0, CONTROL_TRACK, "run").with_arg("run", 1u64),
                Event::end(4, CONTROL_TRACK, "run"),
            ],
        ];
        for events in &slots {
            for ev in events {
                serial.record(ev.clone());
            }
        }
        let buffers: Vec<BufferSink> = slots
            .iter()
            .map(|events| {
                let b = BufferSink::new();
                // Reverse-order slot completion must not matter.
                for ev in events {
                    b.record(ev.clone());
                }
                b
            })
            .collect();
        for b in &buffers {
            b.flush_into(&merged);
        }
        assert_eq!(events_to_jsonl(&merged.events()), serial.to_jsonl());
    }

    #[test]
    fn buffer_sink_discard_drops_everything() {
        let buffer = BufferSink::new();
        buffer.record(Event::instant(0, 0, "x"));
        buffer.discard();
        assert!(buffer.is_empty());
        let dest = MemorySink::new();
        buffer.flush_into(&dest);
        assert!(dest.is_empty());
    }

    #[test]
    fn arg_lookup() {
        let ev = Event::instant(0, 0, "x")
            .with_arg("n", 9u64)
            .with_arg("s", "txt");
        assert_eq!(ev.arg_u64("n"), Some(9));
        assert_eq!(ev.arg_str("s"), Some("txt"));
        assert_eq!(ev.arg_u64("s"), None);
        assert_eq!(ev.arg_str("missing"), None);
    }
}
