//! The wall-clock telemetry side-channel.
//!
//! Everything in this module is **strictly off the deterministic
//! artifact path**: where [`Registry`](crate::Registry) counts
//! simulated work (and therefore must snapshot to byte-identical JSON
//! for byte-identical campaigns), [`Telemetry`] measures *time* — lock
//! waits, queue dwell, worker utilization, request latency — which is
//! allowed (expected!) to differ run to run. The two planes never mix:
//! nothing recorded here reaches a report, trace, or metrics artifact
//! that is byte-compared, and nothing here feeds back into scheduling
//! decisions.
//!
//! Facilities:
//!
//! * [`Telemetry`] — a registry of wall-clock [`Histogram`]s (recorded
//!   in nanoseconds, log2 buckets, p50/p95/p99 extraction), [`Gauge`]s,
//!   monotonic [`Counter`]s, and a bounded [`LaneSpan`] log attributing
//!   busy/idle time to named worker lanes.
//! * [`TelemetrySnapshot`] — a frozen copy with deterministic-schema
//!   JSON (the `/profile` endpoint body and the `telemetry.json`
//!   artifact).
//! * [`Heartbeat`] — a background thread appending one snapshot line
//!   per tick to a JSONL file, so a post-mortem can replay how waits
//!   and depths evolved up to a crash.
//! * [`prometheus_text`] — Prometheus text exposition (v0.0.4) of a
//!   telemetry snapshot plus, optionally, the deterministic registry's
//!   counters and histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::{self, Value};
use crate::metrics::{Counter, Histogram, HistogramSnapshot, Snapshot};

/// A set-or-add instantaneous value (queue depth, in-flight count,
/// connected clients). Unlike a [`Counter`] it can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements by `n` (saturating at zero).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One wall-clock attribution span on a named lane: "worker `w2` was
/// busy with slot 7 from 1.2ms to 4.8ms after telemetry start".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSpan {
    /// The lane (e.g. `icd.w0`, `chk.w1`).
    pub lane: String,
    /// What the lane was doing (`campaign`, `slot`, `idle`).
    pub name: String,
    /// Span start, nanoseconds since telemetry start.
    pub start_ns: u64,
    /// Span end, nanoseconds since telemetry start.
    pub end_ns: u64,
    /// Free-form numeric detail (slot index, submission seq).
    pub detail: u64,
}

impl LaneSpan {
    /// Serializes as one deterministic-schema JSON object.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"lane\":");
        json::write_str(out, &self.lane);
        out.push_str(",\"name\":");
        json::write_str(out, &self.name);
        let _ = write!(
            out,
            ",\"start_ns\":{},\"end_ns\":{},\"detail\":{}}}",
            self.start_ns, self.end_ns, self.detail
        );
    }

    /// Parses a span from its JSON object form.
    pub fn from_json(v: &Value) -> Result<LaneSpan, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("lane span missing {k:?}"));
        Ok(LaneSpan {
            lane: field("lane")?
                .as_str()
                .ok_or("lane must be a string")?
                .to_owned(),
            name: field("name")?
                .as_str()
                .ok_or("name must be a string")?
                .to_owned(),
            start_ns: field("start_ns")?
                .as_u64()
                .ok_or("start_ns must be a u64")?,
            end_ns: field("end_ns")?.as_u64().ok_or("end_ns must be a u64")?,
            detail: v.get("detail").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// Default bound on the retained lane-span log.
pub const DEFAULT_LANE_CAP: usize = 16_384;

/// The wall-clock telemetry registry. Cheap to share (`Arc`) and cheap
/// to record into: histogram/gauge/counter handles are atomics, the
/// lane log takes a short mutex per span.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use obs::Telemetry;
///
/// let t = Telemetry::new();
/// t.counter("icd.http.requests").inc();
/// t.gauge("icd.queue.depth").set(3);
/// t.record_wait("icd.cache.wait", Duration::from_micros(120));
/// let snap = t.snapshot();
/// assert_eq!(snap.counters["icd.http.requests"], 1);
/// assert_eq!(snap.histograms["icd.cache.wait"].count, 1);
/// // The snapshot renders as the `/profile` JSON body and as
/// // Prometheus text exposition for `/metrics`.
/// let text = obs::prometheus_text(None, &snap);
/// assert!(text.contains("icd_cache_wait_seconds_count 1"));
/// ```
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    lanes: Mutex<Vec<LaneSpan>>,
    lane_cap: usize,
    dropped_lanes: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh telemetry plane; `now_ns` starts counting here.
    pub fn new() -> Telemetry {
        Telemetry::with_lane_cap(DEFAULT_LANE_CAP)
    }

    /// A telemetry plane retaining at most `lane_cap` lane spans
    /// (further spans are dropped and counted, never blocking).
    pub fn with_lane_cap(lane_cap: usize) -> Telemetry {
        Telemetry {
            epoch: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            lanes: Mutex::new(Vec::new()),
            lane_cap,
            dropped_lanes: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since this telemetry plane was created (the lane
    /// span time base).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The monotonic counter named `name`, created at zero if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The gauge named `name`, created at zero if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The (nanosecond-valued) histogram named `name`, created empty if
    /// absent. Creating without recording is how always-exported series
    /// (e.g. `icd.cache.wait`) are pre-registered so `/metrics` shows
    /// them even before the first contended acquisition.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// Records a wall-clock duration into the histogram named `name`,
    /// in nanoseconds.
    pub fn record_wait(&self, name: &str, wait: Duration) {
        self.histogram(name).record(wait.as_nanos() as u64);
    }

    /// Appends one lane span; beyond the cap the span is dropped and
    /// counted in `dropped_lanes` — telemetry never blocks on its own
    /// buffer.
    pub fn lane_span(
        &self,
        lane: impl Into<String>,
        name: impl Into<String>,
        start_ns: u64,
        end_ns: u64,
        detail: u64,
    ) {
        let mut lanes = self.lanes.lock().unwrap();
        if lanes.len() >= self.lane_cap {
            drop(lanes);
            self.dropped_lanes.fetch_add(1, Ordering::Relaxed);
            return;
        }
        lanes.push(LaneSpan {
            lane: lane.into(),
            name: name.into(),
            start_ns,
            end_ns,
            detail,
        });
    }

    /// A frozen copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut lanes = self.lanes.lock().unwrap().clone();
        // Span order depends on thread interleaving; sort so equal
        // contents serialize equally regardless of arrival order.
        lanes.sort_by(|a, b| {
            (&a.lane, a.start_ns, a.end_ns, &a.name).cmp(&(&b.lane, b.start_ns, b.end_ns, &b.name))
        });
        TelemetrySnapshot {
            uptime_ns: self.now_ns(),
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            lanes,
            dropped_lanes: self.dropped_lanes.load(Ordering::Relaxed),
        }
    }
}

/// Frozen telemetry state; keys are sorted, so serialization of equal
/// contents is deterministic (the *values* are wall-clock and are not).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Nanoseconds the telemetry plane had been alive at snapshot time.
    pub uptime_ns: u64,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Nanosecond histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Retained lane spans, sorted by (lane, start, end, name).
    pub lanes: Vec<LaneSpan>,
    /// Lane spans dropped past the cap.
    pub dropped_lanes: u64,
}

fn write_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
        h.count,
        h.sum,
        h.p50(),
        h.p95(),
        h.p99()
    );
    for (j, b) in h.buckets.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

impl TelemetrySnapshot {
    /// Serializes the snapshot (without the lane log) as one line of
    /// deterministic-schema JSON — the heartbeat record shape. `seq`
    /// is the heartbeat sequence number (0 for ad-hoc snapshots).
    pub fn to_heartbeat_json(&self, seq: u64) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"seq\":{seq},\"uptime_ns\":{}", self.uptime_ns);
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            write_histogram_json(&mut out, h);
        }
        out.push_str("}}");
        out
    }

    /// Serializes the full snapshot — heartbeat fields plus the lane
    /// log — as deterministic-schema JSON (the `/profile` body shape's
    /// telemetry section).
    pub fn to_json(&self) -> String {
        let mut out = self.to_heartbeat_json(0);
        out.pop(); // reopen the object
        out.push_str(",\"dropped_lanes\":");
        let _ = write!(out, "{}", self.dropped_lanes);
        out.push_str(",\"lanes\":[");
        for (i, span) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot back from [`to_json`](Self::to_json) (or
    /// heartbeat) output — the `icprof --profile` reader.
    pub fn from_json(v: &Value) -> Result<TelemetrySnapshot, String> {
        let mut snap = TelemetrySnapshot {
            uptime_ns: v.get("uptime_ns").and_then(Value::as_u64).unwrap_or(0),
            dropped_lanes: v.get("dropped_lanes").and_then(Value::as_u64).unwrap_or(0),
            ..TelemetrySnapshot::default()
        };
        for (section, into) in [("counters", 0usize), ("gauges", 1)] {
            if let Some(fields) = v.get(section).and_then(Value::fields) {
                for (k, val) in fields {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| format!("{section}.{k} must be a u64"))?;
                    if into == 0 {
                        snap.counters.insert(k.clone(), n);
                    } else {
                        snap.gauges.insert(k.clone(), n);
                    }
                }
            }
        }
        if let Some(fields) = v.get("histograms").and_then(Value::fields) {
            for (k, val) in fields {
                let buckets = match val.get("buckets") {
                    Some(Value::Arr(items)) => items
                        .iter()
                        .map(|b| b.as_u64().ok_or("bucket counts must be u64"))
                        .collect::<Result<Vec<u64>, _>>()?,
                    _ => return Err(format!("histogram {k} missing buckets")),
                };
                snap.histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        count: val.get("count").and_then(Value::as_u64).unwrap_or(0),
                        sum: val.get("sum").and_then(Value::as_u64).unwrap_or(0),
                        buckets,
                    },
                );
            }
        }
        if let Some(Value::Arr(items)) = v.get("lanes") {
            for item in items {
                snap.lanes.push(LaneSpan::from_json(item)?);
            }
        }
        Ok(snap)
    }
}

/// Sanitizes a dotted metric name into the Prometheus charset.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Formats nanoseconds as seconds for exposition values.
fn prom_seconds(ns: u64) -> String {
    format!("{:.9}", ns as f64 / 1e9)
}

fn write_prom_histogram(
    out: &mut String,
    name: &str,
    h: &HistogramSnapshot,
    le_of_bucket: impl Fn(usize) -> String,
    sum: String,
) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    let last = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1)
        .min(h.buckets.len());
    for (i, &c) in h.buckets.iter().take(last.max(1)).enumerate() {
        cumulative += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            le_of_bucket(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {sum}");
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders Prometheus text exposition (v0.0.4) of a telemetry snapshot
/// plus, when given, the deterministic registry's counters and
/// histograms.
///
/// Conventions: telemetry histograms record nanoseconds and are
/// exported as `<name>_seconds` histograms with `le` bounds in seconds;
/// telemetry and registry counters get the `_total` suffix; registry
/// histograms (unitless simulated quantities) keep raw-value bounds;
/// gauges export as-is. Dotted names flatten to underscores
/// (`icd.cache.wait` → `icd_cache_wait_seconds`).
pub fn prometheus_text(registry: Option<&Snapshot>, telemetry: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP icd_telemetry_uptime_seconds Wall-clock seconds since the telemetry plane started."
    );
    let _ = writeln!(out, "# TYPE icd_telemetry_uptime_seconds gauge");
    let _ = writeln!(
        out,
        "icd_telemetry_uptime_seconds {}",
        prom_seconds(telemetry.uptime_ns)
    );
    for (name, value) in &telemetry.counters {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name}_total counter");
        let _ = writeln!(out, "{name}_total {value}");
    }
    for (name, value) in &telemetry.gauges {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &telemetry.histograms {
        let name = format!("{}_seconds", prom_name(name));
        // Bucket i holds durations of bit length i: upper bound
        // 2^i - 1 nanoseconds (bucket 0 holds exactly 0).
        let le = |i: usize| {
            if i == 0 {
                "0.000000000".to_owned()
            } else {
                prom_seconds((1u64 << i.min(63)).wrapping_sub(1).max(1))
            }
        };
        write_prom_histogram(&mut out, &name, h, le, prom_seconds(h.sum));
    }
    if let Some(reg) = registry {
        for (name, value) in &reg.counters {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name}_total counter");
            let _ = writeln!(out, "{name}_total {value}");
        }
        for (name, h) in &reg.histograms {
            let name = prom_name(name);
            let le = |i: usize| {
                if i == 0 {
                    "0".to_owned()
                } else {
                    format!("{}", (1u64 << i.min(63)).wrapping_sub(1).max(1))
                }
            };
            write_prom_histogram(&mut out, &name, h, le, format!("{}", h.sum));
        }
    }
    out
}

/// A periodic telemetry snapshot writer: one JSONL line per tick
/// (plus one final line at stop), appended to a file. The thread wakes
/// in short slices so `stop` (and drop) return promptly.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts a heartbeat appending to `path` every `interval`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created.
    pub fn start(
        telemetry: Arc<Telemetry>,
        path: PathBuf,
        interval: Duration,
    ) -> std::io::Result<Heartbeat> {
        let mut file = std::fs::File::create(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::spawn(move || {
            let slice = interval.min(Duration::from_millis(50));
            let mut seq = 0u64;
            let mut next = Instant::now() + interval;
            loop {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                if Instant::now() >= next {
                    next += interval;
                    let line = telemetry.snapshot().to_heartbeat_json(seq);
                    seq += 1;
                    if writeln!(file, "{line}").is_err() {
                        break;
                    }
                } else {
                    std::thread::sleep(slice);
                }
            }
            // One last record so the post-mortem sees the final state.
            let line = telemetry.snapshot().to_heartbeat_json(seq);
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        });
        Ok(Heartbeat {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the heartbeat thread, flushing one final record.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_move_both_ways_and_saturate() {
        let g = Gauge::default();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn snapshot_sorts_lanes_and_respects_the_cap() {
        let t = Telemetry::with_lane_cap(2);
        t.lane_span("w1", "slot", 100, 200, 1);
        t.lane_span("w0", "slot", 50, 80, 0);
        t.lane_span("w2", "slot", 10, 20, 2); // past the cap
        let snap = t.snapshot();
        assert_eq!(snap.lanes.len(), 2);
        assert_eq!(snap.lanes[0].lane, "w0", "lanes sorted, not arrival order");
        assert_eq!(snap.dropped_lanes, 1);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let t = Telemetry::new();
        t.counter("icd.http.requests").add(3);
        t.gauge("icd.queue.depth").set(4);
        t.record_wait("icd.cache.wait", Duration::from_nanos(1500));
        t.lane_span("icd.w0", "campaign", 10, 90, 7);
        let snap = t.snapshot();
        let text = snap.to_json();
        let parsed = TelemetrySnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges, snap.gauges);
        assert_eq!(parsed.histograms, snap.histograms);
        assert_eq!(parsed.lanes, snap.lanes);
        // Serialization is deterministic for a frozen snapshot.
        assert_eq!(text, snap.to_json());
    }

    #[test]
    fn heartbeat_writes_parseable_lines() {
        let t = Arc::new(Telemetry::new());
        t.record_wait("icd.queue.dwell", Duration::from_micros(10));
        let path = std::env::temp_dir().join(format!("obs-hb-{}.jsonl", std::process::id()));
        let mut hb =
            Heartbeat::start(Arc::clone(&t), path.clone(), Duration::from_millis(5)).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        hb.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "at least the final record is written");
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).expect("heartbeat line parses");
            assert_eq!(v.get("seq").and_then(Value::as_u64), Some(i as u64));
            assert!(v.get("histograms").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let t = Telemetry::new();
        t.histogram("icd.cache.wait"); // pre-registered, zero samples
        t.record_wait("icd.queue.dwell", Duration::from_nanos(3));
        t.record_wait("icd.queue.dwell", Duration::from_micros(100));
        t.gauge("icd.queue.depth").set(2);
        t.counter("icd.http.requests").inc();
        let reg = crate::Registry::new();
        reg.add("icd.completed", 5);
        reg.histogram("checker.run_steps").record(1000);
        let text = prometheus_text(Some(&reg.snapshot()), &t.snapshot());

        assert!(text.contains("# TYPE icd_queue_dwell_seconds histogram"));
        assert!(text.contains("icd_queue_dwell_seconds_count 2"));
        assert!(text.contains("icd_queue_dwell_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(
            text.contains("# TYPE icd_cache_wait_seconds histogram")
                && text.contains("icd_cache_wait_seconds_count 0"),
            "pre-registered histograms export with zero samples"
        );
        assert!(text.contains("# TYPE icd_queue_depth gauge\nicd_queue_depth 2"));
        assert!(text.contains("icd_http_requests_total 1"));
        assert!(text.contains("icd_completed_total 5"));
        assert!(text.contains("# TYPE checker_run_steps histogram"));

        // Every line is either a comment or `name{labels} value` /
        // `name value`, and histogram buckets are cumulative.
        let mut cumulative = 0u64;
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name.is_empty());
            let _: f64 = value.parse().expect("sample value parses as a float");
            if name.starts_with("icd_queue_dwell_seconds_bucket") {
                let v: f64 = value.parse().unwrap();
                assert!(v as u64 >= cumulative, "buckets are cumulative");
                cumulative = v as u64;
            }
        }
    }

    #[test]
    fn prom_names_flatten_dots() {
        assert_eq!(prom_name("icd.cache.wait"), "icd_cache_wait");
        assert_eq!(prom_name("icd.tenant.a-b.shed"), "icd_tenant_a_b_shed");
    }
}
