//! Minimal JSON reading/writing for trace and metrics artifacts.
//!
//! The workspace deliberately has no external dependencies, so this
//! module provides the small JSON subset the observability layer needs:
//! a writer with deterministic output (callers control field order) and
//! a recursive-descent parser used by `icprof` to load trace files.
//!
//! Numbers are kept as their raw source text ([`Value::Num`]) so that
//! full-range `u64` values (seeds, hashes) round-trip exactly instead of
//! being squeezed through an `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw text for lossless `u64` round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as a `u64`, if it is a number that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn fields(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (with escaping).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document from `input`. Trailing whitespace is
/// allowed; any other trailing content is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if raw.is_empty() || raw == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-utf8 string")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"hi\\nthere\"").unwrap().as_str(), Some("hi\nthere"));
    }

    #[test]
    fn u64_round_trips_exactly() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap();
        match arr {
            Value::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b").unwrap().as_str(), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("d").unwrap().fields().unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_and_chars() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn write_str_escapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let round = parse(&out).unwrap();
        assert_eq!(round.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
