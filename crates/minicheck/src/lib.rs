//! `minicheck` — a minimal seeded property-testing harness.
//!
//! The workspace's property suites (hash algebra laws, engine
//! reproducibility, checker soundness, fault-plan determinism) need two
//! things from a property-testing library: *seeded generation* of
//! structured inputs and a *runner* that reports a reproducible failing
//! case. `minicheck` provides exactly that with no external
//! dependencies.
//!
//! # Usage
//!
//! ```
//! use minicheck::{check, Gen};
//!
//! check("addition_commutes", 64, |g: &mut Gen| {
//!     let (a, b) = (g.u64(), g.u64());
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```
//!
//! Each case draws its inputs from a [`Gen`] seeded by
//! `splitmix64(name-hash ^ case-index)`, so a failure message's case
//! seed pins the exact inputs: re-running the same test binary replays
//! it. Set `MINICHECK_SEED=<n>` to re-run a single case seed under a
//! test, or `MINICHECK_CASES=<n>` to globally override case counts
//! (e.g. for a long nightly soak).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use detrand::{splitmix64, DetRng};

/// A source of structured pseudo-random test inputs for one case.
#[derive(Debug)]
pub struct Gen {
    rng: DetRng,
    /// The seed this case was created from (for failure reports).
    pub case_seed: u64,
}

impl Gen {
    /// Creates a generator from a case seed.
    #[must_use]
    pub fn new(case_seed: u64) -> Self {
        Gen {
            rng: DetRng::new(case_seed),
            case_seed,
        }
    }

    /// An arbitrary `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// An arbitrary `u8`.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// An arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }

    /// A `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.range_u64(lo, hi)
    }

    /// A `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_usize(lo, hi)
    }

    /// An arbitrary bool.
    pub fn bool(&mut self) -> bool {
        self.rng.bool()
    }

    /// `true` with probability `num / denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.rng.chance(num, denom)
    }

    /// An arbitrary finite `f64` spanning normals, subnormals, and
    /// zeros (never NaN or infinity).
    pub fn finite_f64(&mut self) -> f64 {
        loop {
            let bits = self.rng.next_u64();
            let x = f64::from_bits(bits);
            if x.is_finite() {
                return x;
            }
        }
    }

    /// A vector of `len` in `[min, max)` built by calling `f`.
    pub fn vec_of<T>(
        &mut self,
        min: usize,
        max: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min, max);
        (0..len).map(|_| f(self)).collect()
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.rng.index(options.len())]
    }
}

fn name_key(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `property` over `cases` generated inputs; panics (failing the
/// enclosing `#[test]`) with the case seed on the first failure.
///
/// `MINICHECK_SEED=<n>` re-runs only the case with seed `n`;
/// `MINICHECK_CASES=<n>` overrides the case count.
///
/// # Panics
///
/// Panics when the property fails for some case, with a message naming
/// the reproducing case seed.
pub fn check(name: &str, cases: u64, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = env_u64("MINICHECK_SEED") {
        let mut g = Gen::new(seed);
        property(&mut g);
        return;
    }
    let cases = env_u64("MINICHECK_CASES").unwrap_or(cases);
    let key = name_key(name);
    for case in 0..cases {
        let case_seed = splitmix64(key ^ case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::new(case_seed);
            property(&mut g);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic".to_owned());
            panic!(
                "property `{name}` failed on case {case}/{cases} \
                 (rerun with MINICHECK_SEED={case_seed}): {msg}"
            );
        }
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("tautology", 32, |g| {
            let v = g.vec_of(0, 10, Gen::u8);
            assert!(v.len() < 10);
        });
    }

    #[test]
    fn failing_property_reports_seed() {
        let err = catch_unwind(|| {
            check("always_fails", 8, |_g| panic!("nope"));
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("MINICHECK_SEED="), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let mut first = Vec::new();
        check("record", 4, |g| first.push(g.u64()));
        let mut second = Vec::new();
        check("record", 4, |g| second.push(g.u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn pick_and_ranges() {
        let mut g = Gen::new(5);
        for _ in 0..50 {
            assert!(*g.pick(&[1, 2, 3]) <= 3);
            assert!((2..5).contains(&g.usize_in(2, 5)));
            assert!((7..9).contains(&g.u64_in(7, 9)));
            assert!(g.finite_f64().is_finite());
            let _ = (g.bool(), g.chance(1, 2), g.u32());
        }
    }
}
