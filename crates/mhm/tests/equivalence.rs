//! Property tests: the clustered design of Figure 3(b) is equivalent to
//! the basic design for every dispatch assignment and operation order,
//! and per-core decomposition commutes with migration.

use adhash::HashSum;
use mhm::{ClusterOp, ClusteredMhm, MhmCore};
use minicheck::{check, Gen};

fn gen_stores(g: &mut Gen) -> Vec<(u64, u64)> {
    // (addr, new value); old values derived by replay over a small space.
    g.vec_of(1, 100, |g| (g.u64_in(0, 16), g.u64()))
}

/// Any per-operation cluster assignment gives the same merged TH as
/// the basic single-register design.
#[test]
fn clustered_equals_basic() {
    check("clustered_equals_basic", 64, |g| {
        let writes = gen_stores(g);
        let clusters = g.usize_in(1, 6);
        let assignment = g.vec_of(1, 100, |g| (g.usize_in(0, 6), g.usize_in(0, 6)));
        let mut mem = std::collections::HashMap::<u64, u64>::new();
        let mut basic = MhmCore::new();
        let mut clustered = ClusteredMhm::new(clusters);
        for (i, &(addr, new)) in writes.iter().enumerate() {
            let old = *mem.get(&addr).unwrap_or(&0);
            mem.insert(addr, new);
            basic.on_store(addr, old, new, false);
            let (c_old, c_new) = assignment[i % assignment.len()];
            clustered.dispatch(c_old % clusters, ClusterOp::MinusOld { addr, value: old });
            clustered.dispatch(c_new % clusters, ClusterOp::PlusNew { addr, value: new });
        }
        assert_eq!(clustered.th(), basic.th());
    });
}

/// Reversing the order in which operations reach the clusters does
/// not change the merged TH (operations commute).
#[test]
fn dispatch_order_is_irrelevant() {
    check("dispatch_order_is_irrelevant", 64, |g| {
        let writes = gen_stores(g);
        let clusters = g.usize_in(1, 5);
        let mut mem = std::collections::HashMap::<u64, u64>::new();
        let mut ops = Vec::new();
        for &(addr, new) in &writes {
            let old = *mem.get(&addr).unwrap_or(&0);
            mem.insert(addr, new);
            ops.push(ClusterOp::MinusOld { addr, value: old });
            ops.push(ClusterOp::PlusNew { addr, value: new });
        }
        let mut fwd = ClusteredMhm::new(clusters);
        for (i, &op) in ops.iter().enumerate() {
            fwd.dispatch(i % clusters, op);
        }
        let mut rev = ClusteredMhm::new(clusters);
        for (i, &op) in ops.iter().rev().enumerate() {
            rev.dispatch((i * 7 + 3) % clusters, op);
        }
        assert_eq!(fwd.th(), rev.th());
    });
}

/// Migrating a thread between cores (save/restore of TH) never
/// changes the combined state hash.
#[test]
fn migration_is_transparent() {
    check("migration_is_transparent", 64, |g| {
        let writes = gen_stores(g);
        let migrate_at = g.vec_of(1, 100, Gen::bool);
        // One logical thread, two physical cores.
        let mut mem = std::collections::HashMap::<u64, u64>::new();
        let mut cores = [MhmCore::new(), MhmCore::new()];
        let mut current = 0usize;
        let mut reference = MhmCore::new();
        for (i, &(addr, new)) in writes.iter().enumerate() {
            if migrate_at[i % migrate_at.len()] {
                // OS migrates the thread: move TH to the other core.
                let th = cores[current].save_hash();
                cores[current].restore_hash(HashSum::ZERO);
                current ^= 1;
                cores[current].restore_hash(th);
            }
            let old = *mem.get(&addr).unwrap_or(&0);
            mem.insert(addr, new);
            cores[current].on_store(addr, old, new, false);
            reference.on_store(addr, old, new, false);
        }
        assert_eq!(MhmCore::combine(cores.iter()), reference.th());
    });
}
