//! The highly-parallel MHM design of Figure 3(b).
//!
//! Because the hash combination is modular addition — commutative and
//! associative, with subtraction as inverse — the two hash operations of
//! one store (subtract `h(addr, old)`, add `h(addr, new)`) can be sent to
//! *any* cluster, in *any* order, even interleaved arbitrarily with other
//! stores' operations. Each cluster keeps a partial sum; the partial sums
//! are merged into the TH register whenever it is read.

use adhash::{FpRound, HashSum, IncHasher, Mix64Hasher};

/// One of the two hash operations a store generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterOp {
    /// Subtract `h(addr, value)` (the `Data_old` side).
    MinusOld {
        /// Virtual address of the store.
        addr: u64,
        /// The value being overwritten.
        value: u64,
    },
    /// Add `h(addr, value)` (the `Data_new` side).
    PlusNew {
        /// Virtual address of the store.
        addr: u64,
        /// The value being written.
        value: u64,
    },
}

/// A clustered MHM: `k` parallel hash clusters, each accumulating a
/// partial sum, merged on demand.
///
/// # Example
///
/// Dispatching the two halves of one store to *different* clusters, in
/// the "wrong" order, still produces the same TH as the basic design:
///
/// ```
/// use mhm::{ClusteredMhm, ClusterOp, MhmCore};
///
/// let mut clustered = ClusteredMhm::new(4);
/// clustered.dispatch(3, ClusterOp::PlusNew { addr: 0x10, value: 9 });
/// clustered.dispatch(0, ClusterOp::MinusOld { addr: 0x10, value: 2 });
///
/// let mut basic = MhmCore::new();
/// basic.on_store(0x10, 2, 9, false);
///
/// assert_eq!(clustered.th(), basic.th());
/// ```
#[derive(Debug, Clone)]
pub struct ClusteredMhm {
    clusters: Vec<IncHasher<Mix64Hasher>>,
    rounding: Option<FpRound>,
}

impl ClusteredMhm {
    /// Creates a clustered design with `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one cluster");
        ClusteredMhm {
            clusters: vec![IncHasher::new(Mix64Hasher::default()); k],
            rounding: None,
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Enables FP rounding in front of the clusters (the round-off unit
    /// sits on the `Data` wires before dispatch).
    pub fn set_rounding(&mut self, rounding: Option<FpRound>) {
        self.rounding = rounding;
    }

    /// Sends one hash operation to cluster `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster >= self.clusters()`.
    pub fn dispatch(&mut self, cluster: usize, op: ClusterOp) {
        self.dispatch_kind(cluster, op, false)
    }

    /// Sends one hash operation with an FP flag (rounded if rounding is
    /// enabled).
    ///
    /// # Panics
    ///
    /// Panics if `cluster >= self.clusters()`.
    pub fn dispatch_kind(&mut self, cluster: usize, op: ClusterOp, is_fp: bool) {
        let round = |v: u64| match (is_fp, self.rounding) {
            (true, Some(r)) => r.apply_bits(v),
            _ => v,
        };
        let c = &mut self.clusters[cluster];
        match op {
            ClusterOp::MinusOld { addr, value } => c.remove_location(addr, round(value)),
            ClusterOp::PlusNew { addr, value } => c.add_location(addr, round(value)),
        }
    }

    /// The partial sum held by one cluster.
    pub fn partial(&self, cluster: usize) -> HashSum {
        self.clusters[cluster].sum()
    }

    /// Merges all cluster partial sums into the TH value.
    pub fn th(&self) -> HashSum {
        self.clusters.iter().map(|c| c.sum()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MhmCore;

    #[test]
    fn one_cluster_equals_basic_design() {
        let stores = [(0x10u64, 0u64, 5u64), (0x18, 0, 6), (0x10, 5, 7)];
        let mut clustered = ClusteredMhm::new(1);
        let mut basic = MhmCore::new();
        for (a, old, new) in stores {
            clustered.dispatch(
                0,
                ClusterOp::MinusOld {
                    addr: a,
                    value: old,
                },
            );
            clustered.dispatch(
                0,
                ClusterOp::PlusNew {
                    addr: a,
                    value: new,
                },
            );
            basic.on_store(a, old, new, false);
        }
        assert_eq!(clustered.th(), basic.th());
    }

    #[test]
    fn old_after_new_is_fine() {
        // "Data_old could be sent much earlier than Data_new, or even
        // after it."
        let mut m = ClusteredMhm::new(2);
        m.dispatch(0, ClusterOp::PlusNew { addr: 1, value: 9 });
        m.dispatch(1, ClusterOp::PlusNew { addr: 2, value: 3 });
        m.dispatch(1, ClusterOp::MinusOld { addr: 1, value: 0 });
        m.dispatch(0, ClusterOp::MinusOld { addr: 2, value: 0 });

        let mut basic = MhmCore::new();
        basic.on_store(1, 0, 9, false);
        basic.on_store(2, 0, 3, false);
        assert_eq!(m.th(), basic.th());
    }

    #[test]
    fn partials_differ_but_merge_equal() {
        let mut a = ClusteredMhm::new(2);
        a.dispatch(0, ClusterOp::PlusNew { addr: 1, value: 1 });
        a.dispatch(1, ClusterOp::PlusNew { addr: 2, value: 2 });
        let mut b = ClusteredMhm::new(2);
        b.dispatch(1, ClusterOp::PlusNew { addr: 1, value: 1 });
        b.dispatch(0, ClusterOp::PlusNew { addr: 2, value: 2 });
        assert_ne!(a.partial(0), b.partial(0));
        assert_eq!(a.th(), b.th());
        assert_eq!(a.clusters(), 2);
    }

    #[test]
    fn rounding_in_front_of_clusters() {
        let mut m = ClusteredMhm::new(2);
        m.set_rounding(Some(FpRound::default()));
        let a: f64 = 0.1 + 0.2 + 0.3;
        let b: f64 = 0.3 + 0.2 + 0.1;
        m.dispatch_kind(
            0,
            ClusterOp::PlusNew {
                addr: 1,
                value: a.to_bits(),
            },
            true,
        );
        m.dispatch_kind(
            1,
            ClusterOp::MinusOld {
                addr: 1,
                value: b.to_bits(),
            },
            true,
        );
        // a and b round to the same value, so the contributions cancel.
        assert_eq!(m.th(), HashSum::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = ClusteredMhm::new(0);
    }
}
